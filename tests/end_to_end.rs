//! Cross-crate integration tests: every protocol family against its
//! plaintext reference semantics, over the generated workload families.

mod common;

use common::{rng, run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_vertical_pair};
use ppdbscan::config::ProtocolConfig;
use ppdbscan::{ArbitraryPartition, VerticalPartition};
use ppds_dbscan::datagen::{cluster_in_ring, split_alternating, standard_blobs, two_moons};
use ppds_dbscan::{dbscan, dbscan_with_external_density, eval, DbscanParams, Point, Quantizer};

fn workloads() -> Vec<(&'static str, Vec<Point>, DbscanParams)> {
    let quantizer = Quantizer::new(1.0, 80);
    let (blobs, _) = standard_blobs(&mut rng(1), 12, 3, 2, quantizer);
    let (moons, _) = two_moons(&mut rng(2), 14, 40.0, 1.0, quantizer);
    let (rings, _) = cluster_in_ring(&mut rng(3), 10, 16, 2.0, 30.0, 0.5, quantizer);
    vec![
        (
            "blobs",
            blobs,
            DbscanParams {
                eps_sq: 81,
                min_pts: 3,
            },
        ),
        (
            "moons",
            moons,
            DbscanParams {
                eps_sq: 100,
                min_pts: 3,
            },
        ),
        (
            "rings",
            rings,
            DbscanParams {
                eps_sq: 100,
                min_pts: 3,
            },
        ),
    ]
}

#[test]
fn vertical_matches_plaintext_exactly_on_all_workloads() {
    for (name, records, params) in workloads() {
        let cfg = ProtocolConfig::new(params, 80);
        let dim = records[0].dim();
        for split in 1..dim {
            let partition = VerticalPartition::split(&records, split);
            let (a, b) = run_vertical_pair(&cfg, &partition, rng(10), rng(11)).unwrap();
            let reference = dbscan(&records, params);
            assert_eq!(a.clustering, reference, "{name} split {split}: alice");
            assert_eq!(b.clustering, reference, "{name} split {split}: bob");
        }
    }
}

#[test]
fn arbitrary_matches_plaintext_exactly_on_all_workloads() {
    for (name, records, params) in workloads() {
        let cfg = ProtocolConfig::new(params, 80);
        let partition = ArbitraryPartition::random(&mut rng(20), &records);
        let (a, b) = run_arbitrary_pair(&cfg, &partition, rng(21), rng(22)).unwrap();
        let reference = dbscan(&records, params);
        assert_eq!(a.clustering, reference, "{name}: alice");
        assert_eq!(b.clustering, reference, "{name}: bob");
    }
}

#[test]
fn horizontal_matches_external_density_reference_on_all_workloads() {
    for (name, records, params) in workloads() {
        let cfg = ProtocolConfig::new(params, 80);
        let (alice_pts, bob_pts) = split_alternating(&records);
        let (a, b) = run_horizontal_pair(&cfg, &alice_pts, &bob_pts, rng(30), rng(31)).unwrap();
        assert_eq!(
            a.clustering,
            dbscan_with_external_density(&alice_pts, &bob_pts, params),
            "{name}: alice"
        );
        assert_eq!(
            b.clustering,
            dbscan_with_external_density(&bob_pts, &alice_pts, params),
            "{name}: bob"
        );
    }
}

#[test]
fn enhanced_equals_basic_on_all_workloads() {
    for (name, records, params) in workloads() {
        let cfg = ProtocolConfig::new(params, 80);
        let (alice_pts, bob_pts) = split_alternating(&records);
        let (basic_a, basic_b) =
            run_horizontal_pair(&cfg, &alice_pts, &bob_pts, rng(40), rng(41)).unwrap();
        let (enh_a, enh_b) =
            run_enhanced_pair(&cfg, &alice_pts, &bob_pts, rng(42), rng(43)).unwrap();
        assert_eq!(basic_a.clustering, enh_a.clustering, "{name}: alice");
        assert_eq!(basic_b.clustering, enh_b.clustering, "{name}: bob");
    }
}

#[test]
fn horizontal_agreement_with_centralized_is_high_but_not_exact() {
    // The paper's horizontal semantics cannot chain through the peer's
    // points. On dense well-mixed splits agreement is perfect; a planted
    // bridge breaks it. Both facts are part of the reproduction (E4).
    let params = DbscanParams {
        eps_sq: 4,
        min_pts: 2,
    };
    let cfg = ProtocolConfig::new(params, 20);

    // Bridge case: Alice's two groups connected only through Bob's point.
    let alice = vec![
        Point::new(vec![0]),
        Point::new(vec![1]),
        Point::new(vec![5]),
        Point::new(vec![6]),
    ];
    let bob = vec![Point::new(vec![3])];
    let (a, _) = run_horizontal_pair(&cfg, &alice, &bob, rng(50), rng(51)).unwrap();
    assert_eq!(a.clustering.num_clusters, 2, "bridge must not merge");

    let mut union = alice.clone();
    union.extend(bob.iter().cloned());
    let centralized = dbscan(&union, params);
    assert_eq!(centralized.num_clusters, 1, "centralized merges via bridge");

    let centralized_alice = ppds_dbscan::Clustering {
        labels: centralized.labels[..alice.len()].to_vec(),
        num_clusters: centralized.num_clusters,
    };
    let ri = eval::rand_index(&a.clustering, &centralized_alice);
    // Exactly 1/3 here: of the 6 point pairs, only the two within-group
    // pairs agree once the horizontal semantics split the bridge.
    assert!(ri < 1.0, "divergence expected, rand index = {ri}");
    assert!((ri - 1.0 / 3.0).abs() < 1e-12, "rand index = {ri}");
}

#[test]
fn all_partitionings_of_same_records_agree_where_semantics_coincide() {
    // Vertical and arbitrary protocols implement the same functionality
    // (exact DBSCAN on the join) through different crypto paths — they must
    // agree with each other on identical records.
    let quantizer = Quantizer::new(1.0, 50);
    let (records, _) = standard_blobs(&mut rng(60), 10, 2, 3, quantizer);
    let params = DbscanParams {
        eps_sq: 64,
        min_pts: 3,
    };
    let cfg = ProtocolConfig::new(params, 50);

    let vertical = VerticalPartition::split(&records, 1);
    let (v_out, _) = run_vertical_pair(&cfg, &vertical, rng(61), rng(62)).unwrap();

    let arbitrary = ArbitraryPartition::random(&mut rng(63), &records);
    let (ar_out, _) = run_arbitrary_pair(&cfg, &arbitrary, rng(64), rng(65)).unwrap();

    assert_eq!(v_out.clustering, ar_out.clustering);
}

#[test]
fn empty_and_singleton_inputs() {
    let params = DbscanParams {
        eps_sq: 4,
        min_pts: 2,
    };
    let cfg = ProtocolConfig::new(params, 10);

    // Alice empty, Bob has data.
    let bob = vec![Point::new(vec![0, 0]), Point::new(vec![1, 0])];
    let (a, b) = run_horizontal_pair(&cfg, &[], &bob, rng(70), rng(71)).unwrap();
    assert!(a.clustering.labels.is_empty());
    assert_eq!(b.clustering.num_clusters, 1);

    // Both singletons.
    let (a, b) = run_horizontal_pair(
        &cfg,
        &[Point::new(vec![0, 0])],
        &[Point::new(vec![1, 0])],
        rng(72),
        rng(73),
    )
    .unwrap();
    // Each party's single point is core (own 1 + peer 1 = 2 >= MinPts).
    assert_eq!(a.clustering.num_clusters, 1);
    assert_eq!(b.clustering.num_clusters, 1);
}

#[test]
fn dgk_backend_full_runs_at_realistic_domains() {
    // The bitwise comparator is fully cryptographic AND logarithmic, so —
    // unlike the faithful Yao backend — it can run complete clusterings at
    // the default σ = 20 mask width. All four protocol families.
    let params = DbscanParams {
        eps_sq: 8,
        min_pts: 3,
    };
    let cfg = ppdbscan::config::ProtocolConfig::new_with_dgk(params, 30);
    let alice = vec![
        Point::new(vec![0, 0]),
        Point::new(vec![2, 1]),
        Point::new(vec![20, 20]),
    ];
    let bob = vec![Point::new(vec![1, 1]), Point::new(vec![21, 21])];

    let (h_a, h_b) = run_horizontal_pair(&cfg, &alice, &bob, rng(90), rng(91)).unwrap();
    assert_eq!(
        h_a.clustering,
        dbscan_with_external_density(&alice, &bob, params)
    );
    assert_eq!(
        h_b.clustering,
        dbscan_with_external_density(&bob, &alice, params)
    );

    let (e_a, _) = run_enhanced_pair(&cfg, &alice, &bob, rng(92), rng(93)).unwrap();
    assert_eq!(e_a.clustering, h_a.clustering);

    let records: Vec<Point> = alice.iter().chain(&bob).cloned().collect();
    let vp = VerticalPartition::split(&records, 1);
    let (v_a, v_b) = run_vertical_pair(&cfg, &vp, rng(94), rng(95)).unwrap();
    assert_eq!(v_a.clustering, dbscan(&records, params));
    assert_eq!(v_b.clustering, v_a.clustering);

    let ap = ArbitraryPartition::random(&mut rng(96), &records);
    let (ar_a, _) = run_arbitrary_pair(&cfg, &ap, rng(97), rng(98)).unwrap();
    assert_eq!(ar_a.clustering, dbscan(&records, params));
}

#[test]
fn faithful_yao_full_run_small_instance() {
    // End-to-end with the real Algorithm 1 comparator everywhere: tiny
    // lattice so n0 stays tractable (~hundreds of decryptions/comparison).
    let params = DbscanParams {
        eps_sq: 2,
        min_pts: 2,
    };
    let cfg = ProtocolConfig::new_with_yao(params, 3);
    let alice = vec![Point::new(vec![0, 0]), Point::new(vec![3, 3])];
    let bob = vec![Point::new(vec![1, 0]), Point::new(vec![-3, 3])];
    let (a, b) = run_horizontal_pair(&cfg, &alice, &bob, rng(80), rng(81)).unwrap();
    assert_eq!(
        a.clustering,
        dbscan_with_external_density(&alice, &bob, params)
    );
    assert_eq!(
        b.clustering,
        dbscan_with_external_density(&bob, &alice, params)
    );

    let partition = VerticalPartition::split(
        &[
            Point::new(vec![0, 0]),
            Point::new(vec![1, 1]),
            Point::new(vec![3, -3]),
        ],
        1,
    );
    let (va, vb) = run_vertical_pair(&cfg, &partition, rng(82), rng(83)).unwrap();
    assert_eq!(va.clustering, vb.clustering);
}
