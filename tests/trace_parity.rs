//! Flight-recorder parity: tracing observes a session without
//! participating. For every protocol family and framing, a traced run must
//! be **byte-identical** to the untraced reference under the same seeds —
//! same labels, same leakage log, same Yao ledger, same wire bytes (hashed
//! frame by frame) — and the trace itself must be schema-valid with its
//! top-level phase deltas summing exactly to the session's total traffic.

mod common;

use common::rng;
use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{Participant, PartyData, SessionOutcome};
use ppdbscan::{ArbitraryPartition, VerticalPartition};
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Point, Quantizer};
use ppds_observe::{SessionTrace, SpanRecorder};
use ppds_smc::Party;
use ppds_transport::{duplex, Channel, MetricsSnapshot, TransportError};

fn blobs(n: usize, seed: u64) -> Vec<Point> {
    let quantizer = Quantizer::new(1.0, 60);
    let (points, _) = standard_blobs(&mut rng(seed), (n / 3).max(1), 3, 2, quantizer);
    points
}

fn base_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    )
}

/// FNV-1a over every wire frame (direction-tagged, length-delimited): two
/// runs with equal hashes exchanged identical byte sequences.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Channel wrapper hashing every frame it carries. It must forward the
/// batch-note hooks — they reclassify rounds in the metrics, and dropping
/// them would silently diverge the traffic snapshots tracing reports.
struct Recording<C: Channel> {
    inner: C,
    hash: Fnv,
}

impl<C: Channel> Recording<C> {
    fn new(inner: C) -> Recording<C> {
        Recording {
            inner,
            hash: Fnv::new(),
        }
    }

    fn hash(&self) -> u64 {
        self.hash.0
    }
}

impl<C: Channel> Channel for Recording<C> {
    fn send_bytes(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.hash.update(&[0x51]);
        self.hash.update(&(payload.len() as u64).to_le_bytes());
        self.hash.update(payload);
        self.inner.send_bytes(payload)
    }

    fn recv_bytes(&mut self) -> Result<Vec<u8>, TransportError> {
        let payload = self.inner.recv_bytes()?;
        self.hash.update(&[0x52]);
        self.hash.update(&(payload.len() as u64).to_le_bytes());
        self.hash.update(&payload);
        Ok(payload)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics()
    }

    fn note_batch_sent(&mut self, items: u64) {
        self.inner.note_batch_sent(items);
    }

    fn note_batch_received(&mut self, items: u64) {
        self.inner.note_batch_received(items);
    }
}

/// Runs a two-party session over hashing channels; Alice records a trace
/// iff `traced`. Returns both outcomes and both wire hashes.
fn run_pair(
    cfg: &ProtocolConfig,
    alice: PartyData,
    bob: PartyData,
    traced: bool,
) -> (SessionOutcome, SessionOutcome, u64, u64) {
    let (ca, cb) = duplex();
    let mut ca = Recording::new(ca);
    let mut cb = Recording::new(cb);
    let mut pa = Participant::new(*cfg)
        .role(Party::Alice)
        .data(alice)
        .rng(rng(11));
    if traced {
        pa = pa.trace(SpanRecorder::new());
    }
    let pb = Participant::new(*cfg)
        .role(Party::Bob)
        .data(bob)
        .rng(rng(12));
    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(move || (pa.run(&mut ca).unwrap(), ca.hash()));
        let hb = scope.spawn(move || (pb.run(&mut cb).unwrap(), cb.hash()));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    (a.0, b.0, a.1, b.1)
}

/// Runs a 3-party mesh over hashing channels; node 0 records a trace iff
/// `traced`. Returns the outcomes and each node's combined wire hash.
fn run_mesh(cfg: &ProtocolConfig, all: &[Point], traced: bool) -> (Vec<SessionOutcome>, Vec<u64>) {
    let k = 3usize;
    let mut parties: Vec<Vec<Point>> = vec![Vec::new(); k];
    for (i, p) in all.iter().enumerate() {
        parties[i % k].push(p.clone());
    }
    let mut channels: Vec<Vec<(usize, _)>> = (0..k).map(|_| Vec::new()).collect();
    for i in 0..k {
        for j in i + 1..k {
            let (a, b) = duplex();
            channels[i].push((j, Recording::new(a)));
            channels[j].push((i, Recording::new(b)));
        }
    }
    let mut results: Vec<Option<(SessionOutcome, u64)>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (my_id, (mut peers, points)) in channels.drain(..).zip(&parties).enumerate() {
            let mut participant = Participant::new(*cfg)
                .data(PartyData::Multiparty(points.clone()))
                .seed(42 + my_id as u64);
            if traced && my_id == 0 {
                participant = participant.trace(SpanRecorder::new());
            }
            handles.push(scope.spawn(move || {
                let outcome = participant.run_mesh(&mut peers, my_id, k).unwrap();
                let mut hash = Fnv::new();
                for (peer, chan) in &peers {
                    hash.update(&(*peer as u64).to_le_bytes());
                    hash.update(&chan.hash().to_le_bytes());
                }
                (outcome, hash.0)
            }));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            results[i] = Some(handle.join().unwrap());
        }
    });
    let mut outcomes = Vec::new();
    let mut hashes = Vec::new();
    for slot in results {
        let (outcome, hash) = slot.unwrap();
        outcomes.push(outcome);
        hashes.push(hash);
    }
    (outcomes, hashes)
}

/// Side-by-side assertion: outputs and wire bytes identical, traced side
/// carries a trace, untraced side does not.
fn assert_same_session(name: &str, untraced: &SessionOutcome, traced: &SessionOutcome) {
    assert_eq!(
        untraced.output.clustering, traced.output.clustering,
        "{name}: labels must be byte-identical traced vs untraced"
    );
    assert_eq!(
        untraced.output.leakage, traced.output.leakage,
        "{name}: tracing must not widen leakage"
    );
    assert_eq!(
        untraced.output.yao, traced.output.yao,
        "{name}: same comparisons, same modeled Yao cost"
    );
    assert_eq!(
        untraced.output.traffic, traced.output.traffic,
        "{name}: identical traffic counters"
    );
    assert!(untraced.trace.is_none(), "{name}: no opt-in, no trace");
}

/// Schema validity plus the accounting identity this PR's acceptance pins:
/// the sum of top-level span deltas equals the session's total traffic.
fn assert_trace_accounts(name: &str, trace: &SessionTrace, total: MetricsSnapshot) {
    trace
        .validate()
        .unwrap_or_else(|e| panic!("{name}: trace schema: {e}"));
    assert!(!trace.is_empty(), "{name}: traced run must record spans");
    assert_eq!(trace.dropped, 0, "{name}: no events dropped");
    let top = trace
        .top_level_traffic()
        .unwrap_or_else(|e| panic!("{name}: rollup: {e}"));
    assert_eq!(
        top, total,
        "{name}: top-level phase deltas must sum to the session total"
    );
}

/// (batching, packing) framings under test; packing requires batching.
const FRAMINGS: [(bool, bool); 3] = [(false, false), (true, false), (true, true)];

#[test]
fn two_party_modes_are_byte_identical_traced_vs_untraced() {
    let all = blobs(18, 9_200);
    let (alice_pts, bob_pts) = split_alternating(&all);
    let vp = VerticalPartition::split(&all, 1);
    let ap = ArbitraryPartition::random(&mut rng(9_201), &all);
    let modes: Vec<(&str, PartyData, PartyData)> = vec![
        (
            "horizontal",
            PartyData::Horizontal(alice_pts.clone()),
            PartyData::Horizontal(bob_pts.clone()),
        ),
        (
            "enhanced",
            PartyData::Enhanced(alice_pts.clone()),
            PartyData::Enhanced(bob_pts.clone()),
        ),
        (
            "vertical",
            PartyData::Vertical(vp.alice.clone()),
            PartyData::Vertical(vp.bob.clone()),
        ),
        (
            "arbitrary",
            PartyData::Arbitrary(ap.alice_values.clone()),
            PartyData::Arbitrary(ap.bob_values.clone()),
        ),
    ];
    for (mode, alice, bob) in &modes {
        for (batching, packing) in FRAMINGS {
            let name = format!("{mode}/batching={batching}/packing={packing}");
            let cfg = base_cfg().with_batching(batching).with_packing(packing);
            let (u_a, u_b, u_ha, u_hb) = run_pair(&cfg, alice.clone(), bob.clone(), false);
            let (t_a, t_b, t_ha, t_hb) = run_pair(&cfg, alice.clone(), bob.clone(), true);
            assert_same_session(&format!("{name}/alice"), &u_a, &t_a);
            assert_same_session(&format!("{name}/bob"), &u_b, &t_b);
            assert_eq!(u_ha, t_ha, "{name}: alice wire bytes must be identical");
            assert_eq!(u_hb, t_hb, "{name}: bob wire bytes must be identical");
            let trace = t_a.trace.as_ref().expect("alice opted in");
            assert_trace_accounts(&name, trace, t_a.output.traffic);
        }
    }
}

#[test]
fn multiparty_mesh_is_byte_identical_traced_vs_untraced() {
    let all = blobs(18, 9_300);
    for (batching, packing) in FRAMINGS {
        let name = format!("multiparty/batching={batching}/packing={packing}");
        let cfg = base_cfg().with_batching(batching).with_packing(packing);
        let (untraced, u_hashes) = run_mesh(&cfg, &all, false);
        let (traced, t_hashes) = run_mesh(&cfg, &all, true);
        for (i, (u, t)) in untraced.iter().zip(&traced).enumerate() {
            assert_same_session(&format!("{name}/node{i}"), u, t);
        }
        assert_eq!(u_hashes, t_hashes, "{name}: wire bytes must be identical");
        let trace = traced[0].trace.as_ref().expect("node 0 opted in");
        assert_trace_accounts(&name, trace, traced[0].output.traffic);
    }
}

#[test]
fn traced_vertical_chrome_export_is_loadable_and_accounts_exactly() {
    // The acceptance criterion spelled out in full: a traced vertical-mode
    // session must export valid Chrome trace JSON whose per-phase deltas
    // sum exactly to the session's total traffic snapshot.
    let all = blobs(18, 9_400);
    let vp = VerticalPartition::split(&all, 1);
    let cfg = base_cfg().with_batching(true).with_packing(true);
    let (outcome, _, _, _) = run_pair(
        &cfg,
        PartyData::Vertical(vp.alice.clone()),
        PartyData::Vertical(vp.bob.clone()),
        true,
    );
    let trace = outcome.trace.as_ref().expect("traced run");
    assert_trace_accounts("vertical", trace, outcome.output.traffic);
    let json = trace.to_chrome_json("vertical");
    let json = json.trim_end();
    assert!(json.starts_with('{') && json.ends_with('}'), "whole object");
    assert!(json.contains("\"traceEvents\""), "Chrome trace envelope");
    assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
    assert!(
        json.contains("\"execute\"") && json.contains("region#"),
        "per-phase spans present in the export"
    );
    // Every begin has a matching end in the export (replayed, not counted:
    // validate() above already proved it; this pins the serialized form).
    assert_eq!(json.matches("\"ph\":\"B\"").count(), trace.len() / 2);
}
