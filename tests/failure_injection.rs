//! Failure injection: a semi-honest implementation still has to fail
//! *cleanly* on malformed input — typed errors, never panics, never wrong
//! answers — because in deployment the peer is a different codebase.

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{Participant, PartyData};
use ppdbscan::CoreError;
use ppds_bigint::BigUint;
use ppds_dbscan::{DbscanParams, Point};
use ppds_paillier::Keypair;
use ppds_smc::compare::{compare_bob, CmpOp, Comparator, ComparisonDomain};
use ppds_smc::millionaires::{yao_bob, YaoConfig};
use ppds_smc::multiplication::mul_peer;
use ppds_smc::{setup, Party, ProtocolContext, SmcError};
use ppds_transport::{duplex, Channel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn test_keypair() -> Keypair {
    Keypair::generate(128, &mut rng(0))
}

#[test]
fn garbage_public_key_is_rejected_not_panicking() {
    let (mut a, mut b) = duplex();
    a.send(&BigUint::from_u64(12)).unwrap(); // even "modulus"
    let err = setup::recv_public_key(&mut b).unwrap_err();
    assert!(matches!(err, SmcError::Crypto(_)));
}

#[test]
fn zero_ciphertext_in_multiplication_is_crypto_error() {
    let kp = test_keypair();
    let (mut a, mut b) = duplex();
    a.send(&BigUint::zero()).unwrap();
    let err = mul_peer(
        &mut b,
        &kp.public,
        &ppds_bigint::BigInt::from_i64(1),
        &BigUint::from_u64(8),
        &ProtocolContext::new(1),
    )
    .unwrap_err();
    assert!(matches!(err, SmcError::Crypto(_)));
}

#[test]
fn truncated_yao_sequence_is_protocol_error() {
    let kp = test_keypair();
    let config = YaoConfig { n0: 8 };
    let (mut alice_side, mut bob_side) = duplex();
    // Fake "Alice": accept Bob's probe, answer with a too-short sequence.
    let handle = std::thread::spawn(move || {
        let _probe: BigUint = alice_side.recv().unwrap();
        let p = BigUint::from_u64(101);
        let seq = vec![BigUint::from_u64(5); 3]; // should be 8
        alice_side.send(&(p, seq)).unwrap();
        // Bob errors out before step 7; nothing else to do.
    });
    let err = yao_bob(
        &mut bob_side,
        &kp.public,
        4,
        &config,
        &ProtocolContext::new(2),
    )
    .unwrap_err();
    assert!(matches!(err, SmcError::Protocol(_)));
    handle.join().unwrap();
}

#[test]
fn degenerate_yao_modulus_is_protocol_error() {
    let kp = test_keypair();
    let config = YaoConfig { n0: 4 };
    let (mut alice_side, mut bob_side) = duplex();
    let handle = std::thread::spawn(move || {
        let _probe: BigUint = alice_side.recv().unwrap();
        let p = BigUint::one(); // degenerate modulus
        let seq = vec![BigUint::zero(); 4];
        alice_side.send(&(p, seq)).unwrap();
    });
    let err = yao_bob(
        &mut bob_side,
        &kp.public,
        2,
        &config,
        &ProtocolContext::new(3),
    )
    .unwrap_err();
    assert!(matches!(err, SmcError::Protocol(_)));
    handle.join().unwrap();
}

#[test]
fn peer_disconnect_mid_protocol_is_transport_error() {
    let kp = test_keypair();
    let domain = ComparisonDomain::symmetric(10);
    let (alice_side, mut bob_side) = duplex();
    drop(alice_side); // peer vanishes before the first message
    let err = compare_bob(
        Comparator::Ideal,
        &mut bob_side,
        &kp.public,
        3,
        CmpOp::Lt,
        &domain,
        false,
        &ProtocolContext::new(4),
    )
    .unwrap_err();
    assert!(matches!(err, SmcError::Transport(_)));
}

#[test]
fn wrong_typed_message_is_decode_error_not_panic() {
    let kp = test_keypair();
    let (mut a, mut b) = duplex();
    // The responder expects a ciphertext (BigUint); send a bool payload.
    a.send(&true).unwrap();
    let err = mul_peer(
        &mut b,
        &kp.public,
        &ppds_bigint::BigInt::from_i64(1),
        &BigUint::from_u64(8),
        &ProtocolContext::new(5),
    )
    .unwrap_err();
    assert!(matches!(err, SmcError::Transport(_)));
}

#[test]
fn full_driver_surfaces_peer_garbage_as_error() {
    // A "peer" that answers the key exchange with nonsense: the real party
    // must return an error (never hang, never panic).
    let cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 4,
            min_pts: 2,
        },
        10,
    );
    let points = vec![Point::new(vec![0, 0])];
    let (mut honest, mut fake) = duplex();
    let handle = std::thread::spawn(move || {
        let _their_n: BigUint = fake.recv().unwrap();
        fake.send(&BigUint::from_u64(6)).unwrap(); // even, tiny "modulus"
                                                   // Keep the channel open so the honest side isn't just disconnected.
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let err = Participant::new(cfg)
        .role(Party::Alice)
        .data(PartyData::Horizontal(points))
        .rng(rng(6))
        .run(&mut honest)
        .unwrap_err();
    assert!(matches!(err, CoreError::Smc(_)));
    handle.join().unwrap();
}

#[test]
fn mode_mismatch_between_protocols_is_detected() {
    // One side runs horizontal, the other vertical: handshake must catch
    // it, on both sides, naming the mode field.
    let cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 4,
            min_pts: 2,
        },
        10,
    );
    let points = vec![Point::new(vec![0, 0]), Point::new(vec![1, 1])];
    let result = ppdbscan::session::run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(PartyData::Horizontal(points.clone()))
            .rng(rng(7)),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(PartyData::Vertical(points))
            .rng(rng(8)),
    );
    match result.unwrap_err() {
        CoreError::HandshakeMismatch { field, .. } => assert_eq!(field, "mode"),
        other => panic!("wanted HandshakeMismatch on mode, got {other:?}"),
    }
}
