//! Leakage-profile conformance: each protocol's executions must disclose
//! exactly the event classes its theorem permits — nothing more.
//!
//! * Theorem 9 (basic horizontal): querier learns one neighbor **count**
//!   per query; responder learns unlinkable own-point match flags.
//! * Theorem 10 (vertical): both parties learn each queried record's
//!   neighborhood (the protocol output itself).
//! * Theorem 11 (enhanced): querier learns one core-point **bit** per
//!   query; counts never appear anywhere.

mod common;

use common::{rng, run_enhanced_pair, run_horizontal_pair, run_vertical_pair};
use ppdbscan::config::ProtocolConfig;
use ppdbscan::VerticalPartition;
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Point, Quantizer};
use ppds_smc::LeakageEvent;

fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
    ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound)
}

fn test_points() -> (Vec<Point>, Vec<Point>) {
    let quantizer = Quantizer::new(1.0, 40);
    let (points, _) = standard_blobs(&mut rng(1), 8, 2, 2, quantizer);
    split_alternating(&points)
}

#[test]
fn theorem9_basic_horizontal_discloses_counts_only() {
    let (alice, bob) = test_points();
    let c = cfg(49, 3, 40);
    let (a, b) = run_horizontal_pair(&c, &alice, &bob, rng(2), rng(3)).unwrap();

    for out in [&a, &b] {
        for event in out.leakage.events() {
            match event {
                LeakageEvent::NeighborCount { .. } | LeakageEvent::OwnPointMatched { .. } => {}
                other => panic!("Theorem 9 forbids event {other:?}"),
            }
        }
        // Counts are per issued query; every processed own point issues at
        // most one query, and each query logs exactly one count.
        assert!(out.leakage.count_kind("neighbor_count") <= out.clustering.labels.len());
        assert!(out.leakage.count_kind("neighbor_count") > 0);
    }
}

#[test]
fn theorem9_counts_are_bounded_by_peer_set_size() {
    let (alice, bob) = test_points();
    let c = cfg(49, 3, 40);
    let (a, _) = run_horizontal_pair(&c, &alice, &bob, rng(4), rng(5)).unwrap();
    for event in a.leakage.events() {
        if let LeakageEvent::NeighborCount { count, .. } = event {
            assert!(*count as usize <= bob.len());
        }
    }
}

#[test]
fn theorem10_vertical_discloses_neighborhoods_only() {
    let quantizer = Quantizer::new(1.0, 40);
    let (records, _) = standard_blobs(&mut rng(6), 8, 2, 3, quantizer);
    let partition = VerticalPartition::split(&records, 1);
    let c = cfg(49, 3, 40);
    let (a, b) = run_vertical_pair(&c, &partition, rng(7), rng(8)).unwrap();

    for out in [&a, &b] {
        for event in out.leakage.events() {
            match event {
                LeakageEvent::NeighborCount { .. } => {}
                other => panic!("Theorem 10 forbids event {other:?}"),
            }
        }
    }
    // Lockstep: both parties observe the identical query sequence.
    assert_eq!(a.leakage.len(), b.leakage.len());
}

#[test]
fn theorem11_enhanced_discloses_core_bits_never_counts() {
    let (alice, bob) = test_points();
    let c = cfg(49, 3, 40);
    let (a, b) = run_enhanced_pair(&c, &alice, &bob, rng(9), rng(10)).unwrap();

    for out in [&a, &b] {
        assert_eq!(
            out.leakage.count_kind("neighbor_count"),
            0,
            "the enhanced protocol must never reveal a count"
        );
        for event in out.leakage.events() {
            match event {
                LeakageEvent::CorePointBit { .. }
                | LeakageEvent::ThresholdRank { .. }
                | LeakageEvent::OwnPointMatched { .. } => {}
                other => panic!("Theorem 11 forbids event {other:?}"),
            }
        }
    }
    // Every interactive query produced exactly one core bit for the querier.
    assert!(a.leakage.count_kind("core_point_bit") > 0);
    assert!(b.leakage.count_kind("core_point_bit") > 0);
}

#[test]
fn enhanced_threshold_ranks_match_engaged_queries() {
    // Bob's ThresholdRank events correspond 1:1 to Alice's engaged queries
    // (those not decided locally), and each rank is in [1, |bob points|].
    let (alice, bob) = test_points();
    let c = cfg(49, 3, 40);
    let (_, b) = run_enhanced_pair(&c, &alice, &bob, rng(11), rng(12)).unwrap();
    for event in b.leakage.events() {
        if let LeakageEvent::ThresholdRank { k, .. } = event {
            assert!(*k >= 1 && *k as usize <= alice.len().max(bob.len()));
        }
    }
}

#[test]
fn responder_match_flags_are_unlinkable_count_statistics() {
    // Figure 1's defense, stated as a transcript property: the responder's
    // log records only *which of its own* points matched, never an
    // identifier of the querier's record. All context strings must refer to
    // the responder's own indices.
    let (alice, bob) = test_points();
    let c = cfg(49, 3, 40);
    let (_, b) = run_horizontal_pair(&c, &alice, &bob, rng(13), rng(14)).unwrap();
    for event in b.leakage.events() {
        if let LeakageEvent::OwnPointMatched { point } = event {
            assert!(
                point.starts_with("own#"),
                "match flags must reference the responder's own points, got {point}"
            );
        }
    }
}

#[test]
fn honest_protocols_never_emit_linkable_bits() {
    // The LinkedNeighborBit event class exists only for the Kumar [14]
    // baseline; if any honest protocol ever produced one, the Figure 1
    // defense would be void. Sweep all four honest protocol families.
    let (alice, bob) = test_points();
    let c = cfg(49, 3, 40);
    let (ha, hb) = run_horizontal_pair(&c, &alice, &bob, rng(30), rng(31)).unwrap();
    let (ea, eb) = run_enhanced_pair(&c, &alice, &bob, rng(32), rng(33)).unwrap();
    let quantizer = Quantizer::new(1.0, 40);
    let (records, _) = standard_blobs(&mut rng(34), 6, 2, 2, quantizer);
    let vp = VerticalPartition::split(&records, 1);
    let (va, vb) = run_vertical_pair(&c, &vp, rng(35), rng(36)).unwrap();
    for out in [&ha, &hb, &ea, &eb, &va, &vb] {
        assert_eq!(out.leakage.count_kind("linked_neighbor_bit"), 0);
    }
    // The baseline, by contrast, emits one per (query, responder point).
    let (_, kumar_bob) =
        ppdbscan::kumar::run_kumar_pair(&c, &alice, &bob, rng(37), rng(38)).unwrap();
    assert!(kumar_bob.leakage.count_kind("linked_neighbor_bit") > 0);
}

#[test]
fn noise_only_run_still_leaks_only_permitted_events() {
    // All points isolated: every query returns count 0 / not-core.
    let alice = vec![Point::new(vec![-30, -30]), Point::new(vec![30, 30])];
    let bob = vec![Point::new(vec![-30, 30]), Point::new(vec![30, -30])];
    let c = cfg(4, 3, 40);

    let (a_basic, _) = run_horizontal_pair(&c, &alice, &bob, rng(15), rng(16)).unwrap();
    assert_eq!(a_basic.clustering.noise_count(), 2);
    assert_eq!(a_basic.leakage.count_kind("neighbor_count"), 2);
    assert_eq!(a_basic.leakage.count_kind("own_point_matched"), 0);

    let (a_enh, b_enh) = run_enhanced_pair(&c, &alice, &bob, rng(17), rng(18)).unwrap();
    assert_eq!(a_enh.clustering.noise_count(), 2);
    assert_eq!(a_enh.leakage.count_kind("core_point_bit"), 2);
    assert_eq!(b_enh.leakage.count_kind("own_point_matched"), 0);
}
