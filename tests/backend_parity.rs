//! Backend parity: the secret-sharing backend must be observationally
//! interchangeable with the Paillier backend everywhere the paper's
//! protocols surface a result. Concretely, for every protocol mode and
//! both round framings:
//!
//! 1. clustering labels are byte-identical across backends;
//! 2. the `LeakageLog` (event *order* included — the Figure-1-defense
//!    permutations draw from backend-independent keyed streams) and the
//!    modeled `YaoLedger` are byte-identical across backends, so swapping
//!    the arithmetic substrate never changes what a party *observes*; and
//! 3. the trust delta is explicitly ledgered: sharing runs populate the
//!    `SharingLedger` (dealer correlations consumed, elements opened),
//!    Paillier runs leave it at zero — the ledger itself records which
//!    trust model produced a given output.
//!
//! Plus direct property tests of the `Z_2^64` field layer: embed/lift
//! round-trips, additive reconstruction, Beaver-fold correctness against
//! plaintext inner products, and `share_less_than` against plaintext `<`.

mod common;

use common::{
    run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_multiparty, run_vertical_pair,
};
use ppds::ppdbscan::config::ProtocolConfig;
use ppds::ppdbscan::{ArbitraryPartition, PartyOutput, VerticalPartition};
use ppds::ppds_dbscan::{DbscanParams, Point};
use ppds::ppds_smc::compare::ComparisonDomain;
use ppds::ppds_smc::sharing::{
    fe_dot, sharing_fold_keyholder_one, sharing_fold_peer_one, sharing_share_less_than_alice,
    sharing_share_less_than_bob, Fe,
};
use ppds::ppds_smc::{BackendKind, DealerTape, ProtocolContext, SharingLedger};
use ppds::ppds_transport::duplex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn lattice_points(seed: u64, n: usize, bound: i64) -> Vec<Point> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            Point::new(vec![
                r.random_range(-bound..=bound),
                r.random_range(-bound..=bound),
            ])
        })
        .collect()
}

fn base_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 8,
            min_pts: 2,
        },
        6,
    )
}

/// Labels, leakage (order-sensitive), and the modeled Yao ledger must be
/// byte-identical across backends; wire traffic legitimately differs
/// (that difference is the whole point of the sharing backend), so it is
/// asserted separately, not compared.
fn assert_backend_parity(
    name: &str,
    paillier: &(PartyOutput, PartyOutput),
    sharing: &(PartyOutput, PartyOutput),
) {
    for (side, (po, so)) in [
        ("alice", (&paillier.0, &sharing.0)),
        ("bob", (&paillier.1, &sharing.1)),
    ] {
        assert_eq!(po.clustering, so.clustering, "{name}/{side}: labels");
        assert_eq!(po.leakage, so.leakage, "{name}/{side}: leakage event order");
        assert_eq!(po.yao, so.yao, "{name}/{side}: yao ledger");
        assert_eq!(
            po.sharing,
            SharingLedger::default(),
            "{name}/{side}: Paillier run must not touch the sharing ledger"
        );
        assert!(
            so.sharing.compares > 0 || so.sharing.triples > 0,
            "{name}/{side}: sharing run must ledger its dealer trust"
        );
        assert!(
            so.sharing.modeled_offline_bytes > 0,
            "{name}/{side}: sharing run must model its offline cost"
        );
    }
}

#[test]
fn all_modes_agree_across_backends_and_framings() {
    let points = lattice_points(17, 6, 5);
    let (alice, bob) = (points[..3].to_vec(), points[3..].to_vec());
    let vertical = VerticalPartition::split(&points, 1);
    let arbitrary = ArbitraryPartition::random(&mut rng(0xA5A5), &points);

    for batching in [false, true] {
        let tag = if batching { "batched" } else { "unbatched" };
        let p_cfg = base_cfg().with_batching(batching);
        let s_cfg = p_cfg.with_backend(BackendKind::Sharing);

        let p = run_horizontal_pair(&p_cfg, &alice, &bob, rng(1), rng(2)).unwrap();
        let s = run_horizontal_pair(&s_cfg, &alice, &bob, rng(1), rng(2)).unwrap();
        assert_backend_parity(&format!("horizontal/{tag}"), &p, &s);

        let mut enh = p_cfg;
        enh.params.min_pts = 3; // force the joint core tests to engage
        let enh_s = enh.with_backend(BackendKind::Sharing);
        let p = run_enhanced_pair(&enh, &alice, &bob, rng(3), rng(4)).unwrap();
        let s = run_enhanced_pair(&enh_s, &alice, &bob, rng(3), rng(4)).unwrap();
        assert_backend_parity(&format!("enhanced/{tag}"), &p, &s);

        let p = run_vertical_pair(&p_cfg, &vertical, rng(5), rng(6)).unwrap();
        let s = run_vertical_pair(&s_cfg, &vertical, rng(5), rng(6)).unwrap();
        assert_backend_parity(&format!("vertical/{tag}"), &p, &s);

        let p = run_arbitrary_pair(&p_cfg, &arbitrary, rng(7), rng(8)).unwrap();
        let s = run_arbitrary_pair(&s_cfg, &arbitrary, rng(7), rng(8)).unwrap();
        assert_backend_parity(&format!("arbitrary/{tag}"), &p, &s);

        let parties = vec![
            points[..2].to_vec(),
            points[2..4].to_vec(),
            points[4..].to_vec(),
        ];
        let mp = run_multiparty(&p_cfg, &parties, 99).unwrap();
        let ms = run_multiparty(&s_cfg, &parties, 99).unwrap();
        for (i, (po, so)) in mp.iter().zip(&ms).enumerate() {
            assert_eq!(po.clustering, so.clustering, "multiparty/{tag} party {i}");
            assert_eq!(po.leakage, so.leakage, "multiparty/{tag} party {i} leakage");
            assert_eq!(po.yao, so.yao, "multiparty/{tag} party {i} yao");
            assert_eq!(po.sharing, SharingLedger::default());
            assert!(so.sharing.compares > 0, "multiparty/{tag} party {i} ledger");
        }
    }
}

/// The sharing backend's own framings must also agree with each other —
/// batching is a wire-layout choice, never an arithmetic one.
#[test]
fn sharing_backend_is_batching_invariant() {
    let points = lattice_points(23, 6, 5);
    let (alice, bob) = (points[..3].to_vec(), points[3..].to_vec());
    let u_cfg = base_cfg().with_backend(BackendKind::Sharing);
    let b_cfg = u_cfg.with_batching(true);
    let u = run_horizontal_pair(&u_cfg, &alice, &bob, rng(9), rng(10)).unwrap();
    let b = run_horizontal_pair(&b_cfg, &alice, &bob, rng(9), rng(10)).unwrap();
    for (side, (uo, bo)) in [("alice", (&u.0, &b.0)), ("bob", (&u.1, &b.1))] {
        assert_eq!(uo.clustering, bo.clustering, "{side}: labels");
        assert_eq!(uo.leakage, bo.leakage, "{side}: leakage");
        assert_eq!(
            uo.sharing, bo.sharing,
            "{side}: framing must consume identical correlations"
        );
    }
}

/// The headline perf claim, pinned: on the same vertical workload the
/// sharing backend must move at least 10× fewer wire bytes than the
/// packed-Paillier path.
#[test]
fn sharing_moves_an_order_of_magnitude_fewer_bytes_on_vertical() {
    let points = lattice_points(31, 12, 5);
    let partition = VerticalPartition::split(&points, 1);
    let p_cfg = base_cfg().with_batching(true);
    let s_cfg = p_cfg.with_backend(BackendKind::Sharing);
    let (pa, _) = run_vertical_pair(&p_cfg, &partition, rng(11), rng(12)).unwrap();
    let (sa, _) = run_vertical_pair(&s_cfg, &partition, rng(11), rng(12)).unwrap();
    assert_eq!(pa.clustering, sa.clustering, "labels must agree");
    let (pb, sb) = (pa.traffic.bytes_sent, sa.traffic.bytes_sent);
    assert!(
        sb * 10 <= pb,
        "sharing sent {sb} bytes, packed Paillier {pb}: need >= 10x reduction"
    );
}

// ---------------------------------------------------------------------------
// Field-layer property tests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The signed embedding is a bijection.
    #[test]
    fn embed_lift_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(Fe::embed(v).lift(), v);
    }

    /// Additive sharing reconstructs exactly for any mask, including ones
    /// whose i64 difference would overflow: shares live in the ring.
    #[test]
    fn additive_shares_reconstruct(v in any::<i64>(), mask in any::<u64>()) {
        let share_a = Fe::embed(v) - Fe(mask);
        let share_b = Fe(mask);
        prop_assert_eq!((share_a + share_b).lift(), v);
    }

    /// Ring arithmetic matches wrapping i64/u64 arithmetic.
    #[test]
    fn ring_ops_match_wrapping_semantics(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(
            (Fe::embed(a) + Fe::embed(b)).lift(),
            a.wrapping_add(b)
        );
        prop_assert_eq!(
            (Fe::embed(a) * Fe::embed(b)).lift(),
            a.wrapping_mul(b)
        );
        prop_assert_eq!((-Fe::embed(a)).lift(), a.wrapping_neg());
    }

    /// A Beaver inner-product fold over a live channel equals the plaintext
    /// inner product — the triple's correlation cancels exactly.
    #[test]
    fn beaver_fold_equals_plaintext_dot(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-1000i64..=1000, 1..6),
        ys_extra in proptest::collection::vec(-1000i64..=1000, 6..=6),
    ) {
        let ys: Vec<i64> = ys_extra[..xs.len()].to_vec();
        let expected: i64 = xs.iter().zip(&ys).map(|(&x, &y)| x * y).sum();
        let tape = DealerTape::from_seed(seed);
        let ctx = ProtocolContext::new(seed ^ 0xF01D);
        let (mut a_chan, mut b_chan) = duplex();
        let xs_fe: Vec<Fe> = xs.iter().map(|&x| Fe::embed(x)).collect();
        let ys_fe: Vec<Fe> = ys.iter().map(|&y| Fe::embed(y)).collect();
        let peer_ctx = ctx;
        let peer = thread::spawn(move || {
            let mut acct = SharingLedger::default();
            sharing_fold_peer_one(&tape, &mut b_chan, &ys_fe, &peer_ctx, &mut acct).unwrap();
            acct
        });
        let mut acct = SharingLedger::default();
        let got = sharing_fold_keyholder_one(&tape, &mut a_chan, &xs_fe, &ctx, &mut acct)
            .unwrap();
        let peer_acct = peer.join().unwrap();
        prop_assert_eq!(got.lift(), expected);
        prop_assert_eq!(acct.triples, xs.len() as u64);
        prop_assert_eq!(acct, peer_acct, "both sides account the same fold");
    }

    /// `share_less_than` over shared distances equals the plaintext
    /// compare, for arbitrary in-ring share splits of both operands.
    #[test]
    fn share_less_than_matches_plaintext(
        seed in any::<u64>(),
        dist_a in -100_000i64..=100_000,
        dist_b in -100_000i64..=100_000,
        mask_a in any::<i64>(),
        mask_b in any::<i64>(),
    ) {
        // Alice holds (u_a, u_b), Bob holds (v_a, v_b), with
        // dist_a = u_a − v_a and dist_b = u_b − v_b (the Paillier share
        // convention: keyholder holds value + mask, peer holds the mask).
        let u_a = (Fe::embed(dist_a) + Fe::embed(mask_a)).lift();
        let v_a = mask_a;
        let u_b = (Fe::embed(dist_b) + Fe::embed(mask_b)).lift();
        let v_b = mask_b;
        let tape = DealerTape::from_seed(seed);
        let ctx = ProtocolContext::new(seed ^ 0x17);
        let domain = ComparisonDomain::symmetric(200_000);
        let (mut a_chan, mut b_chan) = duplex();
        let (bob_ctx, bob_domain) = (ctx, domain);
        let bob = thread::spawn(move || {
            let mut acct = SharingLedger::default();
            sharing_share_less_than_bob(
                &tape, &mut b_chan, v_a, v_b, &bob_domain, &bob_ctx, &mut acct,
            )
            .unwrap()
        });
        let mut acct = SharingLedger::default();
        let got = sharing_share_less_than_alice(
            &tape, &mut a_chan, u_a, u_b, &domain, &ctx, &mut acct,
        )
        .unwrap();
        let bob_got = bob.join().unwrap();
        prop_assert_eq!(got, dist_a < dist_b, "alice verdict");
        prop_assert_eq!(bob_got, got, "both parties learn the same bit");
        prop_assert_eq!(acct.compares, 1);
        prop_assert!(acct.bit_triples > 0, "modeled bit-decomposition cost");
    }

    /// `fe_dot` agrees with the schoolbook wrapping inner product.
    #[test]
    fn fe_dot_matches_schoolbook(
        pairs in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..8),
    ) {
        let a: Vec<Fe> = pairs.iter().map(|&(x, _)| Fe::embed(x)).collect();
        let b: Vec<Fe> = pairs.iter().map(|&(_, y)| Fe::embed(y)).collect();
        let expected = pairs
            .iter()
            .fold(0i64, |acc, &(x, y)| acc.wrapping_add(x.wrapping_mul(y)));
        prop_assert_eq!(fe_dot(&a, &b).lift(), expected);
    }
}
