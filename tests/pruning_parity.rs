//! Pruning parity: grid candidate pruning must be a pure *work* optimization,
//! never a *result* change, wherever the candidate generator is exact.
//!
//! For every protocol mode, both backends, and both wire framings, the pruned
//! run (`Pruning::Grid`) is compared against the exhaustive run
//! (`Pruning::Exhaustive`) under identical seeds on a workload of two blobs
//! far enough apart that every cross-blob pair falls outside the pruning
//! bands:
//!
//! 1. clustering labels are byte-identical — grid pruning only skips pairs
//!    that are provably non-neighbors (band distance ≥ 2 ⟹ gap > Eps);
//! 2. the modeled secure-comparison count strictly drops — the whole point
//!    of the subsystem;
//! 3. every disclosure pruning makes is a typed `LeakageLog` event:
//!    per-query cell/candidate-count events in the point-holding modes,
//!    one band-table event per party in the attribute-split modes — and
//!    exhaustive runs emit none of them;
//! 4. the mode-appropriate slice of the classic leakage profile is
//!    unchanged: `NeighborCount` sequences (Theorems 9/10) survive pruning
//!    exactly, and the responder-side `OwnPointMatched` multiset is
//!    preserved (only the Figure-1-defense permutation order may differ,
//!    because it now permutes the candidate list).

mod common;

use common::{
    run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_multiparty, run_vertical_pair,
};
use ppds::ppdbscan::config::ProtocolConfig;
use ppds::ppdbscan::{ArbitraryPartition, PartyOutput, VerticalPartition};
use ppds::ppds_dbscan::{DbscanParams, Point, Pruning};
use ppds::ppds_smc::{BackendKind, LeakageEvent, LeakageLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Two tight blobs separated by far more than Eps: with `eps_sq = 8` the
/// band width at coarseness 1 is 3, so the blobs sit ~10 bands apart and
/// every cross-blob candidate is pruned. The ±1 spread keeps every
/// intra-blob pair within Eps (max squared distance 8), so each blob is a
/// clique — which lets the enhanced test force joint core tests to engage.
fn two_blob_points(seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    let mut points = Vec::new();
    for center in [0i64, 30] {
        for _ in 0..6 {
            points.push(Point::new(vec![
                center + r.random_range(-1i64..=1),
                center + r.random_range(-1i64..=1),
            ]));
        }
    }
    points
}

fn base_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 8,
            min_pts: 2,
        },
        34,
    )
}

/// The backend × framing matrix every mode is checked under.
fn config_matrix() -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("paillier", base_cfg()),
        (
            "paillier/batched+packed",
            base_cfg().with_batching(true).with_packing(true),
        ),
        ("sharing", base_cfg().with_backend(BackendKind::Sharing)),
        (
            "sharing/batched",
            base_cfg()
                .with_backend(BackendKind::Sharing)
                .with_batching(true),
        ),
    ]
}

const PRUNING_KINDS: [&str; 3] = ["pruning_cell", "pruning_candidates", "pruning_bands"];

fn events_of_kind(log: &LeakageLog, kind: &str) -> Vec<LeakageEvent> {
    log.events()
        .iter()
        .filter(|e| e.kind() == kind)
        .cloned()
        .collect()
}

fn own_matched_multiset(log: &LeakageLog) -> Vec<String> {
    let mut points: Vec<String> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            LeakageEvent::OwnPointMatched { point } => Some(point.clone()),
            _ => None,
        })
        .collect();
    points.sort();
    points
}

/// What pruning disclosure shape a mode uses, and which slices of the
/// classic leakage profile it must preserve exactly.
struct ModeProfile {
    /// Per-query cell/count exchange (`true`) vs up-front band tables.
    cell_exchange: bool,
    /// `NeighborCount` sequences must match event-for-event.
    neighbor_counts_exact: bool,
    /// The `OwnPointMatched` multiset must match.
    own_matched_multiset: bool,
    /// `CorePointBit` sequences must match event-for-event (enhanced).
    core_bits_exact: bool,
}

fn assert_party_parity(
    name: &str,
    exhaustive: &PartyOutput,
    pruned: &PartyOutput,
    p: &ModeProfile,
) {
    assert_eq!(
        exhaustive.clustering, pruned.clustering,
        "{name}: pruned labels must be byte-identical"
    );
    assert!(
        pruned.yao.comparisons < exhaustive.yao.comparisons,
        "{name}: pruning must strictly cut comparisons ({} -> {})",
        exhaustive.yao.comparisons,
        pruned.yao.comparisons
    );
    for kind in PRUNING_KINDS {
        assert_eq!(
            exhaustive.leakage.count_kind(kind),
            0,
            "{name}: exhaustive run must emit no {kind} events"
        );
    }
    if p.cell_exchange {
        assert!(
            pruned.leakage.count_kind("pruning_cell") > 0,
            "{name}: responder role must ledger disclosed query cells"
        );
        assert!(
            pruned.leakage.count_kind("pruning_candidates") > 0,
            "{name}: querier role must ledger candidate cardinalities"
        );
        assert_eq!(
            pruned.leakage.count_kind("pruning_bands"),
            0,
            "{name}: point-holding modes never exchange band tables"
        );
    } else {
        assert_eq!(
            pruned.leakage.count_kind("pruning_bands"),
            1,
            "{name}: attribute-split modes exchange exactly one band table"
        );
        assert_eq!(
            pruned.leakage.count_kind("pruning_cell")
                + pruned.leakage.count_kind("pruning_candidates"),
            0,
            "{name}: attribute-split modes never run the per-query exchange"
        );
    }
    if p.neighbor_counts_exact {
        assert_eq!(
            events_of_kind(&exhaustive.leakage, "neighbor_count"),
            events_of_kind(&pruned.leakage, "neighbor_count"),
            "{name}: NeighborCount sequence must survive pruning exactly"
        );
    }
    if p.own_matched_multiset {
        assert_eq!(
            own_matched_multiset(&exhaustive.leakage),
            own_matched_multiset(&pruned.leakage),
            "{name}: OwnPointMatched multiset must survive pruning"
        );
    }
    if p.core_bits_exact {
        assert_eq!(
            events_of_kind(&exhaustive.leakage, "core_point_bit"),
            events_of_kind(&pruned.leakage, "core_point_bit"),
            "{name}: CorePointBit sequence must survive pruning exactly"
        );
    }
}

fn assert_pair_parity(
    name: &str,
    exhaustive: &(PartyOutput, PartyOutput),
    pruned: &(PartyOutput, PartyOutput),
    profile: &ModeProfile,
) {
    assert_party_parity(&format!("{name}/alice"), &exhaustive.0, &pruned.0, profile);
    assert_party_parity(&format!("{name}/bob"), &exhaustive.1, &pruned.1, profile);
}

const HORIZONTAL: ModeProfile = ModeProfile {
    cell_exchange: true,
    neighbor_counts_exact: true,
    own_matched_multiset: true,
    core_bits_exact: false,
};

/// Enhanced discloses no neighbor counts; the k-th selection's comparison
/// outcomes legitimately differ (they range over a smaller candidate list),
/// so only labels, core bits, and the comparison drop are pinned.
const ENHANCED: ModeProfile = ModeProfile {
    cell_exchange: true,
    neighbor_counts_exact: false,
    own_matched_multiset: false,
    core_bits_exact: true,
};

const BANDED: ModeProfile = ModeProfile {
    cell_exchange: false,
    neighbor_counts_exact: true,
    own_matched_multiset: false,
    core_bits_exact: false,
};

#[test]
fn horizontal_pruning_is_exact_and_cheaper() {
    let points = two_blob_points(0xE13);
    let (alice, bob): (Vec<_>, Vec<_>) = points
        .iter()
        .cloned()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    let alice: Vec<Point> = alice.into_iter().map(|(_, p)| p).collect();
    let bob: Vec<Point> = bob.into_iter().map(|(_, p)| p).collect();
    for (tag, cfg) in config_matrix() {
        let pruned_cfg = cfg.with_pruning(Pruning::Grid { coarseness: 1 });
        let ex = run_horizontal_pair(&cfg, &alice, &bob, rng(1), rng(2)).unwrap();
        let pr = run_horizontal_pair(&pruned_cfg, &alice, &bob, rng(1), rng(2)).unwrap();
        assert_pair_parity(&format!("horizontal/{tag}"), &ex, &pr, &HORIZONTAL);
    }
}

#[test]
fn enhanced_pruning_is_exact_and_cheaper() {
    let points = two_blob_points(0xE14);
    // Alternating split: each party holds 3 points of each 6-point clique,
    // so with min_pts = 5 every core test must engage the peer (own side
    // alone can never reach the threshold) and every engaged selection
    // ranges over 3 pruned candidates instead of all 6 peer points.
    let (alice, bob): (Vec<_>, Vec<_>) = points
        .iter()
        .cloned()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    let alice: Vec<Point> = alice.into_iter().map(|(_, p)| p).collect();
    let bob: Vec<Point> = bob.into_iter().map(|(_, p)| p).collect();
    for (tag, cfg) in config_matrix() {
        let mut cfg = cfg;
        cfg.params.min_pts = 5;
        let pruned_cfg = cfg.with_pruning(Pruning::Grid { coarseness: 1 });
        let ex = run_enhanced_pair(&cfg, &alice, &bob, rng(3), rng(4)).unwrap();
        let pr = run_enhanced_pair(&pruned_cfg, &alice, &bob, rng(3), rng(4)).unwrap();
        assert_pair_parity(&format!("enhanced/{tag}"), &ex, &pr, &ENHANCED);
    }
}

#[test]
fn vertical_pruning_is_exact_and_cheaper() {
    let points = two_blob_points(0xE15);
    let partition = VerticalPartition::split(&points, 1);
    for (tag, cfg) in config_matrix() {
        let pruned_cfg = cfg.with_pruning(Pruning::Grid { coarseness: 1 });
        let ex = run_vertical_pair(&cfg, &partition, rng(5), rng(6)).unwrap();
        let pr = run_vertical_pair(&pruned_cfg, &partition, rng(5), rng(6)).unwrap();
        assert_pair_parity(&format!("vertical/{tag}"), &ex, &pr, &BANDED);
    }
}

#[test]
fn arbitrary_pruning_is_exact_and_cheaper() {
    let points = two_blob_points(0xE16);
    let partition = ArbitraryPartition::random(&mut rng(0xA5A5), &points);
    for (tag, cfg) in config_matrix() {
        let pruned_cfg = cfg.with_pruning(Pruning::Grid { coarseness: 1 });
        let ex = run_arbitrary_pair(&cfg, &partition, rng(7), rng(8)).unwrap();
        let pr = run_arbitrary_pair(&pruned_cfg, &partition, rng(7), rng(8)).unwrap();
        assert_pair_parity(&format!("arbitrary/{tag}"), &ex, &pr, &BANDED);
    }
}

#[test]
fn multiparty_pruning_is_exact_and_cheaper() {
    let points = two_blob_points(0xE17);
    let parties = vec![
        points[..4].to_vec(),
        points[4..8].to_vec(),
        points[8..].to_vec(),
    ];
    for (tag, cfg) in config_matrix() {
        let pruned_cfg = cfg.with_pruning(Pruning::Grid { coarseness: 1 });
        let ex = run_multiparty(&cfg, &parties, 99).unwrap();
        let pr = run_multiparty(&pruned_cfg, &parties, 99).unwrap();
        assert_eq!(ex.len(), pr.len());
        for (i, (eo, po)) in ex.iter().zip(&pr).enumerate() {
            assert_party_parity(&format!("multiparty/{tag}/party{i}"), eo, po, &HORIZONTAL);
        }
    }
}
