//! Deployment and accounting tests: the protocols over real TCP sockets,
//! and the communication-complexity shape checks behind experiments E1/E2.

mod common;

use common::{rng, run_horizontal_pair, run_vertical_pair};
use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{Participant, PartyData, SessionOutcome, WIRE_VERSION};
use ppdbscan::VerticalPartition;
use ppds_dbscan::{dbscan, dbscan_with_external_density, DbscanParams, Point};
use ppds_smc::Party;
use ppds_transport::tcp::TcpChannel;
use std::net::TcpListener;

fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
    ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound)
}

/// Runs one participant over a real TCP socket: the accepting side listens
/// on an ephemeral port, the connecting side dials it.
fn over_tcp(
    listener: Option<TcpListener>,
    addr: std::net::SocketAddr,
    participant: Participant,
) -> SessionOutcome {
    let mut chan = match listener {
        Some(listener) => TcpChannel::accept(&listener).unwrap(),
        None => TcpChannel::connect(addr).unwrap(),
    };
    participant.run(&mut chan).unwrap()
}

#[test]
fn horizontal_protocol_over_real_tcp_sockets() {
    let alice = vec![
        Point::new(vec![0, 0]),
        Point::new(vec![1, 1]),
        Point::new(vec![10, 10]),
    ];
    let bob = vec![Point::new(vec![0, 1]), Point::new(vec![11, 10])];
    let c = cfg(4, 3, 15);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let alice_participant = Participant::new(c)
        .role(Party::Alice)
        .data(PartyData::Horizontal(alice.clone()))
        .rng(rng(1));
    let alice_thread =
        std::thread::spawn(move || over_tcp(Some(listener), addr, alice_participant));
    let b_outcome = over_tcp(
        None,
        addr,
        Participant::new(c)
            .role(Party::Bob)
            .data(PartyData::Horizontal(bob.clone()))
            .rng(rng(2)),
    );
    let a_outcome = alice_thread.join().unwrap();
    let (a_out, b_out) = (&a_outcome.output, &b_outcome.output);

    assert_eq!(
        a_out.clustering,
        dbscan_with_external_density(&alice, &bob, c.params)
    );
    assert_eq!(
        b_out.clustering,
        dbscan_with_external_density(&bob, &alice, c.params)
    );
    // The negotiated metadata survives the real socket unchanged.
    assert_eq!(a_outcome.meta.wire_version, WIRE_VERSION);
    assert_eq!(a_outcome.meta.peers[0].n, bob.len());
    assert_eq!(b_outcome.meta.peers[0].n, alice.len());
    // TCP and in-memory transports must charge identical traffic: with the
    // same seeds the transcript is identical, so the full MetricsSnapshot
    // (bytes and messages, both directions) must match exactly.
    let (mem_a, mem_b) = run_horizontal_pair(&c, &alice, &bob, rng(1), rng(2)).unwrap();
    assert_eq!(a_out.traffic, mem_a.traffic);
    assert_eq!(b_out.traffic, mem_b.traffic);
    assert_eq!(a_out.traffic.bytes_sent, mem_b.traffic.bytes_received);
}

#[test]
fn vertical_protocol_over_real_tcp_sockets() {
    let records = vec![
        Point::new(vec![0, 0]),
        Point::new(vec![1, 1]),
        Point::new(vec![9, 9]),
        Point::new(vec![1, 0]),
    ];
    let partition = VerticalPartition::split(&records, 1);
    let c = cfg(2, 2, 10);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let alice_participant = Participant::new(c)
        .role(Party::Alice)
        .data(PartyData::Vertical(partition.alice.clone()))
        .rng(rng(3));
    let alice_thread =
        std::thread::spawn(move || over_tcp(Some(listener), addr, alice_participant));
    let b_out = over_tcp(
        None,
        addr,
        Participant::new(c)
            .role(Party::Bob)
            .data(PartyData::Vertical(partition.bob.clone()))
            .rng(rng(4)),
    )
    .output;
    let a_out = alice_thread.join().unwrap().output;

    let reference = dbscan(&records, c.params);
    assert_eq!(a_out.clustering, reference);
    assert_eq!(b_out.clustering, reference);
}

#[test]
fn batched_vertical_protocol_over_real_tcp_sockets() {
    // The round-batched pipeline on its target deployment path: real
    // sockets. Same labels as the in-memory batched run, byte-identical
    // traffic snapshot (including the new rounds counters), and the round
    // collapse visible end to end.
    let records: Vec<Point> = (0..10)
        .map(|i| Point::new(vec![(i % 5) * 2, i / 5]))
        .collect();
    let partition = VerticalPartition::split(&records, 1);
    let c = cfg(2, 2, 10).with_batching(true);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let alice_participant = Participant::new(c)
        .role(Party::Alice)
        .data(PartyData::Vertical(partition.alice.clone()))
        .rng(rng(30));
    let alice_thread =
        std::thread::spawn(move || over_tcp(Some(listener), addr, alice_participant));
    let b_outcome = over_tcp(
        None,
        addr,
        Participant::new(c)
            .role(Party::Bob)
            .data(PartyData::Vertical(partition.bob.clone()))
            .rng(rng(31)),
    );
    let a_outcome = alice_thread.join().unwrap();
    assert!(a_outcome.meta.batching && b_outcome.meta.batching);
    let (a_out, b_out) = (a_outcome.output, b_outcome.output);

    assert_eq!(a_out.clustering, dbscan(&records, c.params));
    let (mem_a, mem_b) = run_vertical_pair(&c, &partition, rng(30), rng(31)).unwrap();
    assert_eq!(a_out.traffic, mem_a.traffic, "TCP batch accounting parity");
    assert_eq!(b_out.traffic, mem_b.traffic);
    assert!(
        a_out.traffic.total_messages() >= 3 * a_out.traffic.total_rounds(),
        "batched frames must carry many logical messages ({} msgs, {} rounds)",
        a_out.traffic.total_messages(),
        a_out.traffic.total_rounds()
    );
}

/// §4.2.2: horizontal communication is O(c1·m·l(n−l) + c2·n0·l(n−l)).
/// With every point queried once, the pair term l(n−l) appears exactly as
/// (number of issued queries) × (peer size) comparisons.
#[test]
fn horizontal_comparison_count_is_queries_times_peer_size() {
    let alice: Vec<Point> = (0..5).map(|i| Point::new(vec![i * 20, 0])).collect();
    let bob: Vec<Point> = (0..7).map(|i| Point::new(vec![i * 20, 50])).collect();
    let c = cfg(4, 2, 200);
    let (a_out, b_out) = run_horizontal_pair(&c, &alice, &bob, rng(5), rng(6)).unwrap();
    let alice_queries = a_out.leakage.count_kind("neighbor_count") as u64;
    let bob_queries = b_out.leakage.count_kind("neighbor_count") as u64;
    // Ledger counts both phases (own queries and responses to the peer's).
    let expected = alice_queries * bob.len() as u64 + bob_queries * alice.len() as u64;
    assert_eq!(a_out.yao.comparisons, expected);
    assert_eq!(b_out.yao.comparisons, expected);
}

/// §4.3.2: vertical communication is O(c2·n0·n²) — the comparison count is
/// (number of region queries) × (n − 1), with one region query per
/// processed record.
#[test]
fn vertical_comparison_count_matches_formula() {
    let records: Vec<Point> = (0..8).map(|i| Point::new(vec![i, 0])).collect();
    let partition = VerticalPartition::split(&records, 1);
    let c = cfg(1, 2, 10);
    let (a_out, _) = run_vertical_pair(&c, &partition, rng(7), rng(8)).unwrap();
    let queries = a_out.leakage.count_kind("neighbor_count") as u64;
    let n = records.len() as u64;
    assert_eq!(a_out.yao.comparisons, queries * (n - 1));
    assert!(queries >= n, "every record queried at least once");
}

/// E1's m-scaling: the `O(c1·m·l(n−l))` multiplication term grows linearly
/// with the attribute count at fixed n, while the comparison term does not
/// depend on m. Isolate the multiplication bytes as the difference between
/// two runs with identical query structure (the comparison traffic is
/// byte-identical across them — same comparison count, same capped
/// padding).
#[test]
fn horizontal_bytes_scale_linearly_with_dimension() {
    let make = |m: usize| -> (Vec<Point>, Vec<Point>) {
        let a = (0..3)
            .map(|i| Point::new(vec![i as i64; m]))
            .collect::<Vec<_>>();
        let b = (0..3)
            .map(|i| Point::new(vec![i as i64 + 1; m]))
            .collect::<Vec<_>>();
        (a, b)
    };
    let c2 = cfg(4, 2, 10);
    let (m2, _) = {
        let (a, b) = make(2);
        run_horizontal_pair(&c2, &a, &b, rng(9), rng(10)).unwrap()
    };
    let (m8, _) = {
        let (a, b) = make(8);
        run_horizontal_pair(&c2, &a, &b, rng(11), rng(12)).unwrap()
    };
    assert_eq!(
        m2.yao.comparisons, m8.yao.comparisons,
        "identical geometry must issue identical comparison sequences"
    );
    // Each pair exchanges m ciphertexts per direction; going from m = 2 to
    // m = 8 adds 12 ciphertexts per pair. A 256-bit-key ciphertext is 64
    // wire bytes plus its 4-byte length prefix.
    let pairs = m2.yao.comparisons;
    let ct_bytes = (2 * c2.key_bits / 8 + 4) as u64;
    let expected_delta = pairs * 12 * ct_bytes;
    let delta = m8.traffic.total_bytes() - m2.traffic.total_bytes();
    let rel_err = (delta as f64 - expected_delta as f64).abs() / expected_delta as f64;
    assert!(
        rel_err < 0.10,
        "delta {delta} vs expected {expected_delta} (rel err {rel_err:.3})"
    );
}
