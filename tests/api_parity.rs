//! API parity: the new `ppdbscan::session::Participant` surface must be
//! **byte-identical** to the deprecated free-function drivers for every
//! protocol mode — labels, `LeakageLog`, `YaoLedger`, and the full
//! `MetricsSnapshot` — at multiple seeds, and every mode must also run
//! through `Participant` over real TCP sockets with the same outputs as
//! in-memory.
#![allow(deprecated)] // this suite exists to compare against the legacy API

use ppdbscan::config::ProtocolConfig;
use ppdbscan::driver::{
    run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_vertical_pair,
};
use ppdbscan::session::{
    run_mesh_local, run_participants, Mode, Participant, PartyData, SessionOutcome, WIRE_VERSION,
};
use ppdbscan::{run_multiparty_horizontal, ArbitraryPartition, PartyOutput, VerticalPartition};
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Point, Quantizer};
use ppds_smc::Party;
use ppds_transport::tcp::TcpChannel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpListener;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn blobs(n: usize, seed: u64) -> Vec<Point> {
    let quantizer = Quantizer::new(1.0, 60);
    let (points, _) = standard_blobs(&mut rng(seed), (n / 3).max(1), 3, 2, quantizer);
    points
}

fn base_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    )
}

/// Asserts every field the acceptance criteria pin: labels, leakage, Yao
/// ledger, and the complete traffic snapshot.
fn assert_output_parity(name: &str, legacy: &PartyOutput, new: &PartyOutput) {
    assert_eq!(legacy.clustering, new.clustering, "{name}: labels");
    assert_eq!(legacy.leakage, new.leakage, "{name}: LeakageLog");
    assert_eq!(legacy.yao, new.yao, "{name}: YaoLedger");
    assert_eq!(legacy.traffic, new.traffic, "{name}: MetricsSnapshot");
}

/// The two parties' `PartyData` views of one mode over one dataset.
fn mode_views(mode: Mode, records: &[Point], seed: u64) -> (PartyData, PartyData) {
    match mode {
        Mode::Horizontal => {
            let (a, b) = split_alternating(records);
            (PartyData::Horizontal(a), PartyData::Horizontal(b))
        }
        Mode::Enhanced => {
            let (a, b) = split_alternating(records);
            (PartyData::Enhanced(a), PartyData::Enhanced(b))
        }
        Mode::Vertical => {
            let part = VerticalPartition::split(records, 1);
            (
                PartyData::Vertical(part.alice),
                PartyData::Vertical(part.bob),
            )
        }
        Mode::Arbitrary => {
            let part = ArbitraryPartition::random(&mut rng(seed ^ 0xA5A5), records);
            (
                PartyData::Arbitrary(part.alice_values),
                PartyData::Arbitrary(part.bob_values),
            )
        }
        other => panic!("mode_views covers two-party modes only, got {other}"),
    }
}

/// The same mode through the deprecated free function.
fn legacy_pair(
    mode: Mode,
    cfg: &ProtocolConfig,
    records: &[Point],
    seed: u64,
) -> (PartyOutput, PartyOutput) {
    let (rng_a, rng_b) = (rng(seed), rng(seed + 1));
    match mode {
        Mode::Horizontal => {
            let (a, b) = split_alternating(records);
            run_horizontal_pair(cfg, &a, &b, rng_a, rng_b).unwrap()
        }
        Mode::Enhanced => {
            let (a, b) = split_alternating(records);
            run_enhanced_pair(cfg, &a, &b, rng_a, rng_b).unwrap()
        }
        Mode::Vertical => {
            let part = VerticalPartition::split(records, 1);
            run_vertical_pair(cfg, &part, rng_a, rng_b).unwrap()
        }
        Mode::Arbitrary => {
            let part = ArbitraryPartition::random(&mut rng(seed ^ 0xA5A5), records);
            run_arbitrary_pair(cfg, &part, rng_a, rng_b).unwrap()
        }
        other => panic!("legacy_pair covers two-party modes only, got {other}"),
    }
}

const TWO_PARTY_MODES: [Mode; 4] = [
    Mode::Horizontal,
    Mode::Enhanced,
    Mode::Vertical,
    Mode::Arbitrary,
];

#[test]
fn every_two_party_mode_matches_legacy_at_two_seeds() {
    let records = blobs(18, 777);
    for batching in [false, true] {
        let cfg = base_cfg().with_batching(batching);
        for mode in TWO_PARTY_MODES {
            for seed in [11u64, 202] {
                let (legacy_a, legacy_b) = legacy_pair(mode, &cfg, &records, seed);
                let (data_a, data_b) = mode_views(mode, &records, seed);
                let (new_a, new_b) = run_participants(
                    Participant::new(cfg)
                        .role(Party::Alice)
                        .data(data_a)
                        .seed(seed),
                    Participant::new(cfg)
                        .role(Party::Bob)
                        .data(data_b)
                        .seed(seed + 1),
                )
                .unwrap();
                let name = format!("{mode}/seed{seed}/batching={batching}");
                assert_output_parity(&format!("{name}/alice"), &legacy_a, &new_a.output);
                assert_output_parity(&format!("{name}/bob"), &legacy_b, &new_b.output);
                // The outcome's negotiated metadata reflects the session.
                assert_eq!(new_a.meta.mode, mode, "{name}");
                assert_eq!(new_a.meta.wire_version, WIRE_VERSION, "{name}");
                assert_eq!(new_a.meta.batching, batching, "{name}");
            }
        }
    }
}

#[test]
fn multiparty_matches_legacy_at_two_seeds() {
    let all = blobs(15, 55);
    let parties: Vec<Vec<Point>> = (0..3)
        .map(|p| {
            all.iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == p)
                .map(|(_, pt)| pt.clone())
                .collect()
        })
        .collect();
    let cfg = base_cfg();
    for seed in [7u64, 91] {
        let legacy = run_multiparty_horizontal(&cfg, &parties, seed).unwrap();
        let new = run_mesh_local(&cfg, &parties, seed).unwrap();
        assert_eq!(legacy.len(), new.len());
        for (i, (l, n)) in legacy.iter().zip(&new).enumerate() {
            assert_output_parity(&format!("multiparty/seed{seed}/party{i}"), l, &n.output);
            assert_eq!(n.meta.mode, Mode::Multiparty);
            assert_eq!(n.meta.peers.len(), parties.len() - 1);
        }
    }
}

/// Runs one two-party mode over real TCP sockets via `Participant` and
/// returns `(alice, bob)` outcomes.
fn tcp_pair(
    cfg: ProtocolConfig,
    data_a: PartyData,
    data_b: PartyData,
    seed: u64,
) -> (SessionOutcome, SessionOutcome) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let alice = Participant::new(cfg)
        .role(Party::Alice)
        .data(data_a)
        .seed(seed);
    let alice_thread = std::thread::spawn(move || {
        let mut chan = TcpChannel::accept(&listener).unwrap();
        alice.run(&mut chan).unwrap()
    });
    let mut chan = TcpChannel::connect(addr).unwrap();
    let bob = Participant::new(cfg)
        .role(Party::Bob)
        .data(data_b)
        .seed(seed + 1)
        .run(&mut chan)
        .unwrap();
    (alice_thread.join().unwrap(), bob)
}

#[test]
fn every_two_party_mode_runs_over_tcp_with_identical_outputs() {
    let records = blobs(9, 404);
    let mut cfg = base_cfg();
    cfg.key_bits = 128; // four modes × two transports: keep the test quick
    for mode in TWO_PARTY_MODES {
        let seed = 31;
        let (data_a, data_b) = mode_views(mode, &records, seed);
        let (mem_a, mem_b) = run_participants(
            Participant::new(cfg)
                .role(Party::Alice)
                .data(data_a.clone())
                .seed(seed),
            Participant::new(cfg)
                .role(Party::Bob)
                .data(data_b.clone())
                .seed(seed + 1),
        )
        .unwrap();
        let (tcp_a, tcp_b) = tcp_pair(cfg, data_a, data_b, seed);
        assert_output_parity(&format!("{mode}/tcp/alice"), &mem_a.output, &tcp_a.output);
        assert_output_parity(&format!("{mode}/tcp/bob"), &mem_b.output, &tcp_b.output);
        assert_eq!(tcp_a.meta, mem_a.meta, "{mode}: negotiated metadata");
    }
}

#[test]
fn multiparty_runs_over_tcp_mesh_with_identical_outputs() {
    let all = blobs(9, 606);
    let parties: Vec<Vec<Point>> = (0..3)
        .map(|p| {
            all.iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == p)
                .map(|(_, pt)| pt.clone())
                .collect()
        })
        .collect();
    let mut cfg = base_cfg();
    cfg.key_bits = 128;
    let seed = 13u64;
    let reference = run_mesh_local(&cfg, &parties, seed).unwrap();

    // Build a real TCP full mesh: one socket pair per party pair, the
    // lower id accepting.
    let k = parties.len();
    let mut mesh: Vec<Vec<(usize, TcpChannel)>> = (0..k).map(|_| Vec::new()).collect();
    for i in 0..k {
        for j in i + 1..k {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let accept = std::thread::spawn(move || TcpChannel::accept(&listener).unwrap());
            let connect = TcpChannel::connect(addr).unwrap();
            mesh[i].push((j, accept.join().unwrap()));
            mesh[j].push((i, connect));
        }
    }

    let mut handles = Vec::new();
    for (my_id, (mut peers, points)) in mesh.drain(..).zip(parties.iter()).enumerate() {
        let participant = Participant::new(cfg)
            .data(PartyData::Multiparty(points.clone()))
            .seed(seed.wrapping_add(my_id as u64));
        handles.push(std::thread::spawn(move || {
            participant.run_mesh(&mut peers, my_id, 3).unwrap()
        }));
    }
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.join().unwrap();
        assert_output_parity(
            &format!("multiparty/tcp/party{i}"),
            &reference[i].output,
            &outcome.output,
        );
    }
}
