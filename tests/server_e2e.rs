//! End-to-end coverage of `ppds-server`: concurrent mixed-mode sessions
//! byte-identical to direct in-process runs, typed backpressure, graceful
//! drain, and handshake-timeout reaping.

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Mode, Participant, PartyData};
use ppdbscan::VerticalPartition;
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Point, Quantizer};
use ppds_server::{
    hosted, open_session, ops_get, run_session, session_seed, ClientError, Server, ServerConfig,
    SessionState,
};
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(20);

fn blobs(n: usize, seed: u64) -> Vec<Point> {
    let quantizer = Quantizer::new(1.0, 60);
    let (points, _) = standard_blobs(
        &mut StdRng::seed_from_u64(seed),
        (n / 3).max(1),
        3,
        2,
        quantizer,
    );
    points
}

fn base_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    )
}

/// Polls `cond` until it holds or the deadline expires.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + TIMEOUT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One e2e scenario: the mode, the negotiated knobs, and the client's and
/// server's data views.
struct Scenario {
    id: u64,
    batching: bool,
    packing: bool,
    client_data: PartyData,
    server_data: PartyData,
    client_seed: u64,
}

fn scenarios() -> Vec<Scenario> {
    let records = blobs(18, 777);
    let (alice, bob) = split_alternating(&records);
    let vertical = VerticalPartition::split(&records, 1);
    vec![
        Scenario {
            id: 1,
            batching: false,
            packing: false,
            client_data: PartyData::Horizontal(alice.clone()),
            server_data: PartyData::Horizontal(bob.clone()),
            client_seed: 101,
        },
        Scenario {
            id: 2,
            batching: true,
            packing: false,
            client_data: PartyData::Enhanced(alice.clone()),
            server_data: PartyData::Enhanced(bob.clone()),
            client_seed: 102,
        },
        Scenario {
            id: 3,
            batching: false,
            packing: true,
            client_data: PartyData::Vertical(vertical.alice),
            server_data: PartyData::Vertical(vertical.bob),
            client_seed: 103,
        },
        Scenario {
            id: 4,
            batching: true,
            packing: true,
            client_data: PartyData::Horizontal(alice),
            server_data: PartyData::Horizontal(bob),
            client_seed: 104,
        },
    ]
}

const BASE_SEED: u64 = 0xE2E0;

fn start_server(hosted_data: Vec<PartyData>, workers: usize, cap: usize) -> Server {
    let hosted_modes = hosted_data
        .into_iter()
        .map(|data| hosted(base_cfg(), Party::Bob, data))
        .collect();
    Server::start(
        ServerConfig::new(hosted_modes)
            .with_workers(workers)
            .with_queue_cap(cap)
            .with_base_seed(BASE_SEED),
    )
    .expect("server starts")
}

#[test]
fn concurrent_mixed_sessions_match_direct_runs_and_metrics_are_live() {
    let records = blobs(18, 777);
    let (_, bob) = split_alternating(&records);
    let vertical_bob = VerticalPartition::split(&records, 1).bob;
    let server = start_server(
        vec![
            PartyData::Horizontal(bob.clone()),
            PartyData::Enhanced(bob),
            PartyData::Vertical(vertical_bob),
        ],
        4,
        8,
    );
    let addr = server.local_addr();
    let ops = server.ops_addr();

    // Open all four sessions before any client runs: every server-side
    // task is now in flight simultaneously, pinned at the key exchange.
    let mut opened = Vec::new();
    for sc in scenarios() {
        let cfg = base_cfg()
            .with_batching(sc.batching)
            .with_packing(sc.packing);
        let participant = Participant::new(cfg)
            .role(Party::Alice)
            .data(sc.client_data.clone())
            .seed(sc.client_seed);
        let session = open_session(&addr, &participant, sc.id, TIMEOUT).expect("admitted");
        assert_eq!(session.session_id(), sc.id, "proposed id honored");
        opened.push((sc, session, participant));
    }

    // Live metrics while all four sessions are active: the acceptance
    // gauges must be present and current on the operator endpoint.
    let metrics = ops_get(&ops, "/metrics").expect("metrics scrape");
    assert!(
        metrics.contains("server_active_sessions 4"),
        "active gauge live during run:\n{metrics}"
    );
    assert!(
        metrics.contains("engine_queue_depth"),
        "engine gauge exported:\n{metrics}"
    );
    assert!(metrics.contains("server_sessions_accepted 4"), "{metrics}");
    assert_eq!(ops_get(&ops, "/healthz").expect("healthz"), "ok\n");

    // Run all four concurrently over real TCP.
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = opened
            .into_iter()
            .map(|(sc, session, participant)| {
                scope.spawn(move || (sc, session.run(participant).expect("session runs")))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identity: a direct in-process run of the same pair with the
    // same seeds must agree on labels, leakage, ledger, and traffic.
    for (sc, via_server) in &outcomes {
        let cfg = base_cfg()
            .with_batching(sc.batching)
            .with_packing(sc.packing);
        let direct_server = Participant::new(cfg)
            .role(Party::Bob)
            .data(sc.server_data.clone())
            .seed(session_seed(BASE_SEED, sc.id));
        let direct_client = Participant::new(cfg)
            .role(Party::Alice)
            .data(sc.client_data.clone())
            .seed(sc.client_seed);
        let (_, direct) = run_participants(direct_server, direct_client).expect("direct run");
        let name = format!("session {}", sc.id);
        assert_eq!(
            direct.output.clustering, via_server.output.clustering,
            "{name}: labels"
        );
        assert_eq!(
            direct.output.leakage, via_server.output.leakage,
            "{name}: LeakageLog"
        );
        assert_eq!(
            direct.output.yao, via_server.output.yao,
            "{name}: YaoLedger"
        );
        // The only wire difference is the preamble: exactly one extra
        // frame each way (the Hello out, the Accept back).
        assert_eq!(
            via_server.output.traffic.messages_sent,
            direct.output.traffic.messages_sent + 1,
            "{name}: preamble adds one outbound frame"
        );
        assert_eq!(
            via_server.output.traffic.messages_received,
            direct.output.traffic.messages_received + 1,
            "{name}: preamble adds one inbound frame"
        );
        assert_eq!(direct.meta, via_server.meta, "{name}: meta");
    }

    // Registry and operator views agree once everything completed.
    wait_until("all sessions completed", || {
        server.sessions().len() == 4
            && server
                .sessions()
                .iter()
                .all(|s| s.state == SessionState::Completed)
    });
    let sessions = ops_get(&ops, "/sessions").expect("sessions scrape");
    assert!(sessions.contains("1 horizontal completed"), "{sessions}");
    assert!(sessions.contains("2 enhanced completed"), "{sessions}");
    assert!(sessions.contains("3 vertical completed"), "{sessions}");
    let trace = ops_get(&ops, "/trace/2").expect("trace scrape");
    assert!(trace.contains("session-2"), "chrome trace served: {trace}");
    assert!(
        ops_get(&ops, "/trace/99").unwrap().contains("no trace"),
        "unknown trace is a 404 body"
    );

    let report = server.shutdown(Duration::from_secs(5));
    assert_eq!(report.completed, 4);
    assert_eq!(report.failed, 0);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.engine.completed, 4);
}

#[test]
fn one_slot_queue_sheds_load_with_typed_busy() {
    let records = blobs(12, 31);
    let (alice, bob) = split_alternating(&records);
    let server = start_server(vec![PartyData::Horizontal(bob)], 1, 1);
    let addr = server.local_addr();
    let participant = |seed: u64| {
        Participant::new(base_cfg())
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice.clone()))
            .seed(seed)
    };

    // A admitted and picked up by the single worker...
    let pa = participant(201);
    let sa = open_session(&addr, &pa, 0, TIMEOUT).expect("A admitted");
    wait_until("A running", || {
        server
            .sessions()
            .iter()
            .any(|s| s.id == sa.session_id() && s.state == SessionState::Running)
    });
    // ...B fills the one queue slot...
    let pb = participant(202);
    let sb = open_session(&addr, &pb, 0, TIMEOUT).expect("B queued");
    wait_until("B queued", || {
        server.metrics().gauge("engine_queue_depth").get() == 1
    });
    // ...so C is refused with the typed depth/cap.
    let pc = participant(203);
    match open_session(&addr, &pc, 0, TIMEOUT) {
        Err(ClientError::Busy { depth, cap }) => {
            assert_eq!((depth, cap), (1, 1));
        }
        other => panic!(
            "expected Busy, got {other:?}",
            other = other.map(|s| s.session_id())
        ),
    }
    assert_eq!(
        server
            .metrics()
            .counter("server_sessions_rejected_busy")
            .get(),
        1
    );

    // The shed load was transient: A and B still complete normally.
    sa.run(pa).expect("A completes");
    sb.run(pb).expect("B completes");
    let report = server.shutdown(Duration::from_secs(5));
    assert_eq!(report.completed, 2);
    assert_eq!(report.failed, 0);
}

#[test]
fn graceful_shutdown_drains_in_flight_and_rejects_late_connects() {
    let records = blobs(12, 47);
    let (alice, bob) = split_alternating(&records);
    let server = start_server(vec![PartyData::Horizontal(bob)], 2, 4);
    let addr = server.local_addr();
    let ops = server.ops_addr();
    let participant = |seed: u64| {
        Participant::new(base_cfg())
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice.clone()))
            .seed(seed)
    };

    // One session in flight, held at the key exchange.
    let pa = participant(301);
    let sa = open_session(&addr, &pa, 0, TIMEOUT).expect("A admitted");
    wait_until("A running", || {
        server
            .sessions()
            .iter()
            .any(|s| s.state == SessionState::Running)
    });

    // Start the drain on its own thread; it must wait for A.
    let shutdown = std::thread::spawn(move || server.shutdown(Duration::from_secs(15)));
    wait_until("draining visible", || {
        ops_get(&ops, "/healthz").is_ok_and(|body| body == "draining\n")
    });

    // A late connect during the drain gets the typed refusal.
    let pl = participant(302);
    match open_session(&addr, &pl, 0, TIMEOUT) {
        Err(ClientError::Draining) => {}
        other => panic!(
            "expected Draining, got {other:?}",
            other = other.map(|s| s.session_id())
        ),
    }

    // The in-flight session still completes.
    sa.run(pa).expect("A drains to completion");
    let report = shutdown.join().expect("shutdown thread");
    assert_eq!(report.completed, 1);
    assert_eq!(report.dropped, 0);
    assert!(report.rejected_draining >= 1);

    // After the drain the listener is gone entirely.
    let pp = participant(303);
    match open_session(&addr, &pp, 0, Duration::from_secs(2)) {
        Err(ClientError::Transport(_)) => {}
        other => panic!(
            "expected Transport error, got {other:?}",
            other = other.map(|s| s.session_id())
        ),
    }
}

#[test]
fn drain_deadline_sheds_queued_sessions() {
    let records = blobs(12, 53);
    let (alice, bob) = split_alternating(&records);
    let hosted_modes = vec![hosted(base_cfg(), Party::Bob, PartyData::Horizontal(bob))];
    let server = Server::start(
        ServerConfig::new(hosted_modes)
            .with_workers(1)
            .with_queue_cap(4)
            // The held-open in-flight session dies by read timeout, so the
            // drain (and the test) terminates without client cooperation.
            .with_session_read_timeout(Some(Duration::from_millis(300))),
    )
    .expect("server starts");
    let addr = server.local_addr();
    let participant = |seed: u64| {
        Participant::new(base_cfg())
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice.clone()))
            .seed(seed)
    };

    // A occupies the worker; B waits in queue. Neither client ever runs.
    let pa = participant(401);
    let _sa = open_session(&addr, &pa, 0, TIMEOUT).expect("A admitted");
    wait_until("A running", || {
        server
            .sessions()
            .iter()
            .any(|s| s.state == SessionState::Running)
    });
    let pb = participant(402);
    let _sb = open_session(&addr, &pb, 0, TIMEOUT).expect("B queued");

    // Drain with a deadline shorter than A's read timeout: A fails on its
    // read deadline, B is shed before ever running.
    let report = server.shutdown(Duration::from_millis(100));
    assert_eq!(report.failed, 1, "in-flight A hit its read deadline");
    assert_eq!(report.dropped, 1, "queued B shed past the drain deadline");
    assert_eq!(report.completed, 0);
}

#[test]
fn handshake_timeout_reaps_silent_connection_without_harming_neighbors() {
    let records = blobs(12, 59);
    let (alice, bob) = split_alternating(&records);
    let hosted_modes = vec![hosted(base_cfg(), Party::Bob, PartyData::Horizontal(bob))];
    let server = Server::start(
        ServerConfig::new(hosted_modes)
            .with_workers(2)
            .with_queue_cap(4)
            .with_handshake_timeout(Duration::from_millis(150)),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // A connection that never speaks: must be reaped, not pinned forever.
    let silent = std::net::TcpStream::connect(addr).expect("connect");
    wait_until("silent peer reaped", || {
        server.metrics().counter("server_handshake_timeouts").get() == 1
    });

    // Neighbors are unaffected before and after the reap.
    let participant = Participant::new(base_cfg())
        .role(Party::Alice)
        .data(PartyData::Horizontal(alice))
        .seed(501);
    let (_, outcome) = run_session(&addr, participant, 0, TIMEOUT).expect("neighbor completes");
    assert_eq!(outcome.meta.mode, Mode::Horizontal);
    drop(silent);

    let report = server.shutdown(Duration::from_secs(5));
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0);
}

#[test]
fn hot_keypair_is_generated_once_and_reused_across_sessions() {
    let records = blobs(12, 67);
    let (alice, bob) = split_alternating(&records);
    let server = start_server(
        vec![PartyData::Horizontal(bob.clone()), PartyData::Enhanced(bob)],
        2,
        4,
    );
    let addr = server.local_addr();

    // Three sessions — two modes — at the same security parameter: keygen
    // runs exactly once, every later session takes the cache hit.
    for (seed, data) in [
        (701, PartyData::Horizontal(alice.clone())),
        (702, PartyData::Horizontal(alice.clone())),
        (703, PartyData::Enhanced(alice)),
    ] {
        let participant = Participant::new(base_cfg())
            .role(Party::Alice)
            .data(data)
            .seed(seed);
        run_session(&addr, participant, 0, TIMEOUT).expect("session completes");
    }
    let misses = server
        .metrics()
        .counter("server_keypair_cache_misses")
        .get();
    let hits = server.metrics().counter("server_keypair_cache_hits").get();
    assert_eq!(misses, 1, "one keygen for the shared security parameter");
    assert_eq!(hits, 2, "every later session reuses the hot key");

    let report = server.shutdown(Duration::from_secs(5));
    assert_eq!(report.completed, 3);
    assert_eq!(report.failed, 0);
}

#[test]
fn negotiation_cache_skips_rechecks_for_reconnecting_clients() {
    let records = blobs(12, 68);
    let (alice, bob) = split_alternating(&records);
    let server = start_server(vec![PartyData::Horizontal(bob)], 2, 4);
    let addr = server.local_addr();

    // Identical preamble three times: the knobs are adopted and
    // cross-checked once; both reconnects take the cache hit.
    for seed in [711, 712, 713] {
        let participant = Participant::new(base_cfg())
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice.clone()))
            .seed(seed);
        run_session(&addr, participant, 0, TIMEOUT).expect("session completes");
    }
    // A changed knob is a different fingerprint: re-negotiated once.
    let batched = Participant::new(base_cfg().with_batching(true))
        .role(Party::Alice)
        .data(PartyData::Horizontal(alice))
        .seed(714);
    run_session(&addr, batched, 0, TIMEOUT).expect("batched session completes");

    let metrics = server.metrics();
    assert_eq!(
        metrics.counter("server_negotiation_cache_misses").get(),
        2,
        "one check per distinct preamble"
    );
    assert_eq!(
        metrics.counter("server_negotiation_cache_hits").get(),
        2,
        "reconnects with unchanged config skip re-negotiation"
    );

    let report = server.shutdown(Duration::from_secs(5));
    assert_eq!(report.completed, 4);
    assert_eq!(report.failed, 0);
}

#[test]
fn typed_rejections_for_incompatible_and_unhosted_clients() {
    let records = blobs(12, 61);
    let (alice, bob) = split_alternating(&records);
    let server = start_server(vec![PartyData::Horizontal(bob)], 2, 4);
    let addr = server.local_addr();

    // Same mode, different eps_sq: named-field incompatibility.
    let mut wrong_cfg = base_cfg();
    wrong_cfg.params.eps_sq = 4;
    let wrong_eps = Participant::new(wrong_cfg)
        .role(Party::Alice)
        .data(PartyData::Horizontal(alice.clone()))
        .seed(601);
    match open_session(&addr, &wrong_eps, 0, TIMEOUT) {
        Err(ClientError::Incompatible {
            field,
            ours,
            theirs,
        }) => {
            assert_eq!(field, "eps_sq");
            assert_eq!((ours, theirs), (81, 4));
        }
        other => panic!(
            "expected Incompatible, got {other:?}",
            other = other.map(|s| s.session_id())
        ),
    }

    // A mode the server does not host.
    let enhanced = Participant::new(base_cfg())
        .role(Party::Alice)
        .data(PartyData::Enhanced(alice))
        .seed(602);
    match open_session(&addr, &enhanced, 0, TIMEOUT) {
        Err(ClientError::Unsupported(detail)) => {
            assert!(detail.contains("enhanced"), "{detail}");
        }
        other => panic!(
            "expected Unsupported, got {other:?}",
            other = other.map(|s| s.session_id())
        ),
    }

    assert_eq!(
        server
            .metrics()
            .counter("server_sessions_rejected_incompatible")
            .get(),
        2
    );
    let report = server.shutdown(Duration::from_secs(5));
    assert_eq!(report.completed, 0);
    assert_eq!(report.failed, 0);
}
