//! Shared helpers for the umbrella integration tests: seed-deterministic
//! wrappers that run each protocol family through the typed
//! `ppdbscan::session::Participant` API. The two-party runners live in
//! `ppds_bench` (one canonical copy, built on
//! `ppdbscan::session::run_data_pair`) and are re-exported here.
#![allow(dead_code, unused_imports)] // each test binary uses a different subset

pub use ppds_bench::{
    rng, run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_vertical_pair,
};

use ppdbscan::config::ProtocolConfig;
use ppdbscan::{CoreError, PartyOutput};
use ppds_dbscan::Point;

/// Runs all parties of a multiparty session on an in-memory mesh,
/// returning the bare [`PartyOutput`]s in party-id order.
pub fn run_multiparty(
    cfg: &ProtocolConfig,
    parties: &[Vec<Point>],
    seed: u64,
) -> Result<Vec<PartyOutput>, CoreError> {
    Ok(ppdbscan::session::run_mesh_local(cfg, parties, seed)?
        .into_iter()
        .map(|outcome| outcome.output)
        .collect())
}
