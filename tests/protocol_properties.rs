//! Property-based end-to-end tests: random small datasets through the full
//! protocol stack must always reproduce the plaintext reference semantics.
//!
//! Key sizes are tiny (protocol correctness is key-size independent) and
//! instance sizes small — each case still runs the complete Paillier +
//! comparison pipeline on two threads.

mod common;

use common::{run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_vertical_pair};
use ppdbscan::config::ProtocolConfig;
use ppdbscan::{ArbitraryPartition, VerticalPartition};
use ppds_dbscan::{dbscan, dbscan_with_external_density, DbscanParams, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BOUND: i64 = 6;

fn small_cfg(eps_sq: u64, min_pts: usize) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, BOUND);
    cfg.key_bits = 64; // fast keygen; correctness is size-independent
    cfg.mask_bits = 6;
    cfg
}

fn points_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((-BOUND..=BOUND, -BOUND..=BOUND), min..=max).prop_map(|coords| {
        coords
            .into_iter()
            .map(|(x, y)| Point::new(vec![x, y]))
            .collect()
    })
}

proptest! {
    // Each case spins up threads + keygen, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn horizontal_always_matches_reference(
        alice in points_strategy(1, 6),
        bob in points_strategy(1, 6),
        eps_sq in 1u64..30,
        min_pts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = small_cfg(eps_sq, min_pts);
        let (a, b) = run_horizontal_pair(
            &cfg,
            &alice,
            &bob,
            StdRng::seed_from_u64(seed),
            StdRng::seed_from_u64(seed.wrapping_add(1)),
        )
        .unwrap();
        prop_assert_eq!(
            a.clustering,
            dbscan_with_external_density(&alice, &bob, cfg.params)
        );
        prop_assert_eq!(
            b.clustering,
            dbscan_with_external_density(&bob, &alice, cfg.params)
        );
    }

    #[test]
    fn enhanced_always_equals_basic(
        alice in points_strategy(1, 5),
        bob in points_strategy(1, 5),
        eps_sq in 1u64..30,
        min_pts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = small_cfg(eps_sq, min_pts);
        let (enh_a, enh_b) = run_enhanced_pair(
            &cfg,
            &alice,
            &bob,
            StdRng::seed_from_u64(seed),
            StdRng::seed_from_u64(seed.wrapping_add(1)),
        )
        .unwrap();
        prop_assert_eq!(
            enh_a.clustering,
            dbscan_with_external_density(&alice, &bob, cfg.params)
        );
        prop_assert_eq!(
            enh_b.clustering,
            dbscan_with_external_density(&bob, &alice, cfg.params)
        );
    }

    #[test]
    fn vertical_always_matches_plaintext(
        records in points_strategy(2, 7),
        eps_sq in 1u64..30,
        min_pts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = small_cfg(eps_sq, min_pts);
        let partition = VerticalPartition::split(&records, 1);
        let (a, b) = run_vertical_pair(
            &cfg,
            &partition,
            StdRng::seed_from_u64(seed),
            StdRng::seed_from_u64(seed.wrapping_add(1)),
        )
        .unwrap();
        let reference = dbscan(&records, cfg.params);
        prop_assert_eq!(a.clustering, reference.clone());
        prop_assert_eq!(b.clustering, reference);
    }

    #[test]
    fn arbitrary_always_matches_plaintext(
        records in points_strategy(2, 6),
        eps_sq in 1u64..30,
        min_pts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = small_cfg(eps_sq, min_pts);
        let partition = ArbitraryPartition::random(&mut StdRng::seed_from_u64(seed), &records);
        let (a, b) = run_arbitrary_pair(
            &cfg,
            &partition,
            StdRng::seed_from_u64(seed.wrapping_add(2)),
            StdRng::seed_from_u64(seed.wrapping_add(3)),
        )
        .unwrap();
        let reference = dbscan(&records, cfg.params);
        prop_assert_eq!(a.clustering, reference.clone());
        prop_assert_eq!(b.clustering, reference);
    }
}
