//! Plaintext-slot packing parity: for every protocol family, under both
//! round-batching framings, the packed transport must produce
//! **byte-identical labels, leakage logs, and Yao ledgers** to the
//! unpacked reference under the same seeds — packing changes how masked
//! responses ride the wire, never what the protocol computes or reveals —
//! while cutting the ciphertext-heavy response bytes (and with them the
//! keyholder's decryption bill) by the packing factor.

mod common;

use common::{
    rng, run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_multiparty,
    run_vertical_pair,
};
use ppds::ppdbscan::config::ProtocolConfig;
use ppds::ppdbscan::session::{Participant, PartyData};
use ppds::ppdbscan::{ArbitraryPartition, PartyOutput, VerticalPartition};
use ppds::ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds::ppds_dbscan::{dbscan, DbscanParams, Point, Quantizer};
use ppds::ppds_smc::compare::Comparator;
use ppds::ppds_smc::kth::SelectionMethod;
use ppds::ppds_smc::Party;

fn blobs(n: usize, seed: u64) -> Vec<Point> {
    let quantizer = Quantizer::new(1.0, 60);
    let (points, _) = standard_blobs(&mut rng(seed), (n / 3).max(1), 3, 2, quantizer);
    points
}

fn base_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    )
}

/// Labels, leakage, and modeled Yao cost must be identical; total bytes
/// must drop by at least `min_byte_factor` (0.0 = don't check).
fn assert_packing_parity(
    name: &str,
    unpacked: &(PartyOutput, PartyOutput),
    packed: &(PartyOutput, PartyOutput),
    min_byte_factor: f64,
) {
    for (side, (u, p)) in [
        ("alice", (&unpacked.0, &packed.0)),
        ("bob", (&unpacked.1, &packed.1)),
    ] {
        assert_eq!(
            u.clustering, p.clustering,
            "{name}/{side}: labels must be byte-identical"
        );
        assert_eq!(
            u.leakage, p.leakage,
            "{name}/{side}: packing must not change leakage"
        );
        assert_eq!(
            u.yao, p.yao,
            "{name}/{side}: same comparisons, same modeled Yao cost"
        );
        let (ub, pb) = (u.traffic.total_bytes(), p.traffic.total_bytes());
        assert!(
            ub as f64 >= min_byte_factor * pb as f64,
            "{name}/{side}: bytes {ub} unpacked vs {pb} packed \
             (wanted >= {min_byte_factor}x fewer)"
        );
    }
}

/// Acceptance criterion: a vertical run must report ≥ 5× fewer wire bytes
/// packed, with byte-identical labels, leakage, and ledger — under both
/// batching framings.
#[test]
fn vertical_packed_cuts_bytes_5x_with_identical_output() {
    let records = blobs(21, 4242);
    let partition = VerticalPartition::split(&records, 1);
    for batching in [false, true] {
        let cfg = base_cfg().with_batching(batching);
        let unpacked = run_vertical_pair(&cfg, &partition, rng(1), rng(2)).unwrap();
        let packed =
            run_vertical_pair(&cfg.with_packing(true), &partition, rng(1), rng(2)).unwrap();
        assert_packing_parity(
            &format!("vertical/batching={batching}"),
            &unpacked,
            &packed,
            5.0,
        );
        assert_eq!(packed.0.clustering, dbscan(&records, cfg.params));
        println!(
            "vertical batching={batching}: bytes {} -> {}",
            unpacked.0.traffic.total_bytes(),
            packed.0.traffic.total_bytes()
        );
    }
}

#[test]
fn horizontal_packing_parity_both_batchings() {
    let (alice, bob) = split_alternating(&blobs(18, 9007));
    for batching in [false, true] {
        let cfg = base_cfg().with_batching(batching);
        let unpacked = run_horizontal_pair(&cfg, &alice, &bob, rng(3), rng(53)).unwrap();
        let packed =
            run_horizontal_pair(&cfg.with_packing(true), &alice, &bob, rng(3), rng(53)).unwrap();
        // The multiplication reply leg packs (dim=2 products per word pair
        // stay small), the comparison verdict padding packs ~11x.
        assert_packing_parity(
            &format!("horizontal/batching={batching}"),
            &unpacked,
            &packed,
            2.0,
        );
    }
}

#[test]
fn enhanced_packing_parity_both_selections_and_batchings() {
    let (alice, bob) = split_alternating(&blobs(16, 778));
    for (label, selection) in [
        ("repeated-min", SelectionMethod::RepeatedMin),
        ("quickselect", SelectionMethod::QuickSelect),
    ] {
        for batching in [false, true] {
            let mut cfg = base_cfg().with_batching(batching);
            cfg.params.min_pts = 5; // force joint core tests to engage
            cfg.selection = selection;
            let unpacked = run_enhanced_pair(&cfg, &alice, &bob, rng(11), rng(61)).unwrap();
            let packed =
                run_enhanced_pair(&cfg.with_packing(true), &alice, &bob, rng(11), rng(61)).unwrap();
            assert_packing_parity(
                &format!("enhanced/{label}/batching={batching}"),
                &unpacked,
                &packed,
                1.0,
            );
            let engaged = unpacked.0.leakage.count_kind("threshold_rank")
                + unpacked.1.leakage.count_kind("threshold_rank")
                > 0;
            assert!(engaged, "{label}: test must exercise the selection");
        }
    }
}

/// Regression: in dimensions ≥ 3 the zero-sum blinding group's *closing*
/// mask balances the others and can reach `(dim−1)·mask_bound` — the
/// packing offset must budget for it, or packed multiplication legs abort
/// mid-session. dim = 2 never exercises this (the closing mask is just
/// one bounded mask negated), so this pins dim = 3 and 4 explicitly.
#[test]
fn higher_dimensional_packing_parity() {
    for dim in [3usize, 4] {
        let quantizer = Quantizer::new(1.0, 60);
        let (records, _) = standard_blobs(&mut rng(40 + dim as u64), 4, 3, dim, quantizer);
        let (alice, bob) = split_alternating(&records);
        let cfg = base_cfg().with_batching(true);
        let unpacked = run_horizontal_pair(&cfg, &alice, &bob, rng(7), rng(57)).unwrap();
        let packed =
            run_horizontal_pair(&cfg.with_packing(true), &alice, &bob, rng(7), rng(57)).unwrap();
        assert_packing_parity(&format!("horizontal/dim={dim}"), &unpacked, &packed, 1.5);
    }
}

#[test]
fn arbitrary_packing_parity_both_batchings() {
    let records = blobs(12, 3021);
    let partition = ArbitraryPartition::random(&mut rng(21), &records);
    for batching in [false, true] {
        let cfg = base_cfg().with_batching(batching);
        let unpacked = run_arbitrary_pair(&cfg, &partition, rng(5), rng(55)).unwrap();
        let packed =
            run_arbitrary_pair(&cfg.with_packing(true), &partition, rng(5), rng(55)).unwrap();
        assert_packing_parity(
            &format!("arbitrary/batching={batching}"),
            &unpacked,
            &packed,
            2.0,
        );
    }
}

#[test]
fn multiparty_packing_parity() {
    let all = blobs(15, 56);
    let parties: Vec<Vec<Point>> = (0..3)
        .map(|p| {
            all.iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == p)
                .map(|(_, pt)| pt.clone())
                .collect()
        })
        .collect();
    for batching in [false, true] {
        let cfg = base_cfg().with_batching(batching);
        let unpacked = run_multiparty(&cfg, &parties, 7).unwrap();
        let packed = run_multiparty(&cfg.with_packing(true), &parties, 7).unwrap();
        for (i, (u, p)) in unpacked.iter().zip(&packed).enumerate() {
            assert_eq!(u.clustering, p.clustering, "party {i} labels");
            assert_eq!(u.leakage, p.leakage, "party {i} leakage");
            assert_eq!(u.yao, p.yao, "party {i} ledger");
            assert!(
                u.traffic.total_bytes() > p.traffic.total_bytes(),
                "party {i}: bytes {} vs {}",
                u.traffic.total_bytes(),
                p.traffic.total_bytes()
            );
        }
    }
}

/// The fully cryptographic comparator under packing: the DGK masked
/// verdict vector ships as packed words (at 256-bit keys, ~11 slots per
/// word), with outcomes, leakage order, and ledger untouched.
#[test]
fn dgk_backend_packing_parity_on_vertical() {
    let records = blobs(9, 88);
    let partition = VerticalPartition::split(&records, 1);
    let mut cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 2,
        },
        60,
    );
    cfg.comparator = Comparator::Dgk;
    for batching in [false, true] {
        let cfg = cfg.with_batching(batching);
        let unpacked = run_vertical_pair(&cfg, &partition, rng(5), rng(6)).unwrap();
        let packed =
            run_vertical_pair(&cfg.with_packing(true), &partition, rng(5), rng(6)).unwrap();
        // The DGK request leg (per-bit ciphertexts) cannot pack, so the
        // end-to-end cut is bounded by ~2x; the reply-leg cut is ~11x
        // (pinned at the smc layer).
        assert_packing_parity(
            &format!("vertical-dgk/batching={batching}"),
            &unpacked,
            &packed,
            1.3,
        );
    }
}

/// Randomizer-pool opt-in: a pooled session consumes precomputed `r^n`
/// factors, which changes ciphertext bytes but never outcomes — labels,
/// leakage, and ledgers match the unpooled run exactly.
#[test]
fn pooled_sessions_match_unpooled_outputs() {
    let (alice_pts, bob_pts) = split_alternating(&blobs(12, 311));
    let cfg = base_cfg().with_batching(true).with_packing(true);
    let run = |pooled: bool| {
        let participant = |role, pts: &[Point], seed| {
            let p = Participant::new(cfg)
                .role(role)
                .data(PartyData::Horizontal(pts.to_vec()))
                .seed(seed);
            if pooled {
                p.pooled_randomizers(64, 2)
            } else {
                p
            }
        };
        let (a, b) = ppds::ppdbscan::session::run_participants(
            participant(Party::Alice, &alice_pts, 40),
            participant(Party::Bob, &bob_pts, 41),
        )
        .unwrap();
        (a, b)
    };
    let (plain_a, plain_b) = run(false);
    let (pooled_a, pooled_b) = run(true);
    assert_eq!(plain_a.output.clustering, pooled_a.output.clustering);
    assert_eq!(plain_b.output.clustering, pooled_b.output.clustering);
    assert_eq!(plain_a.output.leakage, pooled_a.output.leakage);
    assert_eq!(plain_b.output.leakage, pooled_b.output.leakage);
    assert_eq!(plain_a.output.yao, pooled_a.output.yao);
    assert_eq!(plain_b.output.yao, pooled_b.output.yao);
    assert!(pooled_a.meta.packing, "meta records the knob");
}

#[test]
fn session_meta_reports_packing() {
    let records = blobs(6, 91);
    let partition = VerticalPartition::split(&records, 1);
    let cfg = base_cfg().with_packing(true);
    let (a, b) = ppds::ppdbscan::session::run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(PartyData::Vertical(partition.alice.clone()))
            .seed(1),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(PartyData::Vertical(partition.bob.clone()))
            .seed(2),
    )
    .unwrap();
    assert!(a.meta.packing && b.meta.packing);
}
