//! Randomness-discipline parity: the keyed-substream `ProtocolContext`
//! makes every draw independent of execution order, so
//!
//! 1. for **random** inputs and seeds (not just the fixed vectors of
//!    `batching_parity.rs`), every protocol mode × comparator produces
//!    byte-identical labels, `LeakageLog`s (event *order* included — the
//!    permuted `own#idx` events are the sharp edge), and Yao ledgers
//!    whether round batching is on or off; and
//! 2. in a K-party mesh, each pairwise session's streams are keyed by the
//!    peer's id, so changing one peer's private data never shifts the
//!    randomness (most visibly: the Figure-1-defense permutations) any
//!    *other* pair of parties uses with each other.

mod common;

use common::{
    run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_multiparty, run_vertical_pair,
};
use ppds::ppdbscan::config::ProtocolConfig;
use ppds::ppdbscan::{ArbitraryPartition, PartyOutput, VerticalPartition};
use ppds::ppds_dbscan::{DbscanParams, Point};
use ppds::ppds_smc::compare::Comparator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Small random lattice scenario: domains stay tiny enough that even the
/// faithful Yao comparator (O(n0) decryptions per comparison) finishes a
/// full clustering run quickly.
fn lattice_points(seed: u64, n: usize, bound: i64) -> Vec<Point> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            Point::new(vec![
                r.random_range(-bound..=bound),
                r.random_range(-bound..=bound),
            ])
        })
        .collect()
}

fn comparator_cfg(comparator: Comparator) -> ProtocolConfig {
    let params = DbscanParams {
        eps_sq: 8,
        min_pts: 2,
    };
    let mut cfg = ProtocolConfig::new(params, 6);
    cfg.comparator = comparator;
    match comparator {
        // Keep the faithful protocol's n0 decryptions and the per-bit DGK
        // decryptions affordable inside a property test: small keys, a
        // tight lattice, and one bit of statistical mask slack.
        Comparator::Yao => {
            cfg.key_bits = 64;
            cfg.mask_bits = 1;
            cfg.coord_bound = 4;
        }
        Comparator::Dgk => cfg.key_bits = 64,
        Comparator::Ideal => {}
    }
    cfg
}

/// Labels, leakage (order-sensitive), and modeled Yao cost must be
/// byte-identical across framings; traffic byte totals legitimately differ
/// (framing), so they are not compared here.
fn assert_batching_parity(
    name: &str,
    u: &(PartyOutput, PartyOutput),
    b: &(PartyOutput, PartyOutput),
) {
    for (side, (uo, bo)) in [("alice", (&u.0, &b.0)), ("bob", (&u.1, &b.1))] {
        assert_eq!(uo.clustering, bo.clustering, "{name}/{side}: labels");
        assert_eq!(uo.leakage, bo.leakage, "{name}/{side}: leakage event order");
        assert_eq!(uo.yao, bo.yao, "{name}/{side}: yao ledger");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random inputs, random session seeds, all three comparators, all
    /// five modes: batching must never change what either party computes
    /// or observes. Under the old threaded-rng discipline this held only
    /// by carefully replicating draw order (and failed for DGK+HDP);
    /// keyed substreams make it hold by construction.
    #[test]
    fn leakage_order_is_batching_invariant_for_random_inputs(
        data_seed in any::<u64>(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        for comparator in [Comparator::Ideal, Comparator::Yao, Comparator::Dgk] {
            let cfg = comparator_cfg(comparator);
            let batched = cfg.with_batching(true);
            let points = lattice_points(data_seed, 6, cfg.coord_bound.min(5));
            let (alice, bob) = (points[..3].to_vec(), points[3..].to_vec());

            let u = run_horizontal_pair(&cfg, &alice, &bob, rng(seed_a), rng(seed_b)).unwrap();
            let b = run_horizontal_pair(&batched, &alice, &bob, rng(seed_a), rng(seed_b)).unwrap();
            assert_batching_parity(&format!("horizontal/{comparator:?}"), &u, &b);

            let mut enh = cfg;
            enh.params.min_pts = 3; // force joint core tests to engage
            let enh_b = enh.with_batching(true);
            let u = run_enhanced_pair(&enh, &alice, &bob, rng(seed_a), rng(seed_b)).unwrap();
            let b = run_enhanced_pair(&enh_b, &alice, &bob, rng(seed_a), rng(seed_b)).unwrap();
            assert_batching_parity(&format!("enhanced/{comparator:?}"), &u, &b);

            let partition = VerticalPartition::split(&points, 1);
            let u = run_vertical_pair(&cfg, &partition, rng(seed_a), rng(seed_b)).unwrap();
            let b = run_vertical_pair(&batched, &partition, rng(seed_a), rng(seed_b)).unwrap();
            assert_batching_parity(&format!("vertical/{comparator:?}"), &u, &b);

            let arb = ArbitraryPartition::random(&mut rng(data_seed ^ 0xA5A5), &points);
            let u = run_arbitrary_pair(&cfg, &arb, rng(seed_a), rng(seed_b)).unwrap();
            let b = run_arbitrary_pair(&batched, &arb, rng(seed_a), rng(seed_b)).unwrap();
            assert_batching_parity(&format!("arbitrary/{comparator:?}"), &u, &b);

            let parties = vec![
                points[..2].to_vec(),
                points[2..4].to_vec(),
                points[4..].to_vec(),
            ];
            let mu = run_multiparty(&cfg, &parties, seed_a).unwrap();
            let mb = run_multiparty(&batched, &parties, seed_a).unwrap();
            for (i, (uo, bo)) in mu.iter().zip(&mb).enumerate() {
                prop_assert_eq!(&uo.clustering, &bo.clustering, "multiparty/{:?} party {}", comparator, i);
                prop_assert_eq!(&uo.leakage, &bo.leakage, "multiparty/{:?} party {} leakage", comparator, i);
                prop_assert_eq!(&uo.yao, &bo.yao, "multiparty/{:?} party {} yao", comparator, i);
            }
        }
    }
}

/// Mesh sessions derive their randomness as `ctx.narrow("mesh").at(peer_id)`:
/// keyed by the peer's global id, not by traffic order. Changing party 0's
/// private data therefore cannot shift a single byte of the randomness the
/// party-1 ↔ party-2 pair uses — in particular the DGK comparator's
/// value-dependent rejection sampling while serving party 0 no longer
/// leaks into the Figure-1-defense permutations party 1 later draws for
/// party 2's queries (under one threaded stream per node, it did).
#[test]
fn mesh_streams_are_keyed_per_peer() {
    let mut cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 4,
            min_pts: 3,
        },
        60,
    );
    cfg.comparator = Comparator::Dgk; // value-dependent draws: the sharp case
    cfg.key_bits = 64;

    // Parties 1 and 2: interleaved tight cluster, lots of cross matches
    // (and thus permuted own#idx leakage on both sides). Party 0: same
    // record count in both variants, far from everyone — its *values*
    // change, its counts contribution (zero) does not.
    let party1 = vec![
        Point::new(vec![0, 0]),
        Point::new(vec![1, 1]),
        Point::new(vec![0, 2]),
        Point::new(vec![2, 0]),
    ];
    let party2 = vec![
        Point::new(vec![1, 0]),
        Point::new(vec![0, 1]),
        Point::new(vec![2, 1]),
    ];
    let far_a = vec![Point::new(vec![50, 50]), Point::new(vec![-50, 40])];
    let far_b = vec![Point::new(vec![44, -51]), Point::new(vec![-48, -39])];

    let run = |party0: &[Point]| {
        run_multiparty(
            &cfg,
            &[party0.to_vec(), party1.clone(), party2.clone()],
            977,
        )
        .unwrap()
    };
    let out_a = run(&far_a);
    let out_b = run(&far_b);

    // The pinned pair (parties 1 and 2) must be bit-for-bit unaffected.
    for party in [1usize, 2] {
        assert_eq!(
            out_a[party].clustering, out_b[party].clustering,
            "party {party}: labels shifted by party 0's data"
        );
        assert_eq!(
            out_a[party].leakage, out_b[party].leakage,
            "party {party}: permuted leakage order shifted by party 0's data"
        );
        assert_eq!(
            out_a[party].yao, out_b[party].yao,
            "party {party}: yao ledger"
        );
    }
    // Sanity: the scenario actually exercises permuted own-point leakage.
    assert!(
        out_a[1].leakage.count_kind("own_point_matched") >= 3,
        "test must observe enough matches for a permutation shift to show"
    );
}
