//! Handshake negative tests: any disagreement between the two halves must
//! fail fast on **both** sides with a typed
//! [`CoreError::HandshakeMismatch`] naming the offending field — never a
//! hang, never a generic decode error.

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{Hello, Mode, Participant, PartyData, WIRE_VERSION};
use ppdbscan::CoreError;
use ppds_dbscan::{DbscanParams, Point};
use ppds_paillier::Keypair;
use ppds_smc::{setup, Party};
use ppds_transport::{duplex, Channel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(eps_sq: u64) -> ProtocolConfig {
    ProtocolConfig::new(DbscanParams { eps_sq, min_pts: 2 }, 10)
}

fn points() -> Vec<Point> {
    vec![Point::new(vec![0, 0]), Point::new(vec![1, 1])]
}

/// Runs two participants against each other and returns **both** sides'
/// results (unlike `run_participants`, which surfaces only the first
/// error).
fn run_both(
    alice: Participant,
    bob: Participant,
) -> (
    Result<ppdbscan::SessionOutcome, CoreError>,
    Result<ppdbscan::SessionOutcome, CoreError>,
) {
    let (mut chan_a, mut chan_b) = duplex();
    std::thread::scope(|scope| {
        let a = scope.spawn(move || alice.run(&mut chan_a));
        let b = scope.spawn(move || bob.run(&mut chan_b));
        (a.join().unwrap(), b.join().unwrap())
    })
}

/// Asserts one side failed with `HandshakeMismatch` on `field`, returning
/// `(ours, theirs)`.
fn expect_mismatch(
    side: &str,
    result: Result<ppdbscan::SessionOutcome, CoreError>,
    field: &str,
) -> (u64, u64) {
    match result {
        Err(CoreError::HandshakeMismatch {
            field: got,
            ours,
            theirs,
        }) => {
            assert_eq!(got, field, "{side}: wrong field named");
            (ours, theirs)
        }
        Err(other) => panic!("{side}: wanted HandshakeMismatch on {field}, got {other:?}"),
        Ok(_) => panic!("{side}: session ran despite {field} mismatch"),
    }
}

fn horizontal(c: ProtocolConfig, seed: u64) -> Participant {
    Participant::new(c)
        .data(PartyData::Horizontal(points()))
        .seed(seed)
}

#[test]
fn eps_sq_mismatch_fails_on_both_sides_naming_the_field() {
    let (a, b) = run_both(
        horizontal(cfg(4), 1).role(Party::Alice),
        horizontal(cfg(9), 2).role(Party::Bob),
    );
    let (a_ours, a_theirs) = expect_mismatch("alice", a, "eps_sq");
    let (b_ours, b_theirs) = expect_mismatch("bob", b, "eps_sq");
    assert_eq!((a_ours, a_theirs), (4, 9));
    assert_eq!((b_ours, b_theirs), (9, 4), "sides swapped symmetrically");
}

#[test]
fn batching_mismatch_fails_on_both_sides_naming_the_field() {
    let (a, b) = run_both(
        horizontal(cfg(4), 3).role(Party::Alice),
        horizontal(cfg(4).with_batching(true), 4).role(Party::Bob),
    );
    assert_eq!(expect_mismatch("alice", a, "batching"), (0, 1));
    assert_eq!(expect_mismatch("bob", b, "batching"), (1, 0));
}

#[test]
fn packing_mismatch_fails_on_both_sides_naming_the_field() {
    let (a, b) = run_both(
        horizontal(cfg(4), 13).role(Party::Alice),
        horizontal(cfg(4).with_packing(true), 14).role(Party::Bob),
    );
    assert_eq!(expect_mismatch("alice", a, "packing"), (0, 1));
    assert_eq!(expect_mismatch("bob", b, "packing"), (1, 0));
}

#[test]
fn packing_and_batching_disagreements_name_their_own_fields() {
    // Both knobs differ: the handshake reports the first disagreeing field
    // in tag order (batching precedes packing), on both sides.
    let (a, b) = run_both(
        horizontal(cfg(4).with_batching(true), 15).role(Party::Alice),
        horizontal(cfg(4).with_packing(true), 16).role(Party::Bob),
    );
    assert_eq!(expect_mismatch("alice", a, "batching"), (1, 0));
    assert_eq!(expect_mismatch("bob", b, "batching"), (0, 1));
}

#[test]
fn comparator_mismatch_fails_on_both_sides_naming_the_field() {
    let mut dgk = cfg(4);
    dgk.comparator = ppds_smc::compare::Comparator::Dgk;
    let (a, b) = run_both(
        horizontal(cfg(4), 5).role(Party::Alice),
        horizontal(dgk, 6).role(Party::Bob),
    );
    // Ideal = 1, Dgk = 2 on the wire.
    assert_eq!(expect_mismatch("alice", a, "comparator"), (1, 2));
    assert_eq!(expect_mismatch("bob", b, "comparator"), (2, 1));
}

#[test]
fn wire_version_mismatch_is_a_typed_error_not_a_hang_or_decode_failure() {
    // A "future" (or past) peer: completes the key exchange honestly, then
    // sends a Hello advertising a different wire version. The real
    // participant must reject it by name — before any protocol message.
    let (mut real_chan, mut fake_chan) = duplex();
    let fake = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(99);
        let kp = Keypair::generate(256, &mut rng);
        setup::exchange_keys_bob(&mut fake_chan, &kp).unwrap();
        let hello = Hello::for_session(&cfg(4), Mode::Horizontal, 2, 2).with_wire_version(7);
        fake_chan.send(&hello).unwrap();
        // Drain the real side's hello so its send doesn't block.
        let _theirs: Hello = fake_chan.recv().unwrap();
    });
    let err = horizontal(cfg(4), 7)
        .role(Party::Alice)
        .run(&mut real_chan)
        .unwrap_err();
    fake.join().unwrap();
    match err {
        CoreError::HandshakeMismatch {
            field,
            ours,
            theirs,
        } => {
            assert_eq!(field, "wire_version");
            assert_eq!(ours, u64::from(WIRE_VERSION));
            assert_eq!(theirs, 7);
        }
        other => panic!("wanted HandshakeMismatch on wire_version, got {other:?}"),
    }
}

#[test]
fn legacy_vec_u64_meta_frame_is_rejected_as_a_version_mismatch() {
    // The pre-session handshake sent a bare Vec<u64> of 11 magic numbers.
    // Its bytes decode leniently as a Hello whose "version" is the length
    // prefix (11), so a current participant rejects it with a typed
    // wire_version error instead of a decode failure mid-frame.
    let (mut real_chan, mut fake_chan) = duplex();
    let fake = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(98);
        let kp = Keypair::generate(256, &mut rng);
        setup::exchange_keys_bob(&mut fake_chan, &kp).unwrap();
        let legacy_meta: Vec<u64> = vec![1, 2, 2, 10, 4, 2, 256, 1, 0, 20, 0];
        fake_chan.send(&legacy_meta).unwrap();
        let _theirs: Hello = fake_chan.recv().unwrap();
    });
    let err = horizontal(cfg(4), 8)
        .role(Party::Alice)
        .run(&mut real_chan)
        .unwrap_err();
    fake.join().unwrap();
    match err {
        CoreError::HandshakeMismatch { field, theirs, .. } => {
            assert_eq!(field, "wire_version");
            assert_eq!(theirs, 11, "the Vec length prefix reads as the version");
        }
        other => panic!("wanted HandshakeMismatch on wire_version, got {other:?}"),
    }
}

#[test]
fn selection_and_mask_bits_mismatches_are_also_typed() {
    let mut quickselect = cfg(4);
    quickselect.selection = ppds_smc::kth::SelectionMethod::QuickSelect;
    let (a, _b) = run_both(
        horizontal(cfg(4), 9).role(Party::Alice),
        horizontal(quickselect, 10).role(Party::Bob),
    );
    expect_mismatch("alice", a, "selection");

    let mut wide = cfg(4);
    wide.mask_bits = 8;
    let (a, _b) = run_both(
        horizontal(cfg(4), 11).role(Party::Alice),
        horizontal(wide, 12).role(Party::Bob),
    );
    assert_eq!(expect_mismatch("alice", a, "mask_bits"), (20, 8));
}
