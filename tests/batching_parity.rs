//! Round-batching parity: for every protocol family, the batched pipeline
//! must produce **byte-identical clusterings and identical leakage logs**
//! to the unbatched reference under the same seeds — batching changes the
//! framing, never the protocol — while collapsing wire rounds from
//! `O(candidates)` to `O(1)` per neighborhood query.

mod common;

use common::{
    rng, run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_multiparty,
    run_vertical_pair,
};
use ppds::ppdbscan::config::ProtocolConfig;
use ppds::ppdbscan::session::{Participant, PartyData};
use ppds::ppdbscan::{ArbitraryPartition, CoreError, PartyOutput, VerticalPartition};
use ppds::ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds::ppds_dbscan::{dbscan, DbscanParams, Point, Quantizer};
use ppds::ppds_smc::compare::Comparator;
use ppds::ppds_smc::kth::SelectionMethod;

fn blobs(n: usize, seed: u64) -> Vec<Point> {
    let quantizer = Quantizer::new(1.0, 60);
    let (points, _) = standard_blobs(&mut rng(seed), (n / 3).max(1), 3, 2, quantizer);
    points
}

fn base_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    )
}

/// Labels, leakage, and modeled Yao cost must be identical; wire rounds
/// must drop by at least `min_round_factor`.
fn assert_parity(
    name: &str,
    unbatched: &(PartyOutput, PartyOutput),
    batched: &(PartyOutput, PartyOutput),
    min_round_factor: f64,
) {
    for (side, (u, b)) in [
        ("alice", (&unbatched.0, &batched.0)),
        ("bob", (&unbatched.1, &batched.1)),
    ] {
        assert_eq!(
            u.clustering, b.clustering,
            "{name}/{side}: labels must be byte-identical"
        );
        assert_eq!(
            u.leakage, b.leakage,
            "{name}/{side}: batching must not widen leakage"
        );
        assert_eq!(
            u.yao, b.yao,
            "{name}/{side}: same comparisons, same modeled Yao cost"
        );
        let (ur, br) = (u.traffic.total_rounds(), b.traffic.total_rounds());
        assert!(
            ur as f64 >= min_round_factor * br as f64,
            "{name}/{side}: rounds {ur} unbatched vs {br} batched \
             (wanted >= {min_round_factor}x fewer)"
        );
        // Logical message counts stay comparable; the saving is purely in
        // latency-paying frames.
        assert_eq!(
            u.traffic.total_messages(),
            b.traffic.total_messages(),
            "{name}/{side}: batching preserves logical message counts"
        );
    }
}

/// Acceptance criterion: a vertical run with n ≥ 64 must report ≥ 10×
/// fewer wire rounds batched, with byte-identical labels and leakage.
#[test]
fn vertical_n64_batched_cuts_rounds_10x_with_identical_output() {
    let records = blobs(66, 4242);
    assert!(records.len() >= 64, "need n >= 64, got {}", records.len());
    let partition = VerticalPartition::split(&records, 1);
    let cfg = base_cfg();
    let unbatched = run_vertical_pair(&cfg, &partition, rng(1), rng(2)).unwrap();
    let batched = run_vertical_pair(&cfg.with_batching(true), &partition, rng(1), rng(2)).unwrap();
    assert_parity("vertical", &unbatched, &batched, 10.0);
    // And the clustering is still exactly the centralized reference.
    assert_eq!(batched.0.clustering, dbscan(&records, cfg.params));
    // Concretely: one batched neighborhood query costs 3 Ideal rounds, an
    // unbatched one 3·(n−1) — the per-query factor is (n−1), so even with
    // handshake overhead amortized in, the run-level factor clears 10×.
    let (ur, br) = (
        unbatched.0.traffic.total_rounds(),
        batched.0.traffic.total_rounds(),
    );
    println!("vertical n={}: rounds {ur} -> {br}", records.len());
}

#[test]
fn horizontal_parity_across_seeds() {
    for seed in [1u64, 2, 3] {
        let (alice, bob) = split_alternating(&blobs(24, 9000 + seed));
        let cfg = base_cfg();
        let unbatched = run_horizontal_pair(&cfg, &alice, &bob, rng(seed), rng(seed + 50)).unwrap();
        let batched = run_horizontal_pair(
            &cfg.with_batching(true),
            &alice,
            &bob,
            rng(seed),
            rng(seed + 50),
        )
        .unwrap();
        assert_parity(&format!("horizontal/seed{seed}"), &unbatched, &batched, 4.0);
    }
}

#[test]
fn enhanced_parity_both_selection_methods() {
    let (alice, bob) = split_alternating(&blobs(20, 777));
    for (label, selection) in [
        ("repeated-min", SelectionMethod::RepeatedMin),
        ("quickselect", SelectionMethod::QuickSelect),
    ] {
        for seed in [11u64, 12] {
            let mut cfg = base_cfg();
            cfg.params.min_pts = 5; // force joint core tests to engage
            cfg.selection = selection;
            let unbatched =
                run_enhanced_pair(&cfg, &alice, &bob, rng(seed), rng(seed + 50)).unwrap();
            let batched = run_enhanced_pair(
                &cfg.with_batching(true),
                &alice,
                &bob,
                rng(seed),
                rng(seed + 50),
            )
            .unwrap();
            // The enhanced protocol is already phase-batched (one dot-product
            // frame pair per query); batching additionally collapses
            // quickselect partitions, so the round win depends on the
            // selection method — parity of outputs is the invariant here.
            assert_parity(
                &format!("enhanced/{label}/seed{seed}"),
                &unbatched,
                &batched,
                1.0,
            );
            let engaged = unbatched.0.leakage.count_kind("threshold_rank")
                + unbatched.1.leakage.count_kind("threshold_rank")
                > 0;
            assert!(engaged, "{label}/seed{seed}: test must exercise selection");
            if selection == SelectionMethod::QuickSelect {
                assert!(
                    unbatched.0.traffic.total_rounds() > batched.0.traffic.total_rounds(),
                    "{label}: batched quickselect must save rounds"
                );
            }
        }
    }
}

#[test]
fn arbitrary_parity_across_seeds() {
    for seed in [21u64, 22, 23] {
        let records = blobs(15, 3000 + seed);
        let partition = ArbitraryPartition::random(&mut rng(seed), &records);
        let cfg = base_cfg();
        let unbatched = run_arbitrary_pair(&cfg, &partition, rng(seed), rng(seed + 50)).unwrap();
        let batched = run_arbitrary_pair(
            &cfg.with_batching(true),
            &partition,
            rng(seed),
            rng(seed + 50),
        )
        .unwrap();
        assert_parity(&format!("arbitrary/seed{seed}"), &unbatched, &batched, 4.0);
    }
}

#[test]
fn multiparty_parity() {
    let all = blobs(18, 55);
    let parties: Vec<Vec<Point>> = (0..3)
        .map(|p| {
            all.iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == p)
                .map(|(_, pt)| pt.clone())
                .collect()
        })
        .collect();
    let cfg = base_cfg();
    let unbatched = run_multiparty(&cfg, &parties, 7).unwrap();
    let batched = run_multiparty(&cfg.with_batching(true), &parties, 7).unwrap();
    for (i, (u, b)) in unbatched.iter().zip(&batched).enumerate() {
        assert_eq!(u.clustering, b.clustering, "party {i} labels");
        assert_eq!(u.leakage, b.leakage, "party {i} leakage");
        assert!(
            u.traffic.total_rounds() as f64 >= 3.0 * b.traffic.total_rounds() as f64,
            "party {i}: rounds {} vs {}",
            u.traffic.total_rounds(),
            b.traffic.total_rounds()
        );
    }
}

#[test]
fn dgk_backend_parity_on_vertical() {
    // The fully cryptographic comparator must survive batching too: same
    // outcomes, same leakage, ciphertext batches in O(1) frames per query.
    let records = blobs(9, 88);
    let partition = VerticalPartition::split(&records, 1);
    let mut cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 2,
        },
        60,
    );
    cfg.comparator = Comparator::Dgk;
    cfg.key_bits = 64; // Dgk decrypts per bit; keep the test quick
    let unbatched = run_vertical_pair(&cfg, &partition, rng(5), rng(6)).unwrap();
    let batched = run_vertical_pair(&cfg.with_batching(true), &partition, rng(5), rng(6)).unwrap();
    assert_parity("vertical/dgk", &unbatched, &batched, 5.0);
}

/// Historically the hardest parity case: DGK's mask scalars are
/// value-rejection sampled, so under the old threaded-`StdRng` discipline
/// the batched HDP responder (all multiplications first, all comparisons
/// after) shifted every later query's Figure-1-defense permutation and the
/// `own#idx` leakage order diverged. Keyed substreams
/// (`ProtocolContext`) make every record's draws independent of execution
/// order, so batched and unbatched runs are identical by construction —
/// this test used to be `#[ignore]`d red and now pins the fix.
#[test]
fn dgk_backend_parity_on_horizontal() {
    let (alice, bob) = split_alternating(&blobs(24, 321));
    let mut cfg = base_cfg();
    cfg.comparator = Comparator::Dgk;
    cfg.key_bits = 64;
    let unbatched = run_horizontal_pair(&cfg, &alice, &bob, rng(5), rng(6)).unwrap();
    let batched =
        run_horizontal_pair(&cfg.with_batching(true), &alice, &bob, rng(5), rng(6)).unwrap();
    assert_parity("horizontal/dgk", &unbatched, &batched, 3.0);
}

#[test]
fn batching_mismatch_is_rejected_at_handshake() {
    let records = blobs(6, 99);
    let partition = VerticalPartition::split(&records, 1);
    let cfg = base_cfg();
    let batched_cfg = cfg.with_batching(true);
    let result = ppds::ppdbscan::session::run_participants(
        Participant::new(cfg)
            .role(ppds::ppds_smc::Party::Alice)
            .data(PartyData::Vertical(partition.alice.clone()))
            .rng(rng(1)),
        Participant::new(batched_cfg)
            .role(ppds::ppds_smc::Party::Bob)
            .data(PartyData::Vertical(partition.bob.clone()))
            .rng(rng(2)),
    );
    match result.unwrap_err() {
        CoreError::HandshakeMismatch {
            field,
            ours,
            theirs,
        } => {
            assert_eq!(field, "batching");
            assert_eq!((ours, theirs), (0, 1), "alice reports her side first");
        }
        other => panic!("one-sided batching must fail with a typed error, got {other:?}"),
    }
}
