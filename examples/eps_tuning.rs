//! Choosing `Eps` before engaging the protocol: the paper treats Eps and
//! MinPts as given global parameters; in practice each party derives a
//! candidate from *its own* data with Ester et al.'s sorted k-distance
//! heuristic, then the parties agree on the larger value out of band.
//! Nothing private is exchanged during tuning.
//!
//! Run with: `cargo run --release --example eps_tuning`

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppds_dbscan::datagen::{split_random, standard_blobs};
use ppds_dbscan::kdist::{k_distance_profile, suggest_eps_sq};
use ppds_dbscan::{DbscanParams, Quantizer};
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sparkline(profile: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = *profile.iter().max().unwrap_or(&1) as f64;
    profile
        .iter()
        .step_by((profile.len() / 60).max(1))
        .map(|&v| BARS[((v as f64 / max) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let quantizer = Quantizer::new(1.0, 80);
    let (points, _) = standard_blobs(&mut rng, 30, 3, 2, quantizer);
    let (alice, bob) = split_random(&mut rng, &points, 0.5);

    let min_pts = 4;
    println!("Each party inspects its own sorted k-dist graph (k = MinPts - 1 = 3):\n");
    let mut candidates = Vec::new();
    for (name, data) in [("Alice", &alice), ("Bob", &bob)] {
        let profile = k_distance_profile(data, min_pts - 1);
        let suggestion = suggest_eps_sq(data, min_pts - 1);
        println!("  {name:<5} ({} pts)  {}", data.len(), sparkline(&profile));
        println!("         suggested eps² = {suggestion}");
        candidates.push(suggestion);
    }

    // Agree on the larger candidate: local data is a subsample of the joint
    // distribution, so local k-distances overestimate — taking the max keeps
    // both parties' dense regions connected.
    let eps_sq = *candidates.iter().max().unwrap();
    println!("\nAgreed parameters: eps² = {eps_sq}, MinPts = {min_pts}.");

    let cfg = ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, 80);
    let (a_outcome, b_outcome) = run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice.clone()))
            .seed(10),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(PartyData::Horizontal(bob.clone()))
            .seed(11),
    )
    .expect("protocol run");
    let (a_out, b_out) = (a_outcome.output, b_outcome.output);

    println!(
        "Joint run: Alice sees {} clusters ({} noise), Bob sees {} clusters ({} noise).",
        a_out.clustering.num_clusters,
        a_out.clustering.noise_count(),
        b_out.clustering.num_clusters,
        b_out.clustering.noise_count(),
    );
    assert_eq!(a_out.clustering.num_clusters, 3, "three blobs recovered");
}
