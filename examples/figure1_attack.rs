//! Reproduces Figure 1 — the neighborhood-intersection attack that
//! motivates the paper — and shows why the permuted protocol defeats it.
//!
//! Setting: Bob owns three points `B1, B2, B3` whose Eps-disks overlap in a
//! small region; Alice owns one point `A` inside that region.
//!
//! * Under Kumar et al. [14]-style leakage, Bob learns *per Bob point,
//!   per identified Alice record* whether it is a neighbor — so he can
//!   intersect the three disks and localize `A` to the small gray region of
//!   Figure 1.
//! * Under this paper's protocol, Bob only learns "one of my points matched
//!   some (unlinkable) query" — his feasible region for any particular
//!   Alice record is the *union* of the disks, not the intersection.
//!
//! The example runs the real protocol to show what Bob's leakage log
//! actually contains, then quantifies both feasible regions by exact
//! lattice counting.
//!
//! Run with: `cargo run --release --example figure1_attack`

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppds_dbscan::{dist_sq, DbscanParams, Point};
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Geometry tuned so the three disks overlap in a small sliver.
    let eps_sq: u64 = 100; // Eps = 10
    let bob_points = vec![
        Point::new(vec![0, 0]),  // B1
        Point::new(vec![16, 0]), // B2
        Point::new(vec![8, 14]), // B3
    ];
    let alice_point = Point::new(vec![8, 5]); // A: inside all three disks
    for b in &bob_points {
        assert!(dist_sq(b, &alice_point) <= eps_sq, "A is in every disk");
    }

    // --- Quantify the attacker's knowledge by exact lattice counting. ---
    let bound = 40i64;
    let mut intersection = 0u64; // Kumar-style knowledge
    let mut union = 0u64; // this paper's knowledge (upper bound)
    for x in -bound..=bound {
        for y in -bound..=bound {
            let p = Point::new(vec![x, y]);
            let hits = bob_points
                .iter()
                .filter(|b| dist_sq(b, &p) <= eps_sq)
                .count();
            if hits == 3 {
                intersection += 1;
            }
            if hits >= 1 {
                union += 1;
            }
        }
    }
    println!("Eps = 10, Bob's points: B1(0,0), B2(16,0), B3(8,14); Alice's A = (8,5)\n");
    println!("Feasible lattice positions for A, from Bob's perspective:");
    println!("  Kumar et al. [14] leakage (links neighbor bits to ONE record):");
    println!("    intersection of the three disks = {intersection} positions");
    println!("  This paper's protocol (unlinkable, permuted matches):");
    println!("    at best the union of the disks  = {union} positions");
    println!(
        "  => localization power reduced {:.0}x\n",
        union as f64 / intersection as f64
    );

    // --- Execute the attack against the Kumar-style baseline protocol. ---
    let cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq,
            min_pts: 5, // high MinPts: everything is noise; only queries matter
        },
        64,
    );
    let alice_points = vec![alice_point];
    println!("Running the Kumar et al. [14]-style baseline (linkable neighbor bits)…");
    let (_a, kumar_bob) = ppdbscan::kumar::run_kumar_pair(
        &cfg,
        &alice_points,
        &bob_points,
        StdRng::seed_from_u64(3),
        StdRng::seed_from_u64(4),
    )
    .expect("baseline run");
    let localized =
        ppdbscan::kumar::intersection_attack(&bob_points, &kumar_bob.leakage, eps_sq, bound);
    println!(
        "  Bob's transcript holds {} LINKED bits; replaying Figure 1 on it pins \
         Alice's record to {} candidate position(s).\n",
        kumar_bob.leakage.count_kind("linked_neighbor_bit"),
        localized[&0]
    );

    // --- The honest protocol on identical data. ---
    println!("Running this paper's protocol on the same data…");
    let (_a_outcome, b_outcome) = run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice_points.clone()))
            .seed(1),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(PartyData::Horizontal(bob_points.clone()))
            .seed(2),
    )
    .expect("protocol run");
    let b_out = b_outcome.output;

    println!("  Bob's complete leakage log:");
    for event in b_out.leakage.events() {
        println!("    {event:?}");
    }
    println!(
        "\nBob saw {} own-point-matched flags and {} linkable bits: he cannot tell \
         whether the matches came from the same Alice record — exactly the \
         contribution-2 guarantee (\"Bob does not know whether those three records \
         are the same or not\"). His feasible region stays the {}-position union.",
        b_out.leakage.count_kind("own_point_matched"),
        b_out.leakage.count_kind("linked_neighbor_bit"),
        ppdbscan::kumar::unlinkable_feasible_region(&bob_points, eps_sq, bound),
    );
}
