//! Arbitrarily partitioned data (Figure 4): every (record, attribute) cell
//! can belong to either party — "extremely patchworked data" per §4.4. The
//! protocol decomposes each distance into vertical (local) and horizontal
//! (Multiplication Protocol) parts and still reproduces the exact
//! trusted-third-party clustering.
//!
//! Run with: `cargo run --release --example arbitrary_partition`

use ppdbscan::config::ProtocolConfig;
use ppdbscan::partition::{ArbitraryPartition, Owner};
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppds_dbscan::datagen::standard_blobs;
use ppds_dbscan::{dbscan, DbscanParams, Quantizer};
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ownership_stats(part: &ArbitraryPartition) -> (usize, usize) {
    let mut alice = 0;
    let mut bob = 0;
    for row in &part.ownership {
        for owner in row {
            match owner {
                Owner::Alice => alice += 1,
                Owner::Bob => bob += 1,
            }
        }
    }
    (alice, bob)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let quantizer = Quantizer::new(1.0, 40);
    let (records, _) = standard_blobs(&mut rng, 12, 2, 3, quantizer);

    // Random per-cell ownership: the most adversarial partitioning pattern.
    let partition = ArbitraryPartition::random(&mut rng, &records);
    let (a_cells, b_cells) = ownership_stats(&partition);
    println!(
        "{} records x {} attributes; Alice owns {a_cells} cells, Bob owns {b_cells}.",
        partition.len(),
        partition.dim()
    );

    let params = DbscanParams {
        eps_sq: 36,
        min_pts: 3,
    };
    let cfg = ProtocolConfig::new(params, 40);

    println!("\nRunning the arbitrary-partition protocol (§4.4)…");
    let (alice_outcome, bob_outcome) = run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(PartyData::Arbitrary(partition.alice_values.clone()))
            .seed(1),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(PartyData::Arbitrary(partition.bob_values.clone()))
            .seed(2),
    )
    .expect("protocol run");
    let (alice, bob) = (alice_outcome.output, bob_outcome.output);

    assert_eq!(alice.clustering, bob.clustering, "both parties agree");
    let reference = dbscan(&records, params);
    assert_eq!(alice.clustering, reference, "matches plaintext DBSCAN");
    println!(
        "  ✔ {} clusters, {} noise — identical to plaintext DBSCAN on the joined records",
        alice.clustering.num_clusters,
        alice.clustering.noise_count()
    );

    println!(
        "\nCost: {} Yao comparisons, {:.1} KiB transferred \
         (+ Multiplication Protocol rounds for every split attribute pair).",
        alice.yao.comparisons,
        alice.traffic.total_bytes() as f64 / 1024.0
    );
    println!(
        "The same code path handles pure-vertical and pure-horizontal ownership \
         as special cases — see `crates/core/src/arbitrary.rs` tests."
    );
}
