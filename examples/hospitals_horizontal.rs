//! The paper's motivating scenario: two hospitals jointly cluster patient
//! lab panels (horizontally partitioned — each hospital owns complete
//! records for its own patients) without disclosing any record.
//!
//! Modes:
//! * `cargo run --release --example hospitals_horizontal` — both hospitals
//!   in one process (two threads over an in-memory channel);
//! * `... -- tcp-alice 127.0.0.1:7777` then in a second terminal
//!   `... -- tcp-bob 127.0.0.1:7777` — genuine two-process deployment over
//!   sockets, same protocol code.

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppds_dbscan::datagen::{split_random, standard_blobs};
use ppds_dbscan::{DbscanParams, Point, Quantizer};
use ppds_smc::Party;
use ppds_transport::tcp::TcpChannel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpListener;

/// Synthesizes each hospital's patient panel: three latent patient
/// sub-populations (e.g. metabolic profiles) spread across both hospitals.
fn patient_data() -> (Vec<Point>, Vec<Point>, ProtocolConfig) {
    let mut rng = StdRng::seed_from_u64(2012);
    let quantizer = Quantizer::new(1.0, 100);
    let (points, _truth) = standard_blobs(&mut rng, 30, 3, 2, quantizer);
    let (alice, bob) = split_random(&mut rng, &points, 0.5);
    let cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 49, // Eps = 7 lab-units
            min_pts: 4,
        },
        100,
    );
    (alice, bob, cfg)
}

fn report(name: &str, out: &ppdbscan::PartyOutput, n_points: usize) {
    println!("-- {name} ({n_points} patients) --");
    println!(
        "  clusters: {}   noise: {}",
        out.clustering.num_clusters,
        out.clustering.noise_count()
    );
    println!(
        "  traffic: {:.1} KiB over {} messages",
        out.traffic.total_bytes() as f64 / 1024.0,
        out.traffic.total_messages()
    );
    println!(
        "  faithful-Yao model: {} comparisons = {:.1} KiB, {} Paillier decryptions",
        out.yao.comparisons,
        out.yao.modeled_bytes as f64 / 1024.0,
        out.yao.modeled_decryptions
    );
    println!(
        "  leakage: {} neighbor counts learned, {} of its own points flagged as matched",
        out.leakage.count_kind("neighbor_count"),
        out.leakage.count_kind("own_point_matched")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (alice, bob, cfg) = patient_data();

    match args.get(1).map(String::as_str) {
        None | Some("memory") => {
            println!("Two hospitals, one process (in-memory channel).\n");
            let (a_outcome, b_outcome) = run_participants(
                Participant::new(cfg)
                    .role(Party::Alice)
                    .data(PartyData::Horizontal(alice.clone()))
                    .seed(10),
                Participant::new(cfg)
                    .role(Party::Bob)
                    .data(PartyData::Horizontal(bob.clone()))
                    .seed(20),
            )
            .expect("protocol run");
            report("Hospital A", &a_outcome.output, alice.len());
            report("Hospital B", &b_outcome.output, bob.len());
            let a_out = a_outcome.output;
            // The modeled network cost on a WAN between the hospitals:
            let wan = ppds_transport::CostModel::wan();
            println!(
                "\nModeled WAN transfer time for Hospital A's transcript: {:?}",
                wan.estimate(&a_out.traffic)
            );
        }
        Some("tcp-alice") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7777");
            let listener = TcpListener::bind(addr).expect("bind");
            println!("Hospital A listening on {addr} — start the tcp-bob side now.");
            let mut chan = TcpChannel::accept(&listener).expect("accept");
            // The identical Participant runs over TCP and in-memory alike.
            let outcome = Participant::new(cfg)
                .role(Party::Alice)
                .data(PartyData::Horizontal(alice.clone()))
                .seed(10)
                .run(&mut chan)
                .expect("protocol run");
            report("Hospital A (TCP)", &outcome.output, alice.len());
        }
        Some("tcp-bob") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7777");
            let mut chan = TcpChannel::connect(addr).expect("connect");
            println!("Hospital B connected to {addr}.");
            let outcome = Participant::new(cfg)
                .role(Party::Bob)
                .data(PartyData::Horizontal(bob.clone()))
                .seed(20)
                .run(&mut chan)
                .expect("protocol run");
            report("Hospital B (TCP)", &outcome.output, bob.len());
        }
        Some(other) => {
            eprintln!("unknown mode {other}; use: memory | tcp-alice [addr] | tcp-bob [addr]");
            std::process::exit(2);
        }
    }
}
