//! Multi-party extension: three hospitals (and one tiny clinic) jointly
//! cluster their patients — the K-party generalization the paper's
//! conclusion lists as future work, implemented in `ppdbscan::multiparty`.
//!
//! Run with: `cargo run --release --example multiparty_hospitals`

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::run_mesh_local;
use ppds_dbscan::datagen::standard_blobs;
use ppds_dbscan::{dbscan, dbscan_with_external_density, DbscanParams, Point, Quantizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Four latent patient sub-populations, scattered across institutions of
    // very different sizes.
    let mut rng = StdRng::seed_from_u64(42);
    let quantizer = Quantizer::new(1.0, 80);
    let (points, _) = standard_blobs(&mut rng, 24, 4, 2, quantizer);

    // Skewed split: a large hospital, two mid-size ones, one small clinic.
    let mut parties: Vec<Vec<Point>> = vec![vec![], vec![], vec![], vec![]];
    for p in &points {
        let r: f64 = rng.random();
        let idx = if r < 0.45 {
            0
        } else if r < 0.70 {
            1
        } else if r < 0.92 {
            2
        } else {
            3
        };
        parties[idx].push(p.clone());
    }

    let params = DbscanParams {
        eps_sq: 81,
        min_pts: 4,
    };
    let cfg = ProtocolConfig::new(params, 80);

    println!(
        "Parties: {:?} patients each.",
        parties.iter().map(Vec::len).collect::<Vec<_>>()
    );
    println!("Running the {}-party horizontal protocol…\n", parties.len());
    let outcomes = run_mesh_local(&cfg, &parties, 7).expect("protocol run");
    println!(
        "Each node negotiated {} pairwise sessions over handshake wire v{}.\n",
        outcomes[0].meta.peers.len(),
        outcomes[0].meta.wire_version
    );
    let outputs: Vec<_> = outcomes.into_iter().map(|o| o.output).collect();

    let names = [
        "General Hospital",
        "North Clinic",
        "South Clinic",
        "Village Practice",
    ];
    for (i, out) in outputs.iter().enumerate() {
        // What this party would have found alone:
        let solo = dbscan(&parties[i], params);
        println!(
            "{:<18} alone: {} clusters / {} noise -> jointly: {} clusters / {} noise \
             ({:.1} KiB traffic, {} per-peer counts learned)",
            names[i],
            solo.num_clusters,
            solo.noise_count(),
            out.clustering.num_clusters,
            out.clustering.noise_count(),
            out.traffic.total_bytes() as f64 / 1024.0,
            out.leakage.count_kind("neighbor_count"),
        );
        // Sanity: the reference semantics hold for every party.
        let others: Vec<Point> = parties
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .flat_map(|(_, p)| p.iter().cloned())
            .collect();
        assert_eq!(
            out.clustering,
            dbscan_with_external_density(&parties[i], &others, params)
        );
    }
    println!(
        "\nEvery party's clustering matches the K-party reference semantics \
         (density pooled across all peers, expansion through own points)."
    );
}
