//! Quickstart: two parties jointly cluster horizontally partitioned points
//! without revealing them, and each compares its private result against
//! what it could have computed alone.
//!
//! Run with: `cargo run --release --example quickstart`

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppds_dbscan::{dbscan, DbscanParams, Label, Point};
use ppds_smc::Party;

fn show(owner: &str, points: &[Point], labels: &[Label]) {
    for (p, label) in points.iter().zip(labels) {
        let tag = match label {
            Label::Noise => "noise".to_string(),
            Label::Cluster(id) => format!("cluster {id}"),
        };
        println!("  {owner} {:?} -> {tag}", p.coords());
    }
}

fn main() {
    // Two tight groups, split across the parties so that neither side has
    // enough density on its own.
    let alice = vec![
        Point::new(vec![0, 0]),
        Point::new(vec![2, 1]),
        Point::new(vec![20, 20]),
        Point::new(vec![40, -40]), // isolated: noise
    ];
    let bob = vec![
        Point::new(vec![1, 1]),
        Point::new(vec![1, 0]),
        Point::new(vec![21, 21]),
        Point::new(vec![20, 21]),
    ];

    let params = DbscanParams {
        eps_sq: 8, // Eps = 2·√2
        min_pts: 3,
    };
    let cfg = ProtocolConfig::new(params, 50);

    println!("== What each party would find alone ==");
    let alice_solo = dbscan(&alice, params);
    let bob_solo = dbscan(&bob, params);
    println!(
        "  Alice alone: {} clusters, {} noise points",
        alice_solo.num_clusters,
        alice_solo.noise_count()
    );
    println!(
        "  Bob alone:   {} clusters, {} noise points",
        bob_solo.num_clusters,
        bob_solo.noise_count()
    );

    println!("\n== Running the privacy-preserving protocol (Algorithms 3 & 4) ==");
    // One typed entry point per party: config, role, data view, seed.
    let (alice_outcome, bob_outcome) = run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice.clone()))
            .seed(1),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(PartyData::Horizontal(bob.clone()))
            .seed(2),
    )
    .expect("protocol run");
    println!(
        "  negotiated: {} mode over handshake wire v{}",
        alice_outcome.meta.mode, alice_outcome.meta.wire_version
    );
    let (alice_out, bob_out) = (alice_outcome.output, bob_outcome.output);

    println!(
        "  Alice now sees {} clusters over her points:",
        alice_out.clustering.num_clusters
    );
    show("Alice", &alice, &alice_out.clustering.labels);
    println!(
        "  Bob now sees {} clusters over his points:",
        bob_out.clustering.num_clusters
    );
    show("Bob", &bob, &bob_out.clustering.labels);

    println!("\n== What crossed the wire ==");
    println!(
        "  Alice: {} bytes in {} messages ({} Yao comparisons, modeled {} KiB of faithful-Yao traffic)",
        alice_out.traffic.total_bytes(),
        alice_out.traffic.total_messages(),
        alice_out.yao.comparisons,
        alice_out.yao.modeled_bytes / 1024,
    );
    println!(
        "  Alice's leakage log: {} neighbor counts (Theorem 9), {} own-point match flags",
        alice_out.leakage.count_kind("neighbor_count"),
        alice_out.leakage.count_kind("own_point_matched"),
    );
    println!("\nNo coordinates were exchanged — only Paillier ciphertexts and comparison bits.");
}
