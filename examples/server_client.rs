//! Drive the `ppds-server` subsystem end to end in one process: start a
//! server hosting two protocol modes, run two concurrent client sessions
//! against it over real TCP, scrape the operator endpoint mid-flight, and
//! print the rollup.
//!
//! ```text
//! cargo run --release --example server_client
//! ```

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{Participant, PartyData};
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Quantizer};
use ppds_server::{hosted, open_session, ops_get, Server, ServerConfig};
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    );
    let mut rng = StdRng::seed_from_u64(4242);
    let (points, _) = standard_blobs(&mut rng, 8, 3, 2, Quantizer::new(1.0, 60));
    let (alice, bob) = split_alternating(&points);

    let server = Server::start(
        ServerConfig::new(vec![
            hosted(cfg, Party::Bob, PartyData::Horizontal(bob.clone())),
            hosted(cfg, Party::Bob, PartyData::Enhanced(bob)),
        ])
        .with_workers(2)
        .with_base_seed(0xD0D0),
    )
    .expect("server starts");
    let addr = server.local_addr();
    let ops = server.ops_addr();
    println!("server up: protocol {addr}, ops {ops}\n");

    // Two concurrent sessions, one per hosted mode. Opening both before
    // running either pins two engine workers at once.
    let timeout = Duration::from_secs(30);
    let horizontal = Participant::new(cfg)
        .role(Party::Alice)
        .data(PartyData::Horizontal(alice.clone()))
        .seed(11);
    let enhanced = Participant::new(cfg)
        .role(Party::Alice)
        .data(PartyData::Enhanced(alice))
        .seed(22);
    let s1 = open_session(&addr, &horizontal, 0, timeout).expect("horizontal admitted");
    let s2 = open_session(&addr, &enhanced, 0, timeout).expect("enhanced admitted");
    println!(
        "admitted session {} (horizontal) and session {} (enhanced)",
        s1.session_id(),
        s2.session_id()
    );

    // Both sessions are live right now — scrape the operator endpoint.
    let metrics = ops_get(&ops, "/metrics").expect("metrics scrape");
    println!("\n--- /metrics while both sessions are active ---");
    for line in metrics.lines().filter(|l| {
        l.starts_with("server_") || l.starts_with("engine_queue") || l.starts_with("engine_in")
    }) {
        println!("{line}");
    }

    let (o1, o2) = std::thread::scope(|scope| {
        let h1 = scope.spawn(move || s1.run(horizontal).expect("horizontal session"));
        let h2 = scope.spawn(move || s2.run(enhanced).expect("enhanced session"));
        (h1.join().unwrap(), h2.join().unwrap())
    });

    println!("\n--- outcomes ---");
    for outcome in [&o1, &o2] {
        println!(
            "{}: {} clusters / {} records, {} noise, {} KiB on the wire",
            outcome.meta.mode,
            outcome.output.clustering.num_clusters,
            outcome.output.clustering.labels.len(),
            outcome.output.clustering.noise_count(),
            (outcome.output.traffic.bytes_sent + outcome.output.traffic.bytes_received) / 1024,
        );
    }

    // The client returns a beat before the worker finishes its
    // accounting; wait for the server-side view to settle.
    while server.metrics().counter("server_sessions_completed").get() < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("\n--- /sessions after completion ---");
    print!("{}", ops_get(&ops, "/sessions").expect("sessions scrape"));

    let report = server.shutdown(Duration::from_secs(5));
    println!(
        "\ndrained: {} completed, {} failed, {} dropped; engine busy {:?}",
        report.completed, report.failed, report.dropped, report.engine.busy_time
    );
}
