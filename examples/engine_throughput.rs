//! Multi-tenant engine demo: many clustering jobs through one worker pool,
//! with a shared Paillier randomizer pool doing the encryption legwork in
//! the background.
//!
//! Run with `cargo run --release --example engine_throughput`.

use ppds::ppdbscan::{ProtocolConfig, SessionRequest};
use ppds::ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds::ppds_dbscan::{dbscan_parallel, dbscan_with_external_density, DbscanParams, Quantizer};
use ppds::ppds_engine::{ClusteringJob, Engine, EngineConfig, PrecomputeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // One tenant's workload: a blob dataset split between two hospitals.
    let make_job = |seed: u64| {
        let quantizer = Quantizer::new(1.0, 40);
        let (points, _) = standard_blobs(&mut StdRng::seed_from_u64(seed), 8, 2, 2, quantizer);
        let (alice, bob) = split_alternating(&points);
        let mut cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 49,
                min_pts: 3,
            },
            40,
        );
        cfg.key_bits = 64; // demo speed; the engine is key-size agnostic
        ClusteringJob::new(cfg, SessionRequest::Horizontal { alice, bob }, seed)
    };

    let engine = Engine::start(EngineConfig {
        workers: 4,
        precompute: Some(PrecomputeConfig {
            key_bits: 256,
            capacity: 256,
            fillers: 1,
            seed: 42,
        }),
        queue_cap: None,
    });

    println!("submitting 12 horizontal clustering jobs to a 4-worker engine...");
    let t0 = Instant::now();
    let ids = engine.submit_all((0..12).map(make_job));
    let results = engine.wait_all();
    let elapsed = t0.elapsed();

    for (id, result) in ids.iter().zip(&results) {
        let outputs = result.outputs();
        println!(
            "  {id}: mode={} clusters(alice)={} traffic={} B wall={:.1?}",
            result.mode,
            outputs[0].clustering.num_clusters,
            result.traffic.total_bytes(),
            result.wall_time,
        );
    }

    // Spot-check one job against the single-session reference semantics,
    // with the plaintext baseline computed by the grid-sharded parallel
    // DBSCAN (layer 3) for good measure.
    let job = make_job(0);
    if let SessionRequest::Horizontal { alice, bob } = &job.request {
        let reference = dbscan_with_external_density(alice, bob, job.cfg.params);
        assert_eq!(results[0].outputs()[0].clustering, reference);
        let _union_baseline =
            dbscan_parallel(&[alice.clone(), bob.clone()].concat(), job.cfg.params, 4);
        println!("job-0 output matches the single-session reference semantics ✓");
    }

    // Meanwhile the fillers have been precomputing randomizers under the
    // engine's service key; encrypting through the pool now skips the
    // r^n exponentiation entirely (a hit per encryption).
    let pool = engine.randomizer_pool().expect("precompute configured");
    let service_key = engine.service_keypair().expect("service keypair").clone();
    let mut enc_rng = StdRng::seed_from_u64(7);
    let t_enc = Instant::now();
    for i in 0..64u64 {
        let m = ppds::ppds_bigint::BigUint::from_u64(i);
        let c = pool.encrypt(&m, &mut enc_rng).unwrap();
        assert_eq!(service_key.private.decrypt_crt(&c).unwrap(), m);
    }
    println!(
        "64 pooled encryptions (+ decrypt checks) in {:.1?} on the shared 256-bit service key",
        t_enc.elapsed()
    );

    let report = engine.shutdown();
    println!(
        "\n{} jobs in {elapsed:.1?} wall ({:.1?} cumulative busy, {:.1}x effective concurrency)",
        report.completed,
        report.busy_time,
        report.busy_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "aggregate traffic: {} bytes / {} messages; modeled Yao comparisons: {}",
        report.traffic.total_bytes(),
        report.traffic.total_messages(),
        report.yao.comparisons,
    );
    if let Some(pool) = report.pool {
        println!(
            "randomizer pool: {} produced, {} hits, {} misses",
            pool.produced, pool.hits, pool.misses
        );
    }
}
