//! Basic vs enhanced horizontal protocol: same clustering, strictly less
//! leakage (Theorem 9 vs Theorem 11).
//!
//! The basic protocol tells the querying party *how many* peer points sit
//! in each neighborhood; the enhanced protocol of Section 5 reveals only
//! the core-point bit, at the price of extra Multiplication Protocol and
//! selection rounds. This example runs both on identical data and prints
//! the leakage ledgers and costs side by side.
//!
//! Run with: `cargo run --release --example enhanced_privacy`

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppdbscan::PartyOutput;
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Point, Quantizer};
use ppds_smc::kth::SelectionMethod;
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one horizontal-family protocol (basic or enhanced, per `data`)
/// through the session API with the given seeds.
fn run(
    cfg: ProtocolConfig,
    data: fn(Vec<Point>) -> PartyData,
    alice: &[Point],
    bob: &[Point],
    seeds: (u64, u64),
) -> (PartyOutput, PartyOutput) {
    let (a, b) = run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(data(alice.to_vec()))
            .seed(seeds.0),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(data(bob.to_vec()))
            .seed(seeds.1),
    )
    .expect("protocol run");
    (a.output, b.output)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let quantizer = Quantizer::new(1.0, 60);
    let (points, _) = standard_blobs(&mut rng, 20, 2, 2, quantizer);
    let (alice, bob) = split_alternating(&points);

    let params = DbscanParams {
        eps_sq: 100,
        min_pts: 4,
    };
    let cfg = ProtocolConfig::new(params, 60);

    println!("Running the BASIC horizontal protocol (Algorithms 3 & 4)…");
    let (basic_a, _) = run(cfg, PartyData::Horizontal, &alice, &bob, (1, 2));

    println!("Running the ENHANCED protocol (Algorithms 7 & 8, repeated-min)…");
    let (enh_a, enh_b) = run(cfg, PartyData::Enhanced, &alice, &bob, (3, 4));

    println!("Running the ENHANCED protocol again with quickselect…");
    let mut cfg_qs = cfg;
    cfg_qs.selection = SelectionMethod::QuickSelect;
    let (qs_a, _) = run(cfg_qs, PartyData::Enhanced, &alice, &bob, (5, 6));

    assert_eq!(basic_a.clustering, enh_a.clustering);
    assert_eq!(basic_a.clustering, qs_a.clustering);
    println!(
        "\n✔ All three runs produce the identical clustering \
         ({} clusters, {} noise).\n",
        basic_a.clustering.num_clusters,
        basic_a.clustering.noise_count()
    );

    println!("Alice's leakage ledger (what she learned beyond her output):");
    println!(
        "  basic:    {:>3} neighbor COUNTS revealed (Theorem 9)",
        basic_a.leakage.count_kind("neighbor_count")
    );
    println!(
        "  enhanced: {:>3} neighbor counts, {:>3} core-point BITS (Theorem 11)",
        enh_a.leakage.count_kind("neighbor_count"),
        enh_a.leakage.count_kind("core_point_bit")
    );
    println!("\nWhat Bob learned while responding:");
    println!(
        "  enhanced: {} selection ranks (k = MinPts − |Alice's local neighbors|), \
         {} own-point match flags",
        enh_b.leakage.count_kind("threshold_rank"),
        enh_b.leakage.count_kind("own_point_matched")
    );

    println!("\nThe privacy is not free — cost comparison for Alice's endpoint:");
    for (name, out) in [
        ("basic", &basic_a),
        ("enhanced/rep-min", &enh_a),
        ("enhanced/quickselect", &qs_a),
    ] {
        println!(
            "  {name:<22} {:>8.1} KiB wire, {:>6} Yao comparisons, modeled {:>10.1} KiB faithful-Yao",
            out.traffic.total_bytes() as f64 / 1024.0,
            out.yao.comparisons,
            out.yao.modeled_bytes as f64 / 1024.0
        );
    }
    println!(
        "\nThe enhanced protocol's comparisons run on secret-shared distances with \
         2^{} statistical masking, so its modeled Yao domain is far larger — the \
         trade-off quantified in EXPERIMENTS.md (E3).",
        cfg.mask_bits
    );
}
