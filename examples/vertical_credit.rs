//! Vertical partitioning (Figure 3): a bank and a hospital each hold
//! *different attributes of the same customers* and want the joint
//! clustering. The vertical protocol (Algorithms 5 & 6) gives both parties
//! exactly the clustering a trusted third party would have computed — the
//! example verifies this label-for-label against plaintext DBSCAN.
//!
//! Run with: `cargo run --release --example vertical_credit`

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppdbscan::VerticalPartition;
use ppds_dbscan::datagen::standard_blobs;
use ppds_dbscan::{dbscan, eval, DbscanParams, Quantizer};
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Both halves of the vertical protocol through the session API.
fn run_vertical(
    cfg: ProtocolConfig,
    partition: &VerticalPartition,
    seed_bank: u64,
    seed_hospital: u64,
) -> (ppdbscan::PartyOutput, ppdbscan::PartyOutput) {
    let (bank, hospital) = run_participants(
        Participant::new(cfg)
            .role(Party::Alice)
            .data(PartyData::Vertical(partition.alice.clone()))
            .seed(seed_bank),
        Participant::new(cfg)
            .role(Party::Bob)
            .data(PartyData::Vertical(partition.bob.clone()))
            .seed(seed_hospital),
    )
    .expect("protocol run");
    (bank.output, hospital.output)
}

fn main() {
    // 4-attribute customer records: attributes 0-1 are financial (bank),
    // attributes 2-3 are clinical (hospital). Three latent segments.
    let mut rng = StdRng::seed_from_u64(7);
    let quantizer = Quantizer::new(1.0, 60);
    let (records, _truth) = standard_blobs(&mut rng, 25, 3, 4, quantizer);
    let partition = VerticalPartition::split(&records, 2);

    let params = DbscanParams {
        eps_sq: 64,
        min_pts: 4,
    };
    let cfg = ProtocolConfig::new(params, 60);

    println!(
        "{} customers; bank holds {} attributes, hospital holds {}.",
        partition.len(),
        partition.alice[0].dim(),
        partition.bob[0].dim()
    );

    println!("\nRunning the vertical protocol (Algorithms 5 & 6)…");
    let (bank, hospital) = run_vertical(cfg, &partition, 100, 200);

    println!(
        "  bank view:     {} clusters, {} noise",
        bank.clustering.num_clusters,
        bank.clustering.noise_count()
    );
    println!(
        "  hospital view: {} clusters, {} noise",
        hospital.clustering.num_clusters,
        hospital.clustering.noise_count()
    );

    // The paper's §3.3 contract: identical joint output on both sides,
    // equal to the trusted-third-party result.
    assert_eq!(bank.clustering, hospital.clustering);
    let reference = dbscan(&records, params);
    assert_eq!(bank.clustering, reference);
    println!(
        "  ✔ both parties computed the exact trusted-third-party clustering \
         (Rand index vs plaintext = {:.3})",
        eval::rand_index(&bank.clustering, &reference)
    );

    println!(
        "\nCost: {} Yao comparisons (≈ n² per the §4.3.2 analysis), \
         {:.1} KiB actually transferred, {:.1} MiB under the faithful-Yao model.",
        bank.yao.comparisons,
        bank.traffic.total_bytes() as f64 / 1024.0,
        bank.yao.modeled_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "Leakage (Theorem 10): {} neighborhood sizes became known to each party — \
         nothing else.",
        bank.leakage.count_kind("neighbor_count")
    );

    // Same protocol, round-batched: every region query ships its full
    // candidate set as one wire frame per message instead of one ping-pong
    // per comparison. Identical labels and leakage; O(1) rounds per query.
    println!("\nRe-running with round batching (one message per neighborhood)…");
    let (bank_b, _hospital_b) = run_vertical(cfg.with_batching(true), &partition, 100, 200);
    assert_eq!(bank_b.clustering, bank.clustering);
    assert_eq!(bank_b.leakage, bank.leakage);
    let wan = ppds_transport::CostModel::wan();
    println!(
        "  wire rounds: {} → {} ({}x fewer); modeled WAN time {:.1}s → {:.1}s",
        bank.traffic.total_rounds(),
        bank_b.traffic.total_rounds(),
        bank.traffic.total_rounds() / bank_b.traffic.total_rounds().max(1),
        wan.estimate(&bank.traffic).as_secs_f64(),
        wan.estimate(&bank_b.traffic).as_secs_f64(),
    );
}
