//! Umbrella crate for the *Privacy Preserving Distributed DBSCAN
//! Clustering* reproduction (Liu, Xiong, Luo, Huang — EDBT/ICDT 2012
//! Workshops / Transactions on Data Privacy 6, 2013).
//!
//! This crate re-exports the whole workspace so downstream users can depend
//! on one name; it also hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). See the README for a tour and
//! DESIGN.md for the system inventory.
//!
//! * [`ppdbscan`] — the paper's protocols (horizontal, vertical, arbitrary,
//!   enhanced) and drivers,
//! * [`ppds_dbscan`] — plaintext DBSCAN baseline, workload generators,
//!   clustering metrics,
//! * [`ppds_smc`] — Multiplication Protocol, Yao's millionaires, secure
//!   comparison and k-th order statistic,
//! * [`ppds_paillier`] — the Paillier cryptosystem,
//! * [`ppds_transport`] — measured two-party channels (in-memory and TCP),
//! * [`ppds_bigint`] — arbitrary-precision integer substrate.

pub use ppdbscan;
pub use ppds_bigint;
pub use ppds_dbscan;
pub use ppds_paillier;
pub use ppds_smc;
pub use ppds_transport;
