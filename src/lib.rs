//! Umbrella crate for the *Privacy Preserving Distributed DBSCAN
//! Clustering* reproduction (Liu, Xiong, Luo, Huang — EDBT/ICDT 2012
//! Workshops / Transactions on Data Privacy 6, 2013).
//!
//! This crate re-exports the whole workspace so downstream users can depend
//! on one name; it also hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The repository's `README.md`
//! has a workspace tour and the engine quickstart; `DESIGN.md` has the
//! system inventory and the documented deviations from the paper's text.
//!
//! * [`ppdbscan`] — the paper's protocols (horizontal, vertical, arbitrary,
//!   enhanced, multiparty) behind the typed [`ppdbscan::session`] API: build
//!   a [`ppdbscan::session::Participant`], run it over any channel, get a
//!   [`ppdbscan::session::SessionOutcome`] (output + negotiated metadata).
//!   The versioned [`ppdbscan::session::Hello`] handshake rejects any
//!   parameter disagreement with a typed
//!   [`ppdbscan::CoreError::HandshakeMismatch`] naming the field,
//! * [`ppds_engine`] — the parallel protocol-execution engine: worker-pool
//!   job scheduler, shared Paillier randomizer precomputation, rollup
//!   reports,
//! * [`ppds_server`] — the long-running protocol service: Hello-preamble
//!   session admission, session registry with per-session seed isolation,
//!   bounded-queue load shedding, graceful drain, and the operator HTTP
//!   endpoint,
//! * [`ppds_dbscan`] — plaintext DBSCAN baseline (sequential and
//!   grid-sharded parallel), workload generators, clustering metrics,
//! * [`ppds_smc`] — Multiplication Protocol, Yao's millionaires, secure
//!   comparison and k-th order statistic,
//! * [`ppds_paillier`] — the Paillier cryptosystem with randomizer
//!   precomputation pools,
//! * [`ppds_observe`] — the protocol flight recorder: per-phase span
//!   tracing with traffic attribution, Chrome trace export, and the
//!   operator metrics registry,
//! * [`ppds_transport`] — measured two-party channels (in-memory and TCP),
//! * [`ppds_bigint`] — arbitrary-precision integer substrate.

pub use ppdbscan;
pub use ppds_bigint;
pub use ppds_dbscan;
pub use ppds_engine;
pub use ppds_observe;
pub use ppds_paillier;
pub use ppds_server;
pub use ppds_smc;
pub use ppds_transport;
