#![warn(missing_docs)]

//! **ppds-engine** — a parallel protocol-execution engine for the
//! privacy-preserving DBSCAN suite.
//!
//! The `ppdbscan` drivers run one session at a time: two threads, one
//! in-memory channel pair, blocking until the protocol completes. That is
//! the right shape for studying a protocol and the wrong shape for serving
//! many tenants. This crate turns those one-shot drivers into a concurrent
//! job runtime built from three layers:
//!
//! ## 1. The job scheduler ([`scheduler`])
//!
//! [`Engine`] owns a pool of worker threads fed from one multi-consumer
//! queue. Callers [`Engine::submit`] [`ClusteringJob`] descriptors — a
//! protocol mode ([`ppdbscan::SessionRequest`]: horizontal, vertical,
//! arbitrary, enhanced, or multiparty), a dataset, a
//! [`ppdbscan::ProtocolConfig`], and a seed — and get back a [`JobId`]
//! immediately. Each worker executes whole sessions via
//! [`ppdbscan::run_session`] — built on the typed
//! [`ppdbscan::session::Participant`] API, spawning the per-party threads
//! over an in-memory duplex pair — records a [`JobResult`] in the results
//! store,
//! and rolls the session's traffic ([`ppds_transport::MetricsSnapshot`])
//! and modeled Yao cost ([`ppdbscan::config::YaoLedger`]) into the
//! engine-wide [`EngineReport`]. Results are retrieved per job
//! ([`Engine::wait`]) or in bulk ([`Engine::wait_all`]).
//!
//! Because workers run the *unmodified* session drivers with the job's
//! seed, a job's clustering output is bit-for-bit identical to running the
//! same request through two [`ppdbscan::session::Participant`]s directly —
//! concurrency changes throughput, never answers. The
//! `engine_matches_direct_drivers` integration test pins this.
//!
//! ## 2. The Paillier precomputation pool ([`ppds_paillier::RandomizerPool`])
//!
//! Almost all of a Paillier encryption is the message-independent factor
//! `r^n mod n²`. The engine can host one background-filled
//! [`ppds_paillier::RandomizerPool`] (see [`PrecomputeConfig`]), shared by
//! every concurrent session encrypting under the engine's service key:
//! filler threads burn idle cores keeping the buffer full, and a hot-path
//! encryption ([`ppds_paillier::RandomizerPool::encrypt`]) collapses to two
//! modular multiplications. The `paillier_precompute` entries in the
//! `engine_throughput` bench quantify the gap against baseline
//! `PublicKey::encrypt` on the same keypair.
//!
//! ## 3. Grid-sharded intra-job parallelism ([`ppds_dbscan::shard`])
//!
//! Within a single job, neighborhood computation fans out too:
//! [`ppds_dbscan::ShardedGridIndex`] partitions the query space into
//! disjoint cell shards by a stable hash, and
//! [`ppds_dbscan::dbscan_parallel`] answers all `n` region queries on
//! worker threads before running the standard expansion on the precomputed
//! answers. Shard assignment and merged, sorted query answers are pure
//! functions of the input, so intra-job parallelism is exactly as
//! deterministic as the sequential path — the property the two-party
//! protocols need to stay in lockstep.
//!
//! ## Leakage guarantees under concurrency
//!
//! Running sessions concurrently does not weaken the paper's per-session
//! guarantees, for three structural reasons:
//!
//! * **Isolation** — each session gets a dedicated channel pair and
//!   per-session keypairs generated from its own seeded RNG stream;
//!   no ciphertext, nonce, or comparison transcript crosses sessions. Each
//!   party's [`ppds_smc::LeakageLog`] therefore contains exactly what the
//!   single-session theorems (9/10/11) permit, which the
//!   `leakage_profile_preserved_per_concurrent_session` test asserts
//!   per-job under a fully loaded engine.
//! * **One-shot randomizers** — the shared [`ppds_paillier::RandomizerPool`]
//!   hands each precomputed `r^n` to at most one encryption (`take` pops;
//!   [`ppds_paillier::Randomizer`] is not `Clone`), so pooling never reuses
//!   a nonce across sessions. The pool stores only `r^n`, never `r`.
//! * **Aggregation only widens, never leaks** — the engine's rollups sum
//!   byte/message counters and modeled Yao costs across sessions; they
//!   contain no plaintexts, shares, or neighborhoods. What a tenant learns
//!   from its own session is unchanged; what the operator learns is traffic
//!   accounting it could already observe on the wire.

pub mod job;
pub mod scheduler;

pub use job::{ClusteringJob, JobId, JobResult};
pub use scheduler::{Engine, EngineConfig, EngineError, EngineReport, PrecomputeConfig, TaskFn};
