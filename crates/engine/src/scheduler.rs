//! The worker-pool scheduler: submission queue, results store, rollups.

use crate::job::{ClusteringJob, JobId, JobResult};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ppdbscan::config::YaoLedger;
use ppdbscan::run_session;
use ppds_observe::MetricsRegistry;
use ppds_paillier::{FillerHandle, Keypair, PoolStats, RandomizerPool};
use ppds_transport::MetricsSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many workers and whether to host a shared precomputation pool.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads pulling jobs from the queue. Each session additionally
    /// spawns its per-party threads, so the sweet spot is roughly
    /// `cores / 2` for two-party workloads.
    pub workers: usize,
    /// Optional shared Paillier randomizer pool (layer 2); `None` runs the
    /// scheduler without a precomputation service.
    pub precompute: Option<PrecomputeConfig>,
    /// Bounded-queue mode: when `Some(cap)`, a submission that would leave
    /// more than `cap` jobs waiting (not yet picked up by a worker) is
    /// refused with [`EngineError::QueueFull`] instead of growing the queue
    /// without limit — the load-shedding contract a network front-end needs
    /// to answer "busy" instead of accepting work it cannot start. `None`
    /// (the default) keeps the historical unbounded queue. The admitted
    /// depth is the `engine_queue_depth` gauge in [`Engine::registry`].
    pub queue_cap: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().div_ceil(2))
                .unwrap_or(4),
            precompute: None,
            queue_cap: None,
        }
    }
}

impl EngineConfig {
    /// A config with exactly `workers` workers and no precompute pool.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }

    /// Returns the config with the bounded-queue cap set (see
    /// [`EngineConfig::queue_cap`]).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }
}

/// Typed scheduler errors surfaced to submitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The bounded queue ([`EngineConfig::queue_cap`]) is full: `depth`
    /// jobs are already waiting against a cap of `cap`. The job was **not**
    /// accepted; the caller sheds load (a server replies `ServerBusy`) or
    /// retries later.
    QueueFull {
        /// Jobs waiting when the submission was refused.
        depth: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::QueueFull { depth, cap } => {
                write!(f, "engine queue full: {depth} waiting, cap {cap}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A generic unit of work for [`Engine::try_submit_task`]: runs on a worker
/// thread, reports success or a failure description. Unlike a
/// [`ClusteringJob`] it deposits nothing in the results store — completion
/// is visible through the report counters and whatever state the closure
/// updates itself (a server's session registry, for instance).
pub type TaskFn = Box<dyn FnOnce() -> Result<(), String> + Send + 'static>;

/// What travels down the worker queue.
enum Work {
    /// A clustering session job (results land in the store).
    Clustering(JobId, ClusteringJob),
    /// A generic task with a label for the failure counters.
    Task(JobId, &'static str, TaskFn),
}

/// Parameters of the engine-hosted [`RandomizerPool`].
#[derive(Debug, Clone)]
pub struct PrecomputeConfig {
    /// Key size for the engine's service keypair.
    pub key_bits: usize,
    /// Randomizers buffered at most.
    pub capacity: usize,
    /// Background filler threads.
    pub fillers: usize,
    /// Seed for keypair generation and the filler RNG streams.
    pub seed: u64,
}

impl Default for PrecomputeConfig {
    fn default() -> Self {
        PrecomputeConfig {
            key_bits: 512,
            capacity: 1024,
            fillers: 1,
            seed: 0x0E46_14E0,
        }
    }
}

/// Aggregated view over everything the engine has executed so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineReport {
    /// Jobs accepted by [`Engine::submit`].
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs whose session returned an error.
    pub failed: u64,
    /// Componentwise sum of every finished job's party traffic.
    pub traffic: MetricsSnapshot,
    /// Absorbed Yao ledgers of every finished job.
    pub yao: YaoLedger,
    /// Sum of per-job wall times (exceeds real elapsed time when jobs ran
    /// in parallel; the ratio is the scheduler's effective concurrency).
    pub busy_time: Duration,
    /// Stats of the shared randomizer pool, when one is hosted.
    pub pool: Option<PoolStats>,
}

/// Shared mutable state between the engine handle and its workers.
struct EngineShared {
    results: Mutex<HashMap<u64, Arc<JobResult>>>,
    /// Signaled whenever a result lands.
    job_done: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rollup: Mutex<Rollup>,
    /// Operator-facing gauges and counters; see [`Engine::registry`].
    registry: Arc<MetricsRegistry>,
    /// Serializes bounded-queue admission: the depth check and the enqueue
    /// must be atomic with respect to other submitters, or two racing
    /// submissions could both pass a `cap - 1` check. Uncontended in
    /// practice — submissions happen per session, not per message.
    admission: Mutex<()>,
}

#[derive(Default)]
struct Rollup {
    traffic: MetricsSnapshot,
    yao: YaoLedger,
    busy: Duration,
}

/// The engine: a handle to the worker pool. Dropping it (or calling
/// [`Engine::shutdown`]) closes the queue, drains in-flight jobs, and joins
/// the workers.
pub struct Engine {
    sender: Option<Sender<Work>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<EngineShared>,
    next_id: AtomicU64,
    queue_cap: Option<usize>,
    pool: Option<Arc<RandomizerPool>>,
    fillers: Option<FillerHandle>,
    service_keypair: Option<Keypair>,
}

impl Engine {
    /// Starts the worker pool (and the precompute pool, if configured).
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn start(config: EngineConfig) -> Engine {
        assert!(config.workers > 0, "engine needs at least one worker");
        let (sender, receiver): (Sender<Work>, Receiver<_>) = unbounded();
        let shared = Arc::new(EngineShared {
            results: Mutex::new(HashMap::new()),
            job_done: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rollup: Mutex::new(Rollup::default()),
            registry: Arc::new(MetricsRegistry::new()),
            admission: Mutex::new(()),
        });

        let workers = (0..config.workers)
            .map(|i| {
                let rx = receiver.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppds-engine-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn engine worker")
            })
            .collect();

        let (pool, fillers, service_keypair) = match config.precompute {
            None => (None, None, None),
            Some(pc) => {
                let mut rng = StdRng::seed_from_u64(pc.seed);
                let keypair = Keypair::generate(pc.key_bits, &mut rng);
                let pool = RandomizerPool::new(keypair.public.clone(), pc.capacity);
                let fillers = pool.spawn_fillers(pc.fillers.max(1), pc.seed ^ 0xF111);
                (Some(pool), Some(fillers), Some(keypair))
            }
        };

        Engine {
            sender: Some(sender),
            workers,
            shared,
            next_id: AtomicU64::new(0),
            queue_cap: config.queue_cap,
            pool,
            fillers,
            service_keypair,
        }
    }

    /// Admission control + enqueue, shared by every submit path. Holds the
    /// admission lock across the depth check and the send so the cap is
    /// race-free.
    fn admit(&self, work: impl FnOnce(JobId) -> Work) -> Result<JobId, EngineError> {
        let _admission = self.shared.admission.lock().unwrap();
        let depth_gauge = self.shared.registry.gauge("engine_queue_depth");
        if let Some(cap) = self.queue_cap {
            let depth = depth_gauge.get().max(0) as usize;
            if depth >= cap {
                self.shared
                    .registry
                    .counter("engine_jobs_rejected_full")
                    .inc();
                return Err(EngineError::QueueFull { depth, cap });
            }
        }
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.registry.counter("engine_jobs_submitted").inc();
        depth_gauge.inc();
        self.sender
            .as_ref()
            .expect("engine not shut down")
            .send(work(id))
            .expect("workers alive while engine handle exists");
        Ok(id)
    }

    /// Queues a job and returns its handle immediately.
    ///
    /// # Panics
    /// Panics when a [`EngineConfig::queue_cap`] is configured and the
    /// queue is full — bounded-queue callers must use [`Engine::try_submit`]
    /// and handle [`EngineError::QueueFull`]. Without a cap (the default)
    /// this never panics.
    pub fn submit(&self, job: ClusteringJob) -> JobId {
        self.try_submit(job)
            .expect("bounded engine queue overflowed; use try_submit to shed load")
    }

    /// Queues a job, refusing with [`EngineError::QueueFull`] when the
    /// bounded queue ([`EngineConfig::queue_cap`]) is at capacity. Without
    /// a configured cap this never fails.
    pub fn try_submit(&self, job: ClusteringJob) -> Result<JobId, EngineError> {
        self.admit(|id| Work::Clustering(id, job))
    }

    /// Queues a generic task (same queue, same workers, same backpressure
    /// as clustering jobs). `label` names the task kind in failure logs.
    /// The task's completion shows up in [`Engine::report`] counters and
    /// the registry, **not** in the results store — [`Engine::wait`] /
    /// [`Engine::take`] do not apply to task ids. This is the hook a
    /// network front-end uses to schedule protocol sessions whose I/O it
    /// owns itself.
    pub fn try_submit_task(&self, label: &'static str, task: TaskFn) -> Result<JobId, EngineError> {
        self.admit(|id| Work::Task(id, label, task))
    }

    /// Jobs admitted but not yet picked up by a worker (the
    /// `engine_queue_depth` gauge).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .registry
            .gauge("engine_queue_depth")
            .get()
            .max(0) as usize
    }

    /// Queues several jobs, returning their handles in order.
    ///
    /// # Panics
    /// Like [`Engine::submit`], panics if a bounded queue overflows.
    pub fn submit_all(&self, jobs: impl IntoIterator<Item = ClusteringJob>) -> Vec<JobId> {
        jobs.into_iter().map(|j| self.submit(j)).collect()
    }

    /// The result for `id`, if it has finished.
    pub fn try_result(&self, id: JobId) -> Option<Arc<JobResult>> {
        self.shared
            .results
            .lock()
            .unwrap()
            .get(&id.0)
            .map(Arc::clone)
    }

    /// Like [`Engine::wait`], but also *removes* the result from the store.
    ///
    /// The store retains every result until taken (rollup counters are
    /// unaffected by taking), so a long-lived engine serving an open-ended
    /// job stream should prefer this over [`Engine::wait`] to keep memory
    /// bounded. Note that [`Engine::wait_all`] considers only results still
    /// in the store.
    pub fn take(&self, id: JobId) -> Arc<JobResult> {
        let mut results = self.shared.results.lock().unwrap();
        loop {
            if let Some(result) = results.remove(&id.0) {
                return result;
            }
            results = self.shared.job_done.wait(results).unwrap();
        }
    }

    /// Blocks until job `id` finishes and returns its result.
    pub fn wait(&self, id: JobId) -> Arc<JobResult> {
        let mut results = self.shared.results.lock().unwrap();
        loop {
            if let Some(result) = results.get(&id.0) {
                return Arc::clone(result);
            }
            results = self.shared.job_done.wait(results).unwrap();
        }
    }

    /// Blocks until every submitted job has finished, then returns all
    /// results still in the store (everything not already [`Engine::take`]n)
    /// in submission (id) order.
    pub fn wait_all(&self) -> Vec<Arc<JobResult>> {
        let mut results = self.shared.results.lock().unwrap();
        loop {
            let submitted = self.shared.submitted.load(Ordering::Relaxed);
            let finished = self.shared.completed.load(Ordering::Relaxed)
                + self.shared.failed.load(Ordering::Relaxed);
            if finished >= submitted {
                let mut all: Vec<Arc<JobResult>> = results.values().map(Arc::clone).collect();
                all.sort_by_key(|r| r.id);
                return all;
            }
            results = self.shared.job_done.wait(results).unwrap();
        }
    }

    /// The shared randomizer pool, when [`PrecomputeConfig`] enabled one.
    pub fn randomizer_pool(&self) -> Option<&Arc<RandomizerPool>> {
        self.pool.as_ref()
    }

    /// The engine's service keypair (the private half matching the shared
    /// pool's public key), when precompute is enabled.
    pub fn service_keypair(&self) -> Option<&Keypair> {
        self.service_keypair.as_ref()
    }

    /// The operator metrics registry: scheduler gauges
    /// (`engine_queue_depth`, `engine_in_flight`), job counters
    /// (`engine_jobs_submitted` / `_completed` / `_failed`), and per-mode
    /// traffic rollups. Cheap to clone and safe to scrape from any thread
    /// while jobs run; see [`ppds_observe::MetricsRegistry::render_text`]
    /// for the exposition format.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Point-in-time aggregated rollups.
    pub fn report(&self) -> EngineReport {
        let rollup = self.shared.rollup.lock().unwrap();
        EngineReport {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            traffic: rollup.traffic,
            yao: rollup.yao,
            busy_time: rollup.busy,
            pool: self.pool.as_ref().map(|p| p.stats()),
        }
    }

    /// Drains in-flight jobs, joins the workers, and returns the final
    /// report.
    pub fn shutdown(mut self) -> EngineReport {
        self.close();
        self.report()
    }

    fn close(&mut self) {
        // Closing the queue makes worker `recv` return Err once drained.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(fillers) = self.fillers.take() {
            fillers.stop();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(rx: &Receiver<Work>, shared: &EngineShared) {
    let queue_depth = shared.registry.gauge("engine_queue_depth");
    let in_flight = shared.registry.gauge("engine_in_flight");
    let jobs_completed = shared.registry.counter("engine_jobs_completed");
    let jobs_failed = shared.registry.counter("engine_jobs_failed");
    while let Ok(work) = rx.recv() {
        let (id, job) = match work {
            Work::Clustering(id, job) => (id, job),
            Work::Task(_id, _label, task) => {
                // Generic task: run it, account it, deposit nothing.
                queue_depth.dec();
                in_flight.inc();
                let start = Instant::now();
                let outcome = task();
                let wall_time = start.elapsed();
                shared.rollup.lock().unwrap().busy += wall_time;
                let succeeded = outcome.is_ok();
                {
                    // Same lock discipline as clustering jobs: a drain
                    // waiter that observes finished == submitted also
                    // observes in-flight back at zero.
                    let _results = shared.results.lock().unwrap();
                    if succeeded {
                        shared.completed.fetch_add(1, Ordering::Relaxed);
                        jobs_completed.inc();
                    } else {
                        shared.failed.fetch_add(1, Ordering::Relaxed);
                        jobs_failed.inc();
                    }
                    in_flight.dec();
                }
                shared.job_done.notify_all();
                continue;
            }
        };
        queue_depth.dec();
        in_flight.inc();
        let mode = job.request.mode_name();
        let start = Instant::now();
        let outcome = run_session(&job.cfg, &job.request, job.seed);
        let wall_time = start.elapsed();

        let (traffic, yao) = match &outcome {
            Ok(outputs) => {
                let traffic = outputs.iter().map(|o| o.traffic).sum();
                let mut yao = YaoLedger::default();
                for output in outputs {
                    yao.absorb(output.yao);
                }
                (traffic, yao)
            }
            Err(_) => (MetricsSnapshot::default(), YaoLedger::default()),
        };

        {
            let mut rollup = shared.rollup.lock().unwrap();
            rollup.traffic += traffic;
            rollup.yao.absorb(yao);
            rollup.busy += wall_time;
        }
        shared.registry.record_traffic(mode, traffic);

        let succeeded = outcome.is_ok();
        let result = Arc::new(JobResult {
            id,
            mode,
            outcome,
            wall_time,
            traffic,
            yao,
        });
        {
            // Insert before bumping the finished counters, under the same
            // lock `wait_all` holds while reading them: once a waiter sees
            // `finished == submitted`, every result is in the store.
            let mut results = shared.results.lock().unwrap();
            results.insert(id.0, result);
            if succeeded {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                jobs_completed.inc();
            } else {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                jobs_failed.inc();
            }
            // Under the same lock as the finished counters: a waiter that
            // observes the drain also observes in-flight back at zero.
            in_flight.dec();
        }
        shared.job_done.notify_all();
    }
}
