//! Job descriptors and results.

use ppdbscan::config::YaoLedger;
use ppdbscan::{CoreError, PartyOutput, ProtocolConfig, SessionRequest};
use ppds_transport::MetricsSnapshot;
use std::time::Duration;

/// Opaque handle to a submitted job, issued by [`crate::Engine::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Everything the engine needs to run one clustering session: which
/// protocol family ([`SessionRequest`]), under which public parameters, and
/// from which RNG seed.
///
/// The seed fully determines the session (keypairs, nonces, permutations),
/// so a job re-submitted with the same descriptor reproduces the same
/// transcript and output — the engine adds throughput, not nondeterminism.
#[derive(Debug, Clone)]
pub struct ClusteringJob {
    /// Public protocol parameters both parties agree on.
    pub cfg: ProtocolConfig,
    /// The mode-tagged dataset.
    pub request: SessionRequest,
    /// Seed for the per-party RNG streams (see [`ppdbscan::run_session`]).
    pub seed: u64,
}

impl ClusteringJob {
    /// Bundles a job descriptor.
    pub fn new(cfg: ProtocolConfig, request: SessionRequest, seed: u64) -> Self {
        ClusteringJob { cfg, request, seed }
    }

    /// Returns the job with round batching switched on or off (see
    /// [`ProtocolConfig::with_batching`]): one wire frame per neighborhood
    /// batch instead of one round-trip per comparison, with outputs and
    /// leakage identical under the same seed. The WAN-facing default for
    /// engine tenants; `false` reproduces the paper's ping-pong framing.
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.cfg = self.cfg.with_batching(batching);
        self
    }

    /// Returns the job with plaintext-slot packing switched on or off (see
    /// [`ProtocolConfig::with_packing`]): ciphertext-heavy response legs
    /// ride packed Paillier words, cutting response bytes and keyholder
    /// decryptions by roughly the packing factor while labels, leakage,
    /// and the Yao ledger stay identical under the same seed.
    pub fn with_packing(mut self, packing: bool) -> Self {
        self.cfg = self.cfg.with_packing(packing);
        self
    }

    /// Returns the job with the given candidate-pruning policy (see
    /// [`ProtocolConfig::with_pruning`]): grid pruning replaces all-pairs
    /// secure comparison with band-intersecting candidate sets, trading a
    /// ledgered coarse-band disclosure for an order-of-magnitude drop in
    /// comparisons; labels stay byte-identical under the same seed.
    pub fn with_pruning(mut self, pruning: ppds_dbscan::Pruning) -> Self {
        self.cfg = self.cfg.with_pruning(pruning);
        self
    }
}

/// A finished job: the per-party outputs (or the error), plus the rollups
/// the scheduler derived from them.
#[derive(Debug)]
pub struct JobResult {
    /// The handle this result answers.
    pub id: JobId,
    /// Protocol family tag (`"horizontal"`, `"vertical"`, …).
    pub mode: &'static str,
    /// One [`PartyOutput`] per party in party order, or the session error.
    pub outcome: Result<Vec<PartyOutput>, CoreError>,
    /// Wall-clock time the worker spent on this job.
    pub wall_time: Duration,
    /// Sum of every party's endpoint traffic for this job.
    pub traffic: MetricsSnapshot,
    /// Absorbed Yao ledgers of every party for this job.
    pub yao: YaoLedger,
}

impl JobResult {
    /// `true` if the session completed without error.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The party outputs.
    ///
    /// # Panics
    /// Panics if the job failed; check [`JobResult::is_ok`] or match on
    /// `outcome` when failure is expected.
    pub fn outputs(&self) -> &[PartyOutput] {
        self.outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", self.id))
    }
}
