//! Engine integration tests: concurrency, determinism, rollups, and
//! per-session leakage under load.

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppdbscan::{ArbitraryPartition, PartyOutput, SessionRequest, VerticalPartition};
use ppds_bigint::BigUint;
use ppds_dbscan::{DbscanParams, Point};
use ppds_engine::{ClusteringJob, Engine, EngineConfig, PrecomputeConfig};
use ppds_smc::LeakageEvent;
use ppds_smc::Party;
use ppds_transport::MetricsSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
    let mut c = ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound);
    c.key_bits = 64; // correctness is key-size independent; keep tests fast
    c.mask_bits = 6;
    c
}

fn random_points(n: usize, bound: i64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(vec![
                rng.random_range(-bound..=bound),
                rng.random_range(-bound..=bound),
            ])
        })
        .collect()
}

fn horizontal_job(seed: u64) -> ClusteringJob {
    ClusteringJob::new(
        cfg(8, 3, 10),
        SessionRequest::Horizontal {
            alice: random_points(7, 10, seed * 31 + 1),
            bob: random_points(6, 10, seed * 31 + 2),
        },
        seed,
    )
}

#[test]
fn runs_eight_plus_concurrent_jobs_across_all_modes() {
    let engine = Engine::start(EngineConfig::with_workers(8));
    let mut jobs = Vec::new();
    for seed in 0..4u64 {
        jobs.push(horizontal_job(seed));
        jobs.push(ClusteringJob::new(
            cfg(8, 3, 10),
            SessionRequest::Enhanced {
                alice: random_points(5, 10, seed * 37 + 3),
                bob: random_points(5, 10, seed * 37 + 4),
            },
            seed + 100,
        ));
        jobs.push(ClusteringJob::new(
            cfg(8, 2, 10),
            SessionRequest::Vertical(VerticalPartition::split(
                &random_points(6, 10, seed * 41 + 5),
                1,
            )),
            seed + 200,
        ));
        jobs.push(ClusteringJob::new(
            cfg(8, 2, 10),
            SessionRequest::Arbitrary(ArbitraryPartition::random(
                &mut StdRng::seed_from_u64(seed),
                &random_points(5, 10, seed * 47 + 6),
            )),
            seed + 300,
        ));
        jobs.push(ClusteringJob::new(
            cfg(8, 2, 10),
            SessionRequest::Multiparty {
                parties: (0..3)
                    .map(|p| random_points(4, 10, seed * 43 + p))
                    .collect(),
            },
            seed + 400,
        ));
    }
    assert!(jobs.len() >= 8, "acceptance: at least 8 concurrent jobs");
    let expected_modes: Vec<&str> = jobs.iter().map(|j| j.request.mode_name()).collect();

    let ids = engine.submit_all(jobs);
    let results = engine.wait_all();
    assert_eq!(results.len(), ids.len());
    for (result, expected_mode) in results.iter().zip(&expected_modes) {
        assert!(result.is_ok(), "{} ({}) failed", result.id, result.mode);
        assert_eq!(&result.mode, expected_mode);
        assert_eq!(
            result.outputs().len(),
            if result.mode == "multiparty" { 3 } else { 2 }
        );
        assert!(result.traffic.total_bytes() > 0);
    }

    let report = engine.shutdown();
    assert_eq!(report.submitted, 20);
    assert_eq!(report.completed, 20);
    assert_eq!(report.failed, 0);
}

#[test]
fn engine_matches_direct_drivers() {
    // Acceptance: per-job clustering output is byte-identical to the
    // single-session drivers given the same descriptor.
    let c = cfg(8, 3, 10);
    let alice = random_points(7, 10, 1001);
    let bob = random_points(7, 10, 1002);
    let records = random_points(7, 10, 1003);
    let vertical = VerticalPartition::split(&records, 1);

    let engine = Engine::start(EngineConfig::with_workers(4));
    let h = engine.submit(ClusteringJob::new(
        c,
        SessionRequest::Horizontal {
            alice: alice.clone(),
            bob: bob.clone(),
        },
        7,
    ));
    let e = engine.submit(ClusteringJob::new(
        c,
        SessionRequest::Enhanced {
            alice: alice.clone(),
            bob: bob.clone(),
        },
        8,
    ));
    let v = engine.submit(ClusteringJob::new(
        c,
        SessionRequest::Vertical(vertical.clone()),
        9,
    ));

    // The direct reference path: two Participants over a duplex pair with
    // the seeds the engine derives from the job seed.
    let direct = |data_a: PartyData, data_b: PartyData, seed: u64| -> (PartyOutput, PartyOutput) {
        let (a, b) = run_participants(
            Participant::new(c)
                .role(Party::Alice)
                .data(data_a)
                .seed(seed),
            Participant::new(c)
                .role(Party::Bob)
                .data(data_b)
                .seed(seed + 1),
        )
        .unwrap();
        (a.output, b.output)
    };

    let (da, db) = direct(
        PartyData::Horizontal(alice.clone()),
        PartyData::Horizontal(bob.clone()),
        7,
    );
    let engine_h = engine.wait(h);
    assert_eq!(engine_h.outputs()[0].clustering, da.clustering);
    assert_eq!(engine_h.outputs()[1].clustering, db.clustering);
    assert_eq!(engine_h.outputs()[0].traffic, da.traffic);
    assert_eq!(engine_h.outputs()[1].traffic, db.traffic);
    assert_eq!(engine_h.outputs()[0].yao, da.yao);

    let (ea, eb) = direct(
        PartyData::Enhanced(alice.clone()),
        PartyData::Enhanced(bob.clone()),
        8,
    );
    let engine_e = engine.wait(e);
    assert_eq!(engine_e.outputs()[0].clustering, ea.clustering);
    assert_eq!(engine_e.outputs()[1].clustering, eb.clustering);
    assert_eq!(engine_e.outputs()[0].traffic, ea.traffic);

    let (va, vb) = direct(
        PartyData::Vertical(vertical.alice.clone()),
        PartyData::Vertical(vertical.bob.clone()),
        9,
    );
    let engine_v = engine.wait(v);
    assert_eq!(engine_v.outputs()[0].clustering, va.clustering);
    assert_eq!(engine_v.outputs()[1].clustering, vb.clustering);
    assert_eq!(engine_v.outputs()[1].traffic, vb.traffic);
}

#[test]
fn batched_jobs_match_unbatched_with_fewer_rounds() {
    // The engine-facing batching knob: same descriptor, same seed, one job
    // batched — labels and leakage identical, wire rounds collapse.
    let engine = Engine::start(EngineConfig::with_workers(2));
    let make = || {
        ClusteringJob::new(
            cfg(8, 2, 10),
            SessionRequest::Vertical(VerticalPartition::split(&random_points(10, 10, 555), 1)),
            42,
        )
    };
    let plain = engine.wait(engine.submit(make()));
    let batched = engine.wait(engine.submit(make().with_batching(true)));
    for (p, b) in plain.outputs().iter().zip(batched.outputs()) {
        assert_eq!(p.clustering, b.clustering);
        assert_eq!(p.leakage, b.leakage);
        assert_eq!(p.yao, b.yao);
        assert!(
            p.traffic.total_rounds() as f64 >= 5.0 * b.traffic.total_rounds() as f64,
            "rounds {} vs {}",
            p.traffic.total_rounds(),
            b.traffic.total_rounds()
        );
    }
    // Rollups aggregate rounds like every other counter.
    let report = engine.shutdown();
    assert_eq!(
        report.traffic.total_rounds(),
        plain.traffic.total_rounds() + batched.traffic.total_rounds()
    );
}

#[test]
fn packed_jobs_match_unpacked_with_fewer_bytes() {
    // The engine-facing packing knob: same descriptor, same seed, one job
    // packed — labels, leakage, and ledger identical, response bytes drop
    // by the packing factor (the Ideal comparator's verdict padding packs).
    let engine = Engine::start(EngineConfig::with_workers(2));
    let make = || {
        ClusteringJob::new(
            cfg(8, 2, 10),
            SessionRequest::Vertical(VerticalPartition::split(&random_points(10, 10, 556), 1)),
            43,
        )
        .with_batching(true)
    };
    let plain = engine.wait(engine.submit(make()));
    let packed = engine.wait(engine.submit(make().with_packing(true)));
    for (p, q) in plain.outputs().iter().zip(packed.outputs()) {
        assert_eq!(p.clustering, q.clustering);
        assert_eq!(p.leakage, q.leakage);
        assert_eq!(p.yao, q.yao);
        // 64-bit test keys only fit 2 verdict slots per word; production
        // key sizes reach ~10-20x (see tests/packing_parity.rs at 256 bits).
        assert!(
            p.traffic.total_bytes() as f64 >= 1.8 * q.traffic.total_bytes() as f64,
            "bytes {} vs {}",
            p.traffic.total_bytes(),
            q.traffic.total_bytes()
        );
    }
    engine.shutdown();
}

#[test]
fn resubmitted_job_reproduces_identical_results() {
    let engine = Engine::start(EngineConfig::with_workers(4));
    let job = horizontal_job(99);
    let first = engine.wait(engine.submit(job.clone()));
    let second = engine.wait(engine.submit(job));
    assert_eq!(
        first.outputs()[0].clustering,
        second.outputs()[0].clustering
    );
    assert_eq!(
        first.outputs()[1].clustering,
        second.outputs()[1].clustering
    );
    assert_eq!(first.traffic, second.traffic);
    assert_eq!(first.yao, second.yao);
}

#[test]
fn report_rolls_up_exactly_the_sum_of_job_results() {
    let engine = Engine::start(EngineConfig::with_workers(3));
    let ids = engine.submit_all((0..6).map(horizontal_job));
    let results = engine.wait_all();
    assert_eq!(ids.len(), results.len());

    let expected_traffic: MetricsSnapshot = results.iter().map(|r| r.traffic).sum();
    let expected_comparisons: u64 = results.iter().map(|r| r.yao.comparisons).sum();
    let report = engine.report();
    assert_eq!(report.traffic, expected_traffic);
    assert_eq!(report.yao.comparisons, expected_comparisons);
    assert_eq!(report.completed, 6);
    assert!(report.busy_time.as_nanos() > 0);
    // Sanity: sessions are symmetric, so sent == received in aggregate.
    assert_eq!(report.traffic.bytes_sent, report.traffic.bytes_received);
}

#[test]
fn registry_gauges_converge_to_zero_at_drain() {
    let engine = Engine::start(EngineConfig::with_workers(3));
    let registry = engine.registry();
    engine.submit_all((0..6).map(horizontal_job));
    assert_eq!(registry.counter("engine_jobs_submitted").get(), 6);
    let results = engine.wait_all();
    assert_eq!(results.len(), 6);
    // Drained: every queued job was picked up and every picked-up job
    // finished, so both scheduler gauges are back at zero.
    assert_eq!(registry.gauge("engine_queue_depth").get(), 0);
    assert_eq!(registry.gauge("engine_in_flight").get(), 0);
    assert_eq!(registry.counter("engine_jobs_completed").get(), 6);
    assert_eq!(registry.counter("engine_jobs_failed").get(), 0);
    // Per-mode traffic rollup matches the per-job sum the report carries.
    let expected: MetricsSnapshot = results.iter().map(|r| r.traffic).sum();
    assert_eq!(registry.traffic("horizontal"), Some(expected));
    let text = registry.render_text();
    assert!(text.contains("engine_jobs_completed 6"), "{text}");
    // The registry outlives the engine handle: scraping after shutdown
    // still sees the final counters.
    engine.shutdown();
    assert_eq!(registry.counter("engine_jobs_completed").get(), 6);
}

#[test]
fn take_removes_results_but_keeps_rollups() {
    let engine = Engine::start(EngineConfig::with_workers(2));
    let ids = engine.submit_all((0..3).map(horizontal_job));
    let taken = engine.take(ids[0]);
    assert!(taken.is_ok());
    assert!(engine.try_result(ids[0]).is_none(), "take must evict");
    // wait_all still terminates (it counts finished jobs, not stored
    // results) and returns only what was not taken.
    let rest = engine.wait_all();
    assert_eq!(rest.len(), 2);
    let report = engine.shutdown();
    assert_eq!(report.completed, 3, "rollups unaffected by take");
}

#[test]
fn failed_jobs_are_reported_not_lost() {
    let engine = Engine::start(EngineConfig::with_workers(2));
    // Eps² beyond the lattice: config validation must fail inside the
    // session and surface as a failed job.
    let bad = ClusteringJob::new(
        cfg(1_000_000, 3, 5),
        SessionRequest::Horizontal {
            alice: random_points(4, 5, 1),
            bob: random_points(4, 5, 2),
        },
        1,
    );
    let good = horizontal_job(3);
    let bad_id = engine.submit(bad);
    let good_id = engine.submit(good);
    assert!(engine.wait(bad_id).outcome.is_err());
    assert!(engine.wait(good_id).is_ok());
    let report = engine.shutdown();
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 1);
}

#[test]
fn leakage_profile_preserved_per_concurrent_session() {
    // Theorem 9's per-session profile must hold for every job of a fully
    // loaded engine: concurrency adds no leakage events.
    let engine = Engine::start(EngineConfig::with_workers(8));
    let ids = engine.submit_all((0..8).map(horizontal_job));
    for id in ids {
        let result = engine.wait(id);
        for out in result.outputs() {
            for event in out.leakage.events() {
                match event {
                    LeakageEvent::NeighborCount { .. } | LeakageEvent::OwnPointMatched { .. } => {}
                    other => panic!("Theorem 9 forbids event {other:?} (job {})", result.id),
                }
            }
            assert!(out.leakage.count_kind("neighbor_count") > 0);
        }
    }
}

#[test]
fn shared_randomizer_pool_serves_concurrent_encryptors() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        precompute: Some(PrecomputeConfig {
            key_bits: 128,
            capacity: 64,
            fillers: 2,
            seed: 5,
        }),
        queue_cap: None,
    });
    let pool = engine.randomizer_pool().expect("pool configured").clone();
    let keypair = engine.service_keypair().expect("service keypair").clone();

    // Several "sessions" encrypt concurrently from the one shared pool.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let pool = pool.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t);
            (0..25)
                .map(|i| {
                    let m = BigUint::from_u64(t * 1000 + i);
                    (m.clone(), pool.encrypt(&m, &mut rng).unwrap())
                })
                .collect::<Vec<_>>()
        }));
    }
    for handle in handles {
        for (m, c) in handle.join().unwrap() {
            assert_eq!(keypair.private.decrypt_crt(&c).unwrap(), m);
        }
    }
    let report = engine.shutdown();
    let stats = report.pool.expect("pool stats in report");
    assert_eq!(stats.hits + stats.misses, 100);
    assert!(stats.hits > 0, "background fillers never served a hit");
}

#[test]
fn bounded_queue_sheds_load_with_typed_error() {
    use ppds_engine::EngineError;
    use std::sync::mpsc;

    let engine = Engine::start(EngineConfig::with_workers(1).with_queue_cap(1));

    // Occupy the single worker with a task that blocks until released, so
    // queue depth is fully under test control.
    let (release_tx, release_rx) = mpsc::channel::<()>();
    engine
        .try_submit_task(
            "blocker",
            Box::new(move || {
                release_rx.recv().expect("released");
                Ok(())
            }),
        )
        .expect("empty queue admits the blocker");

    // Wait until the worker picked the blocker up (depth back to 0).
    while engine.queue_depth() > 0 {
        std::thread::yield_now();
    }

    // One slot: first queued job admitted, second refused by name.
    engine
        .try_submit(horizontal_job(1))
        .expect("one slot available");
    assert_eq!(engine.queue_depth(), 1);
    let err = engine.try_submit(horizontal_job(2)).unwrap_err();
    assert_eq!(err, EngineError::QueueFull { depth: 1, cap: 1 });
    assert!(err.to_string().contains("queue full"), "{err}");

    // The gauge backs the decision and the rejection is counted.
    let registry = engine.registry();
    assert_eq!(registry.gauge("engine_queue_depth").get(), 1);
    assert_eq!(registry.counter("engine_jobs_rejected_full").get(), 1);

    // Release the worker: the queue drains and capacity returns.
    release_tx.send(()).expect("worker waiting");
    let results = engine.wait_all();
    assert_eq!(results.len(), 1, "one clustering job ran");
    assert!(results[0].is_ok());
    engine
        .try_submit(horizontal_job(3))
        .expect("capacity returned after drain");
    let report = engine.shutdown();
    // blocker task + two admitted clustering jobs; the refused one is gone.
    assert_eq!(report.submitted, 3);
    assert_eq!(report.completed, 3);
}

#[test]
fn tasks_share_queue_accounting_with_jobs() {
    let engine = Engine::start(EngineConfig::with_workers(2));
    let hits = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    for _ in 0..4 {
        let hits = std::sync::Arc::clone(&hits);
        engine
            .try_submit_task(
                "bump",
                Box::new(move || {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Ok(())
                }),
            )
            .expect("unbounded");
    }
    engine
        .try_submit_task("fails", Box::new(|| Err("intentional".into())))
        .expect("unbounded");
    let _ = engine.try_submit(horizontal_job(9));
    let results = engine.wait_all();
    assert_eq!(results.len(), 1, "only clustering jobs deposit results");
    let report = engine.shutdown();
    assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 4);
    assert_eq!(report.submitted, 6);
    assert_eq!(report.completed, 5);
    assert_eq!(report.failed, 1, "task failure counted, not lost");
}
