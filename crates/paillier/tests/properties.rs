//! Property-based tests for the Paillier homomorphic laws.
//!
//! All properties run against a fixed 256-bit key (generation is the
//! expensive part, the laws are key-independent) with proptest-driven
//! plaintexts and scalars.

use ppds_bigint::{BigInt, BigUint};
use ppds_paillier::Keypair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(256, &mut StdRng::seed_from_u64(99)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_u64(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BigUint::from_u64(m);
        let c = kp.public.encrypt(&m, &mut rng).unwrap();
        prop_assert_eq!(kp.private.decrypt(&c).unwrap(), m.clone());
        prop_assert_eq!(kp.private.decrypt_crt(&c).unwrap(), m);
    }

    #[test]
    fn additive_law(m1 in any::<u64>(), m2 in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let (m1, m2) = (BigUint::from_u64(m1), BigUint::from_u64(m2));
        let c1 = kp.public.encrypt(&m1, &mut rng).unwrap();
        let c2 = kp.public.encrypt(&m2, &mut rng).unwrap();
        let sum = kp.private.decrypt_crt(&kp.public.add(&c1, &c2)).unwrap();
        prop_assert_eq!(sum, &m1 + &m2); // no wrap: 65 bits << 256-bit n
    }

    #[test]
    fn scalar_law(m in any::<u32>(), k in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let m_big = BigUint::from_u64(m as u64);
        let k_big = BigUint::from_u64(k as u64);
        let c = kp.public.encrypt(&m_big, &mut rng).unwrap();
        let scaled = kp.private.decrypt_crt(&kp.public.mul_plain(&c, &k_big)).unwrap();
        prop_assert_eq!(scaled, BigUint::from_u128(m as u128 * k as u128));
    }

    #[test]
    fn multiplication_protocol_identity(x in any::<u32>(), y in any::<u32>(), v in any::<i32>(), seed in any::<u64>()) {
        // u = D(E(x)^y * E(v)) = x*y + v — the algebra of Algorithm 2.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = kp.public.encrypt_i64(x as i64, &mut rng).unwrap();
        let xy = kp.public.mul_plain(&ex, &BigUint::from_u64(y as u64));
        let ev = kp.public.encrypt_i64(v as i64, &mut rng).unwrap();
        let u = kp.private.decrypt_signed(&kp.public.add(&xy, &ev)).unwrap();
        prop_assert_eq!(u, BigInt::from_i128(x as i128 * y as i128 + v as i128));
    }

    #[test]
    fn signed_roundtrip(v in any::<i64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public.encrypt_i64(v, &mut rng).unwrap();
        prop_assert_eq!(kp.private.decrypt_i64(&c).unwrap(), Some(v));
    }

    #[test]
    fn signed_additive_law(a in -(1i64 << 40)..(1i64 << 40), b in -(1i64 << 40)..(1i64 << 40), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public.encrypt_i64(a, &mut rng).unwrap();
        let cb = kp.public.encrypt_i64(b, &mut rng).unwrap();
        let sum = kp.private.decrypt_i64(&kp.public.add(&ca, &cb)).unwrap();
        prop_assert_eq!(sum, Some(a + b));
    }

    #[test]
    fn signed_scalar_law(m in -(1i64 << 30)..(1i64 << 30), k in -(1i64 << 30)..(1i64 << 30), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public.encrypt_i64(m, &mut rng).unwrap();
        let scaled = kp.public.mul_plain_signed(&c, &BigInt::from_i64(k));
        let got = kp.private.decrypt_signed(&scaled).unwrap();
        prop_assert_eq!(got, BigInt::from_i128(m as i128 * k as i128));
    }

    #[test]
    fn rerandomization_is_invisible(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BigUint::from_u64(m);
        let c = kp.public.encrypt(&m, &mut rng).unwrap();
        let c2 = kp.public.rerandomize(&c, &mut rng);
        prop_assert_ne!(&c, &c2);
        prop_assert_eq!(kp.private.decrypt_crt(&c2).unwrap(), m);
    }

    #[test]
    fn sub_law(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public.encrypt_i64(a as i64, &mut rng).unwrap();
        let cb = kp.public.encrypt_i64(b as i64, &mut rng).unwrap();
        let diff = kp.private.decrypt_i64(&kp.public.sub(&ca, &cb)).unwrap();
        prop_assert_eq!(diff, Some(a as i64 - b as i64));
    }
}
