//! Property-based tests for the Paillier homomorphic laws.
//!
//! All properties run against a fixed 256-bit key (generation is the
//! expensive part, the laws are key-independent) with proptest-driven
//! plaintexts and scalars.

use ppds_bigint::{BigInt, BigUint};
use ppds_paillier::{Keypair, PaillierError, SlotLayout};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(256, &mut StdRng::seed_from_u64(99)))
}

/// A second, smaller key so the packing codec is exercised at more than
/// one modulus size (capacity depends on the key).
fn small_keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(128, &mut StdRng::seed_from_u64(98)))
}

fn key_for(use_small: bool) -> &'static Keypair {
    if use_small {
        small_keypair()
    } else {
        keypair()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_u64(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BigUint::from_u64(m);
        let c = kp.public.encrypt(&m, &mut rng).unwrap();
        prop_assert_eq!(kp.private.decrypt(&c).unwrap(), m.clone());
        prop_assert_eq!(kp.private.decrypt_crt(&c).unwrap(), m);
    }

    #[test]
    fn additive_law(m1 in any::<u64>(), m2 in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let (m1, m2) = (BigUint::from_u64(m1), BigUint::from_u64(m2));
        let c1 = kp.public.encrypt(&m1, &mut rng).unwrap();
        let c2 = kp.public.encrypt(&m2, &mut rng).unwrap();
        let sum = kp.private.decrypt_crt(&kp.public.add(&c1, &c2)).unwrap();
        prop_assert_eq!(sum, &m1 + &m2); // no wrap: 65 bits << 256-bit n
    }

    #[test]
    fn scalar_law(m in any::<u32>(), k in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let m_big = BigUint::from_u64(m as u64);
        let k_big = BigUint::from_u64(k as u64);
        let c = kp.public.encrypt(&m_big, &mut rng).unwrap();
        let scaled = kp.private.decrypt_crt(&kp.public.mul_plain(&c, &k_big)).unwrap();
        prop_assert_eq!(scaled, BigUint::from_u128(m as u128 * k as u128));
    }

    #[test]
    fn multiplication_protocol_identity(x in any::<u32>(), y in any::<u32>(), v in any::<i32>(), seed in any::<u64>()) {
        // u = D(E(x)^y * E(v)) = x*y + v — the algebra of Algorithm 2.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = kp.public.encrypt_i64(x as i64, &mut rng).unwrap();
        let xy = kp.public.mul_plain(&ex, &BigUint::from_u64(y as u64));
        let ev = kp.public.encrypt_i64(v as i64, &mut rng).unwrap();
        let u = kp.private.decrypt_signed(&kp.public.add(&xy, &ev)).unwrap();
        prop_assert_eq!(u, BigInt::from_i128(x as i128 * y as i128 + v as i128));
    }

    #[test]
    fn signed_roundtrip(v in any::<i64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public.encrypt_i64(v, &mut rng).unwrap();
        prop_assert_eq!(kp.private.decrypt_i64(&c).unwrap(), Some(v));
    }

    #[test]
    fn signed_additive_law(a in -(1i64 << 40)..(1i64 << 40), b in -(1i64 << 40)..(1i64 << 40), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public.encrypt_i64(a, &mut rng).unwrap();
        let cb = kp.public.encrypt_i64(b, &mut rng).unwrap();
        let sum = kp.private.decrypt_i64(&kp.public.add(&ca, &cb)).unwrap();
        prop_assert_eq!(sum, Some(a + b));
    }

    #[test]
    fn signed_scalar_law(m in -(1i64 << 30)..(1i64 << 30), k in -(1i64 << 30)..(1i64 << 30), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public.encrypt_i64(m, &mut rng).unwrap();
        let scaled = kp.public.mul_plain_signed(&c, &BigInt::from_i64(k));
        let got = kp.private.decrypt_signed(&scaled).unwrap();
        prop_assert_eq!(got, BigInt::from_i128(m as i128 * k as i128));
    }

    #[test]
    fn rerandomization_is_invisible(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BigUint::from_u64(m);
        let c = kp.public.encrypt(&m, &mut rng).unwrap();
        let c2 = kp.public.rerandomize(&c, &mut rng);
        prop_assert_ne!(&c, &c2);
        prop_assert_eq!(kp.private.decrypt_crt(&c2).unwrap(), m);
    }

    #[test]
    fn sub_law(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public.encrypt_i64(a as i64, &mut rng).unwrap();
        let cb = kp.public.encrypt_i64(b as i64, &mut rng).unwrap();
        let diff = kp.private.decrypt_i64(&kp.public.sub(&ca, &cb)).unwrap();
        prop_assert_eq!(diff, Some(a as i64 - b as i64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packing codec roundtrip across random slot widths, slot counts, and
    /// two key sizes: pack_encrypt → unpack_decrypt is the identity.
    #[test]
    fn packing_roundtrip(
        slot_bits in 8usize..48,
        count in 1usize..40,
        use_small in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let kp = key_for(use_small);
        let layout = SlotLayout::new(kp.public.bits(), slot_bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let limit = 1u64 << slot_bits.min(63);
        let slots: Vec<BigUint> = (0..count)
            .map(|_| BigUint::from_u64(rng.random_range(0..limit)))
            .collect();
        let words = kp.public.pack_encrypt(&layout, &slots, &mut rng).unwrap();
        prop_assert_eq!(words.len(), layout.words_for(count));
        let back = kp.private.unpack_decrypt(&layout, &words, count).unwrap();
        prop_assert_eq!(back, slots);
    }

    /// A slot value at or above 2^slot_bits must be rejected, not silently
    /// bleed into the neighboring slot.
    #[test]
    fn packing_rejects_slot_overflow(
        slot_bits in 8usize..40,
        excess in 0u64..1000,
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let layout = SlotLayout::new(kp.public.bits(), slot_bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let too_big = BigUint::from_u64((1u64 << slot_bits) + excess);
        let err = kp
            .public
            .pack_encrypt(&layout, &[too_big], &mut rng)
            .unwrap_err();
        prop_assert!(matches!(err, PaillierError::SlotOverflow { .. }));
    }

    /// Slot-wise homomorphic packing agrees with scalar Paillier: slot i of
    /// pack_ciphertexts(items, plain) decrypts to exactly what the scalar
    /// pipeline add(items[i], E(plain[i])) decrypts to.
    #[test]
    fn packed_add_matches_scalar_paillier(
        slot_bits in 20usize..40,
        count in 1usize..12,
        use_small in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let kp = key_for(use_small);
        let layout = SlotLayout::new(kp.public.bits(), slot_bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        // Halve the budget per side so value + addend stays in the slot.
        let limit = 1u64 << (slot_bits - 1).min(62);
        let values: Vec<u64> = (0..count).map(|_| rng.random_range(0..limit)).collect();
        let addends: Vec<u64> = (0..count).map(|_| rng.random_range(0..limit)).collect();
        let items: Vec<_> = values
            .iter()
            .map(|&v| kp.public.encrypt(&BigUint::from_u64(v), &mut rng).unwrap())
            .collect();
        let plain: Vec<BigUint> = addends.iter().map(|&v| BigUint::from_u64(v)).collect();
        let words = kp
            .public
            .pack_ciphertexts(&layout, &items, &plain, &mut rng)
            .unwrap();
        let packed = kp.private.unpack_decrypt(&layout, &words, count).unwrap();
        for i in 0..count {
            let scalar = kp.public.add(
                &items[i],
                &kp.public
                    .encrypt(&BigUint::from_u64(addends[i]), &mut rng)
                    .unwrap(),
            );
            let scalar_plain = kp.private.decrypt_crt(&scalar).unwrap();
            prop_assert_eq!(&packed[i], &scalar_plain, "slot {}", i);
        }
    }

    /// The batched encryption kernel is byte-invisible at both key sizes:
    /// `encrypt_many` produces exactly the ciphertexts a sequential
    /// `encrypt` loop over the same rng would.
    #[test]
    fn encrypt_many_matches_sequential(
        count in 0usize..10,
        use_small in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let kp = key_for(use_small);
        let ms: Vec<BigUint> = (0..count as u64).map(BigUint::from_u64).collect();
        let mut seq_rng = StdRng::seed_from_u64(seed);
        let mut batch_rng = StdRng::seed_from_u64(seed);
        let seq: Vec<_> = ms
            .iter()
            .map(|m| kp.public.encrypt(m, &mut seq_rng).unwrap())
            .collect();
        prop_assert_eq!(kp.public.encrypt_many(&ms, &mut batch_rng).unwrap(), seq);
    }

    /// Batch validation accepts exactly what per-element validation accepts,
    /// at both key sizes — including batches poisoned by a non-unit.
    #[test]
    fn validate_many_matches_per_element(
        count in 1usize..10,
        poison in any::<bool>(),
        use_small in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let kp = key_for(use_small);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cts: Vec<_> = (0..count as u64)
            .map(|i| kp.public.encrypt(&BigUint::from_u64(i), &mut rng).unwrap())
            .collect();
        if poison {
            use rand::Rng as _;
            let at = rng.random_range(0..cts.len());
            // n shares every factor with n, so gcd(n, n) ≠ 1.
            cts[at] = ppds_paillier::Ciphertext::from_biguint(kp.public.n().clone());
        }
        let per_element: Result<(), _> = cts.iter().try_for_each(|c| kp.public.validate(c));
        prop_assert_eq!(kp.public.validate_many(&cts), per_element);
    }
}
