//! Key generation, encryption and decryption.

use crate::error::PaillierError;
use crate::precompute::RandomizerPool;
use ppds_bigint::{modular, prime, random, BigUint, FixedBaseTable, MontgomeryCtx};
use rand::Rng;
use std::sync::Arc;

/// Smallest accepted key size (bits of `n`). Far below cryptographic
/// strength — the floor only guards against degenerate message spaces in
/// tests. Production use should be ≥ 2048.
pub const MIN_KEY_BITS: usize = 16;

/// A Paillier ciphertext: an element of `Z*_{n²}`.
///
/// Deliberately opaque; all arithmetic goes through [`PublicKey`] methods so
/// every operation is reduced modulo the right `n²`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ciphertext(pub(crate) BigUint);

impl Ciphertext {
    /// The raw group element. Exposed for serialization by the transport
    /// layer; do not perform arithmetic on it directly.
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Rebuilds a ciphertext from its raw representation (e.g. received over
    /// the network). Validity against a key is checked lazily by operations.
    pub fn from_biguint(value: BigUint) -> Self {
        Ciphertext(value)
    }
}

/// The public half of a Paillier keypair: `(n, g)` from §3.7 plus
/// precomputed Montgomery state for `n²`.
#[derive(Clone)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
    g: BigUint,
    /// `g == n + 1`, the standard choice that makes `g^m mod n²` a single
    /// multiplication (`(1 + n)^m = 1 + m·n mod n²`).
    g_is_n_plus_one: bool,
    /// `(n - 1) / 2`: largest magnitude representable in the signed encoding.
    half_n: BigUint,
    mont_nn: MontgomeryCtx,
    /// Montgomery state for the *message-space* modulus `n`, shared by
    /// batch ciphertext validation (one batch inversion mod `n` instead of
    /// one GCD per ciphertext).
    mont_n: MontgomeryCtx,
    /// Optional precomputed-randomizer source (see
    /// [`PublicKey::with_randomizer_pool`]): when attached, every
    /// [`PublicKey::encrypt`] — and with it re-randomization, signed
    /// encryption, and packed-word encryption — consumes a pooled `r^n`
    /// when one is buffered instead of exponentiating inline.
    pool: Option<Arc<RandomizerPool>>,
    /// Optional key-lifetime exponentiation tables (see
    /// [`PublicKey::with_exp_kernels`]); like the randomizer pool, these
    /// ride along with key clones and never change any ciphertext byte.
    kernels: Option<Arc<ExpKernels>>,
}

/// Key-lifetime exponentiation-kernel tables attached to a [`PublicKey`]
/// by [`PublicKey::with_exp_kernels`].
///
/// Today this holds the windowed fixed-base comb for the general-`g`
/// encryption path (`g ≠ n+1`, see [`PublicKey::with_generator`]); keys
/// with the standard generator already beat any table via the
/// `(1+n)^m = 1 + mn` shortcut and carry no tables.
pub struct ExpKernels {
    /// Comb table for `g^m mod n²` covering exponents up to `n`'s width.
    g_table: FixedBaseTable,
}

impl std::fmt::Debug for ExpKernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpKernels")
            .field("g_window", &self.g_table.window())
            .field("g_max_exp_bits", &self.g_table.max_exp_bits())
            .finish()
    }
}

/// The private half: `(λ, μ)` from §3.7, plus the factorization and CRT
/// precomputations for fast decryption.
#[derive(Clone)]
pub struct PrivateKey {
    public: PublicKey,
    lambda: BigUint,
    mu: BigUint,
    crt: CrtContext,
}

/// Precomputed state for Paillier decryption by Chinese remaindering.
#[derive(Clone)]
struct CrtContext {
    p: BigUint,
    q: BigUint,
    p_squared: BigUint,
    q_squared: BigUint,
    mont_pp: MontgomeryCtx,
    mont_qq: MontgomeryCtx,
    /// `L_p(g^{p-1} mod p²)^{-1} mod p`.
    hp: BigUint,
    /// `L_q(g^{q-1} mod q²)^{-1} mod q`.
    hq: BigUint,
    /// `p^{-1} mod q` for Garner recombination.
    p_inv_q: BigUint,
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublicKey")
            .field("bits", &self.bits())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret material.
        f.debug_struct("PrivateKey")
            .field("bits", &self.public.bits())
            .finish_non_exhaustive()
    }
}

/// A full keypair.
#[derive(Clone)]
pub struct Keypair {
    /// The shareable half.
    pub public: PublicKey,
    /// The secret half (embeds a copy of the public key).
    pub private: PrivateKey,
}

impl std::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keypair")
            .field("bits", &self.public.bits())
            .finish_non_exhaustive()
    }
}

impl Keypair {
    /// Generates a keypair with an `n` of exactly `bits` bits, following
    /// §3.7: draw `p, q` until `gcd(pq, (p-1)(q-1)) = 1`, set `n = pq`,
    /// `λ = lcm(p-1, q-1)`, `g = n + 1`, `μ = (L(g^λ mod n²))^{-1} mod n`.
    ///
    /// # Panics
    /// Panics if `bits < MIN_KEY_BITS` or `bits` is odd.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Keypair {
        assert!(
            bits >= MIN_KEY_BITS,
            "key size {bits} below minimum {MIN_KEY_BITS}"
        );
        assert!(bits.is_multiple_of(2), "key size must be even, got {bits}");
        loop {
            let (p, q) = prime::gen_prime_pair(rng, bits / 2);
            let n = &p * &q;
            debug_assert_eq!(n.bit_length(), bits);
            let one = BigUint::one();
            let p_minus_1 = &p - &one;
            let q_minus_1 = &q - &one;
            let phi = &p_minus_1 * &q_minus_1;
            // §3.7 requirement; holds automatically for same-size primes
            // except in astronomically rare cases, but check anyway.
            if !modular::gcd(&n, &phi).is_one() {
                continue;
            }
            let lambda = modular::lcm(&p_minus_1, &q_minus_1);
            if let Some(keypair) = Self::assemble(n, p, q, lambda) {
                return keypair;
            }
        }
    }

    fn assemble(n: BigUint, p: BigUint, q: BigUint, lambda: BigUint) -> Option<Keypair> {
        let n_squared = n.square();
        let g = &n + 1u64;
        let mont_nn = MontgomeryCtx::new(&n_squared).expect("n² is odd > 1");
        let mont_n = MontgomeryCtx::new(&n).expect("n is odd > 1");

        // μ = (L(g^λ mod n²))^{-1} mod n. For g = n+1 this equals λ^{-1},
        // but compute it generically so the math matches the paper line by
        // line and stays correct if a custom g is ever plugged in.
        let g_lambda = mont_nn.pow_mod(&g, &lambda);
        let ell = l_function(&g_lambda, &n)?;
        let mu = modular::mod_inverse(&ell, &n)?;

        let public = PublicKey {
            half_n: &(&n - &BigUint::one()) >> 1usize,
            g_is_n_plus_one: true,
            n_squared,
            g,
            n: n.clone(),
            mont_nn,
            mont_n,
            pool: None,
            kernels: None,
        };
        let crt = CrtContext::new(&public, &p, &q)?;
        Some(Keypair {
            private: PrivateKey {
                public: public.clone(),
                lambda,
                mu,
                crt,
            },
            public,
        })
    }
}

/// `L(u) = (u - 1) / n`; defined only when `u ≡ 1 (mod n)`.
fn l_function(u: &BigUint, n: &BigUint) -> Option<BigUint> {
    let numerator = u.checked_sub(&BigUint::one())?;
    let (quotient, remainder) = numerator.div_rem(n);
    remainder.is_zero().then_some(quotient)
}

impl CrtContext {
    fn new(public: &PublicKey, p: &BigUint, q: &BigUint) -> Option<CrtContext> {
        let one = BigUint::one();
        let p_squared = p.square();
        let q_squared = q.square();
        let mont_pp = MontgomeryCtx::new(&p_squared)?;
        let mont_qq = MontgomeryCtx::new(&q_squared)?;
        let g = &public.g;

        // hp = L_p(g^{p-1} mod p²)^{-1} mod p, with L_p(u) = (u-1)/p.
        let gp = mont_pp.pow_mod(&(g % &p_squared), &(p - &one));
        let lp = l_function_over(&gp, p)?;
        let hp = modular::mod_inverse(&lp, p)?;
        let gq = mont_qq.pow_mod(&(g % &q_squared), &(q - &one));
        let lq = l_function_over(&gq, q)?;
        let hq = modular::mod_inverse(&lq, q)?;
        let p_inv_q = modular::mod_inverse(p, q)?;

        Some(CrtContext {
            p: p.clone(),
            q: q.clone(),
            p_squared,
            q_squared,
            mont_pp,
            mont_qq,
            hp,
            hq,
            p_inv_q,
        })
    }
}

/// `L` over an arbitrary modulus `m` (used with `m = p` and `m = q`).
fn l_function_over(u: &BigUint, m: &BigUint) -> Option<BigUint> {
    let numerator = u.checked_sub(&BigUint::one())?;
    let (quotient, remainder) = numerator.div_rem(m);
    remainder.is_zero().then_some(quotient)
}

impl PublicKey {
    /// Reconstructs a public key from its modulus `n` (with the standard
    /// generator `g = n + 1`). This is how a party materializes the peer's
    /// key received over the wire.
    pub fn from_modulus(n: BigUint) -> Result<PublicKey, PaillierError> {
        if n.bit_length() < MIN_KEY_BITS || n.is_even() {
            return Err(PaillierError::KeyTooSmall {
                requested: n.bit_length(),
                minimum: MIN_KEY_BITS,
            });
        }
        let n_squared = n.square();
        let mont_nn = MontgomeryCtx::new(&n_squared).expect("n² odd > 1");
        let mont_n = MontgomeryCtx::new(&n).expect("n odd > 1");
        Ok(PublicKey {
            half_n: &(&n - &BigUint::one()) >> 1usize,
            g: &n + 1u64,
            g_is_n_plus_one: true,
            n,
            n_squared,
            mont_nn,
            mont_n,
            pool: None,
            kernels: None,
        })
    }

    /// Reconstructs a public key from a modulus `n` and an explicit
    /// generator `g ∈ Z*_{n²}` (Paillier §3.7 allows any `g` whose order is
    /// a nonzero multiple of `n`; the standard `g = n+1` is merely the
    /// cheapest choice). Keys built this way support encryption and all
    /// homomorphic operations; decryption requires the matching private key,
    /// which always embeds its own generator.
    ///
    /// This is the one path where `g^m mod n²` is a full modular
    /// exponentiation rather than the `(1+n)^m = 1 + mn` shortcut, so it is
    /// also the path that benefits from [`PublicKey::with_exp_kernels`].
    ///
    /// # Errors
    /// [`PaillierError::KeyTooSmall`] for a bad modulus, and
    /// [`PaillierError::InvalidGenerator`] when `g` is zero, not below `n²`,
    /// or not invertible (`gcd(g, n) ≠ 1`).
    pub fn with_generator(n: BigUint, g: BigUint) -> Result<PublicKey, PaillierError> {
        let mut public = PublicKey::from_modulus(n)?;
        if g.is_zero() || g >= public.n_squared {
            return Err(PaillierError::InvalidGenerator);
        }
        if !modular::gcd(&(&g % &public.n), &public.n).is_one() {
            return Err(PaillierError::InvalidGenerator);
        }
        public.g_is_n_plus_one = g == public.g;
        public.g = g;
        Ok(public)
    }

    /// Returns a copy of this key carrying precomputed exponentiation
    /// tables (currently: a windowed fixed-base comb for `g^m mod n²`).
    /// Purely a speed lever — every ciphertext byte is identical with and
    /// without kernels, so the tables are protocol-invisible.
    ///
    /// For keys with the standard generator `g = n+1` the `(1+n)^m`
    /// shortcut already beats any table and this is a no-op.
    pub fn with_exp_kernels(mut self) -> PublicKey {
        if !self.g_is_n_plus_one && self.kernels.is_none() {
            let g_table = FixedBaseTable::new(&self.mont_nn, &self.g, 4, self.n.bit_length());
            self.kernels = Some(Arc::new(ExpKernels { g_table }));
        }
        self
    }

    /// Whether exponentiation-kernel tables are attached (always `false`
    /// for standard-generator keys, where the shortcut wins).
    pub fn has_exp_kernels(&self) -> bool {
        self.kernels.is_some()
    }

    /// Returns a copy of this key that draws encryption randomizers from
    /// `pool` whenever the pool has one buffered, falling back to inline
    /// nonce exponentiation on a dry pool. This routes **every** hot-path
    /// encryption under the key — protocol-layer `encrypt`/`encrypt_signed`
    /// calls, [`PublicKey::rerandomize`], packed-word nonces — through the
    /// precompute path without any signature changes at the call sites.
    ///
    /// Determinism note: a pool hit consumes a randomizer produced by the
    /// pool's own RNG instead of drawing a nonce from the caller's stream,
    /// so ciphertext *bytes* are no longer a pure function of the session
    /// seed (protocol outputs, leakage, and ledgers are unaffected —
    /// nonces never influence outcomes). Attach pools for throughput;
    /// leave them off where transcript reproducibility is pinned.
    ///
    /// # Errors
    /// [`PaillierError::RandomizerKeyMismatch`] if the pool was built for a
    /// different modulus.
    pub fn with_randomizer_pool(
        mut self,
        pool: Arc<RandomizerPool>,
    ) -> Result<PublicKey, PaillierError> {
        if pool.public_key().n() != self.n() {
            return Err(PaillierError::RandomizerKeyMismatch);
        }
        self.pool = Some(pool);
        Ok(self)
    }

    /// Drops any attached randomizer pool (used by the pool itself to avoid
    /// a reference cycle when it stores its key).
    pub(crate) fn without_pool(mut self) -> PublicKey {
        self.pool = None;
        self
    }

    /// The modulus `n` (the message space is `Z_n`).
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// `n²`, the ciphertext-space modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// The generator `g`.
    pub fn g(&self) -> &BigUint {
        &self.g
    }

    /// Key size in bits (bit length of `n`).
    pub fn bits(&self) -> usize {
        self.n.bit_length()
    }

    /// Largest magnitude encodable by the signed encoding: `(n-1)/2`.
    pub fn half_n(&self) -> &BigUint {
        &self.half_n
    }

    /// Samples a uniform nonce from `Z*_n`.
    pub fn sample_nonce<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let r = random::gen_biguint_below(rng, &self.n);
            if !r.is_zero() && modular::gcd(&r, &self.n).is_one() {
                return r;
            }
        }
    }

    /// Encrypts `m ∈ Z_n` with a fresh nonce: `c = g^m · r^n mod n²`. When
    /// a [`RandomizerPool`] is attached (see
    /// [`PublicKey::with_randomizer_pool`]) and has a randomizer buffered,
    /// the `r^n` exponentiation is served from the pool and the encryption
    /// collapses to two modular multiplications.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        if let Some(pool) = &self.pool {
            if let Some(randomizer) = pool.take() {
                return self.encrypt_with_randomizer(m, randomizer);
            }
        }
        let r = self.sample_nonce(rng);
        self.encrypt_with_nonce(m, &r)
    }

    /// Encrypts a batch of plaintexts, amortizing the `r^n` exponentiations
    /// through one shared-exponent kernel pass ([`MontgomeryCtx::pow_many`]).
    ///
    /// Byte-identical to calling [`PublicKey::encrypt`] once per element
    /// with the same `rng`: pool randomizers are consumed in the same order,
    /// nonces are rejection-sampled from the identical stream positions, and
    /// `pow_many` shares only the exponent recoding — every `r^n` value
    /// matches the one-at-a-time ladder bit for bit.
    pub fn encrypt_many<R: Rng + ?Sized>(
        &self,
        ms: &[BigUint],
        rng: &mut R,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        let mut out: Vec<Option<Ciphertext>> = vec![None; ms.len()];
        // (index, message, freshly sampled nonce) for elements the pool
        // could not serve; their r^n values are batched below.
        let mut deferred: Vec<(usize, &BigUint, BigUint)> = Vec::with_capacity(ms.len());
        for (i, m) in ms.iter().enumerate() {
            if let Some(pool) = &self.pool {
                if let Some(randomizer) = pool.take() {
                    out[i] = Some(self.encrypt_with_randomizer(m, randomizer)?);
                    continue;
                }
            }
            let r = self.sample_nonce(rng);
            if m >= &self.n {
                return Err(PaillierError::MessageOutOfRange);
            }
            deferred.push((i, m, r));
        }
        if !deferred.is_empty() {
            let nonces: Vec<BigUint> = deferred.iter().map(|(_, _, r)| r.clone()).collect();
            let powers = self.mont_nn.pow_many(&nonces, &self.n);
            for ((i, m, _), r_to_n) in deferred.into_iter().zip(powers) {
                let g_to_m = self.g_pow(m);
                out[i] = Some(Ciphertext(self.mul_mod_nn(&g_to_m, &r_to_n)));
            }
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("every slot filled"))
            .collect())
    }

    /// Encrypts with a caller-chosen nonce (deterministic; used by tests and
    /// by re-randomization).
    pub fn encrypt_with_nonce(
        &self,
        m: &BigUint,
        nonce: &BigUint,
    ) -> Result<Ciphertext, PaillierError> {
        if m >= &self.n {
            return Err(PaillierError::MessageOutOfRange);
        }
        let g_to_m = self.g_pow(m);
        let r_to_n = self.mont_nn.pow_mod(nonce, &self.n);
        Ok(Ciphertext(self.mul_mod_nn(&g_to_m, &r_to_n)))
    }

    /// `g^m mod n²`, using the `g = n+1` shortcut when applicable, then
    /// the fixed-base comb when kernels are attached, then a plain windowed
    /// ladder. All three branches return the same canonical residue.
    pub(crate) fn g_pow(&self, m: &BigUint) -> BigUint {
        if self.g_is_n_plus_one {
            // (1+n)^m = 1 + m·n (mod n²)
            let mn = &(m * &self.n) % &self.n_squared;
            (&mn + 1u64).div_rem(&self.n_squared).1
        } else if let Some(kernels) = &self.kernels {
            kernels.g_table.pow(m)
        } else {
            self.mont_nn.pow_mod(&self.g, m)
        }
    }

    pub(crate) fn mul_mod_nn(&self, a: &BigUint, b: &BigUint) -> BigUint {
        &(a * b) % &self.n_squared
    }

    pub(crate) fn pow_mod_nn(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.mont_nn.pow_mod(base, exp)
    }

    /// The Montgomery context for `n²`, shared with the packing and
    /// homomorphic modules so kernel code accumulates products in one
    /// domain instead of rebuilding per-call state.
    pub(crate) fn mont_nn(&self) -> &MontgomeryCtx {
        &self.mont_nn
    }

    /// Checks that a ciphertext received from outside is an element of
    /// `Z*_{n²}` under this key.
    pub fn validate(&self, c: &Ciphertext) -> Result<(), PaillierError> {
        if c.0 >= self.n_squared || c.0.is_zero() {
            return Err(PaillierError::InvalidCiphertext);
        }
        if !modular::gcd(&c.0, &self.n).is_one() {
            return Err(PaillierError::InvalidCiphertext);
        }
        Ok(())
    }

    /// Validates a batch of ciphertexts with one Montgomery batch inversion
    /// modulo `n` in place of one binary GCD per ciphertext (a residue is
    /// invertible mod `n` exactly when `gcd(c, n) = 1`, which is what
    /// [`PublicKey::validate`] tests).
    ///
    /// Accepts exactly the batches where every individual
    /// [`PublicKey::validate`] call would succeed. On a failing batch it
    /// falls back to per-element validation *in order*, so the returned
    /// error is byte-identical to what a sequential validation loop would
    /// have produced.
    pub fn validate_many(&self, cts: &[Ciphertext]) -> Result<(), PaillierError> {
        let in_range = cts.iter().all(|c| c.0 < self.n_squared && !c.0.is_zero());
        if in_range {
            let residues: Vec<BigUint> = cts.iter().map(|c| &c.0 % &self.n).collect();
            if modular::batch_mod_inverse_with(&self.mont_n, &residues).is_some() {
                return Ok(());
            }
        }
        for c in cts {
            self.validate(c)?;
        }
        Ok(())
    }
}

impl PrivateKey {
    /// The associated public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Standard decryption: `m = L(c^λ mod n²) · μ mod n`.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<BigUint, PaillierError> {
        self.public.validate(c)?;
        let u = self.public.pow_mod_nn(&c.0, &self.lambda);
        let ell = l_function(&u, &self.public.n).ok_or(PaillierError::InvalidCiphertext)?;
        Ok(modular::mod_mul(&ell, &self.mu, &self.public.n))
    }

    /// CRT decryption (Paillier §7 "decryption using Chinese remaindering"):
    /// roughly 4× faster than [`PrivateKey::decrypt`] at equal key size.
    pub fn decrypt_crt(&self, c: &Ciphertext) -> Result<BigUint, PaillierError> {
        self.public.validate(c)?;
        self.decrypt_crt_prevalidated(c)
    }

    /// CRT decryption for a ciphertext already checked by
    /// [`PublicKey::validate`] or [`PublicKey::validate_many`] — skips the
    /// per-ciphertext GCD so batch callers pay one batch inversion up front
    /// instead of `k` GCDs. The math still rejects malformed inputs (the
    /// `L` functions fail), but the error *position* within a batch is only
    /// guaranteed to match sequential decryption when validation ran first.
    pub fn decrypt_crt_prevalidated(&self, c: &Ciphertext) -> Result<BigUint, PaillierError> {
        let crt = &self.crt;
        let one = BigUint::one();

        let cp = &c.0 % &crt.p_squared;
        let up = crt.mont_pp.pow_mod(&cp, &(&crt.p - &one));
        let lp = l_function_over(&up, &crt.p).ok_or(PaillierError::InvalidCiphertext)?;
        let mp = modular::mod_mul(&lp, &crt.hp, &crt.p);

        let cq = &c.0 % &crt.q_squared;
        let uq = crt.mont_qq.pow_mod(&cq, &(&crt.q - &one));
        let lq = l_function_over(&uq, &crt.q).ok_or(PaillierError::InvalidCiphertext)?;
        let mq = modular::mod_mul(&lq, &crt.hq, &crt.q);

        // Garner: m = mp + p·((mq - mp)·p^{-1} mod q)
        let diff = mq.sub_mod(&(&mp % &crt.q), &crt.q);
        let t = modular::mod_mul(&diff, &crt.p_inv_q, &crt.q);
        Ok(&mp + &(&crt.p * &t))
    }

    /// The secret exponent `λ`.
    pub fn lambda(&self) -> &BigUint {
        &self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{rng, shared_keypair};

    #[test]
    fn generated_key_has_requested_size() {
        let mut r = rng(1);
        for bits in [16usize, 32, 64, 128] {
            let kp = Keypair::generate(bits, &mut r);
            assert_eq!(kp.public.bits(), bits, "{bits}");
        }
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn tiny_key_rejected() {
        let mut r = rng(2);
        let _ = Keypair::generate(8, &mut r);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_key_size_rejected() {
        let mut r = rng(2);
        let _ = Keypair::generate(65, &mut r);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = shared_keypair();
        let mut r = rng(3);
        for m in [0u64, 1, 42, 0xFFFF_FFFF] {
            let m = BigUint::from_u64(m);
            let c = kp.public.encrypt(&m, &mut r).unwrap();
            assert_eq!(kp.private.decrypt(&c).unwrap(), m);
        }
    }

    #[test]
    fn decrypt_crt_matches_standard() {
        let kp = shared_keypair();
        let mut r = rng(4);
        for _ in 0..10 {
            let m = random::gen_biguint_below(&mut r, kp.public.n());
            let c = kp.public.encrypt(&m, &mut r).unwrap();
            assert_eq!(kp.private.decrypt(&c).unwrap(), m);
            assert_eq!(kp.private.decrypt_crt(&c).unwrap(), m);
        }
    }

    #[test]
    fn largest_message_roundtrips() {
        let kp = shared_keypair();
        let mut r = rng(5);
        let m = &kp.public.n - &BigUint::one();
        let c = kp.public.encrypt(&m, &mut r).unwrap();
        assert_eq!(kp.private.decrypt_crt(&c).unwrap(), m);
    }

    #[test]
    fn message_out_of_range_rejected() {
        let kp = shared_keypair();
        let mut r = rng(6);
        assert_eq!(
            kp.public.encrypt(&kp.public.n.clone(), &mut r).unwrap_err(),
            PaillierError::MessageOutOfRange
        );
    }

    #[test]
    fn encryption_is_probabilistic() {
        let kp = shared_keypair();
        let mut r = rng(7);
        let m = BigUint::from_u64(99);
        let c1 = kp.public.encrypt(&m, &mut r).unwrap();
        let c2 = kp.public.encrypt(&m, &mut r).unwrap();
        assert_ne!(c1, c2, "fresh nonces must give distinct ciphertexts");
        assert_eq!(kp.private.decrypt(&c1).unwrap(), m);
        assert_eq!(kp.private.decrypt(&c2).unwrap(), m);
    }

    #[test]
    fn deterministic_with_fixed_nonce() {
        let kp = shared_keypair();
        let m = BigUint::from_u64(5);
        let nonce = BigUint::from_u64(12345);
        let c1 = kp.public.encrypt_with_nonce(&m, &nonce).unwrap();
        let c2 = kp.public.encrypt_with_nonce(&m, &nonce).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn invalid_ciphertexts_rejected() {
        let kp = shared_keypair();
        let zero = Ciphertext::from_biguint(BigUint::zero());
        assert_eq!(
            kp.private.decrypt(&zero).unwrap_err(),
            PaillierError::InvalidCiphertext
        );
        let too_big = Ciphertext::from_biguint(kp.public.n_squared().clone());
        assert_eq!(
            kp.private.decrypt(&too_big).unwrap_err(),
            PaillierError::InvalidCiphertext
        );
    }

    #[test]
    fn ciphertext_raw_roundtrip() {
        let kp = shared_keypair();
        let mut r = rng(8);
        let m = BigUint::from_u64(1234);
        let c = kp.public.encrypt(&m, &mut r).unwrap();
        let wire = c.as_biguint().clone();
        let back = Ciphertext::from_biguint(wire);
        assert_eq!(kp.private.decrypt(&back).unwrap(), m);
    }

    #[test]
    fn from_modulus_matches_generated_public_key() {
        let kp = shared_keypair();
        let mut r = rng(40);
        let rebuilt = PublicKey::from_modulus(kp.public.n().clone()).unwrap();
        let m = BigUint::from_u64(777);
        let c = rebuilt.encrypt(&m, &mut r).unwrap();
        assert_eq!(kp.private.decrypt(&c).unwrap(), m);
        assert_eq!(rebuilt.n_squared(), kp.public.n_squared());
        assert_eq!(rebuilt.g(), kp.public.g());
    }

    #[test]
    fn from_modulus_rejects_bad_n() {
        assert!(PublicKey::from_modulus(BigUint::from_u64(100)).is_err()); // even
        assert!(PublicKey::from_modulus(BigUint::from_u64(3)).is_err()); // tiny
    }

    #[test]
    fn distinct_keys_decrypt_differently() {
        let mut r = rng(9);
        let kp1 = Keypair::generate(64, &mut r);
        let kp2 = Keypair::generate(64, &mut r);
        assert_ne!(kp1.public.n(), kp2.public.n());
    }

    /// A general-`g` key encrypting under `g = (n+1)^2 · r₀^n` (a valid
    /// generator: its order is a multiple of `n`) must decrypt under the
    /// standard private key to `2m` — because `g^m = (n+1)^{2m} · (r₀^m)^n`
    /// is a standard-generator encryption of `2m mod n`.
    #[test]
    fn with_generator_encrypts_decryptably() {
        let kp = shared_keypair();
        let mut r = rng(41);
        let n = kp.public.n().clone();
        let r0 = kp.public.sample_nonce(&mut r);
        let g = {
            let np1_sq = kp.public.mul_mod_nn(kp.public.g(), kp.public.g());
            let r0_n = kp.public.pow_mod_nn(&r0, &n);
            kp.public.mul_mod_nn(&np1_sq, &r0_n)
        };
        let custom = PublicKey::with_generator(n.clone(), g).unwrap();
        assert!(!custom.g_is_n_plus_one);

        let m = BigUint::from_u64(12345);
        let c = custom.encrypt(&m, &mut r).unwrap();
        let two_m = &(&m * &BigUint::from_u64(2)) % &n;
        assert_eq!(kp.private.decrypt_crt(&c).unwrap(), two_m);
    }

    #[test]
    fn with_generator_rejects_bad_g() {
        let kp = shared_keypair();
        let n = kp.public.n().clone();
        assert_eq!(
            PublicKey::with_generator(n.clone(), BigUint::zero()).unwrap_err(),
            PaillierError::InvalidGenerator
        );
        assert_eq!(
            PublicKey::with_generator(n.clone(), kp.public.n_squared().clone()).unwrap_err(),
            PaillierError::InvalidGenerator
        );
        // g sharing a factor with n: use n itself (gcd(n mod n, n) = n).
        assert_eq!(
            PublicKey::with_generator(n.clone(), n).unwrap_err(),
            PaillierError::InvalidGenerator
        );
    }

    #[test]
    fn exp_kernels_are_byte_invisible() {
        let kp = shared_keypair();
        let mut r = rng(42);
        let n = kp.public.n().clone();
        let r0 = kp.public.sample_nonce(&mut r);
        let g = {
            let np1_sq = kp.public.mul_mod_nn(kp.public.g(), kp.public.g());
            let r0_n = kp.public.pow_mod_nn(&r0, &n);
            kp.public.mul_mod_nn(&np1_sq, &r0_n)
        };
        let plain = PublicKey::with_generator(n.clone(), g).unwrap();
        let fast = plain.clone().with_exp_kernels();
        assert!(fast.has_exp_kernels());

        for seed in 0..8u64 {
            let m = random::gen_biguint_below(&mut rng(100 + seed), &n);
            let nonce = plain.sample_nonce(&mut rng(200 + seed));
            assert_eq!(
                plain.encrypt_with_nonce(&m, &nonce).unwrap(),
                fast.encrypt_with_nonce(&m, &nonce).unwrap(),
                "kernels must not change ciphertext bytes"
            );
        }
    }

    #[test]
    fn encrypt_many_matches_sequential_encrypt() {
        let kp = shared_keypair();
        let n = kp.public.n().clone();
        let ms: Vec<BigUint> = (0..7u64)
            .map(|i| random::gen_biguint_below(&mut rng(300 + i), &n))
            .collect();
        let mut seq_rng = rng(77);
        let mut batch_rng = rng(77);
        let seq: Vec<Ciphertext> = ms
            .iter()
            .map(|m| kp.public.encrypt(m, &mut seq_rng).unwrap())
            .collect();
        let batch = kp.public.encrypt_many(&ms, &mut batch_rng).unwrap();
        assert_eq!(seq, batch, "batched r^n must not change ciphertext bytes");
        // Both paths must also leave the rng at the same stream position.
        assert_eq!(
            random::gen_biguint_bits(&mut seq_rng, 64),
            random::gen_biguint_bits(&mut batch_rng, 64)
        );
    }

    #[test]
    fn exp_kernels_noop_for_standard_generator() {
        let kp = shared_keypair();
        let fast = kp.public.clone().with_exp_kernels();
        assert!(!fast.has_exp_kernels(), "(1+n)^m shortcut already optimal");
    }

    #[test]
    fn validate_many_matches_sequential_validation() {
        let kp = shared_keypair();
        let mut r = rng(43);
        let good: Vec<Ciphertext> = (0..20)
            .map(|i| kp.public.encrypt(&BigUint::from_u64(i), &mut r).unwrap())
            .collect();
        assert!(kp.public.validate_many(&good).is_ok());
        assert!(kp.public.validate_many(&[]).is_ok());

        // Any bad element fails the batch with the same error a sequential
        // loop reports.
        for bad in [
            Ciphertext::from_biguint(BigUint::zero()),
            Ciphertext::from_biguint(kp.public.n_squared().clone()),
            Ciphertext::from_biguint(kp.public.n().clone()), // gcd(c, n) = n
        ] {
            let mut batch = good.clone();
            batch[7] = bad;
            assert_eq!(
                kp.public.validate_many(&batch).unwrap_err(),
                PaillierError::InvalidCiphertext
            );
        }
    }

    #[test]
    fn decrypt_crt_prevalidated_matches_decrypt_crt() {
        let kp = shared_keypair();
        let mut r = rng(44);
        for _ in 0..10 {
            let m = random::gen_biguint_below(&mut r, kp.public.n());
            let c = kp.public.encrypt(&m, &mut r).unwrap();
            assert_eq!(kp.private.decrypt_crt_prevalidated(&c).unwrap(), m);
        }
    }
}
