//! Plaintext-slot packing: many small values per Paillier ciphertext.
//!
//! A Paillier plaintext is an element of `Z_n` — at 1024-bit keys, over a
//! thousand bits of message space — yet the DBSCAN protocols ship values of
//! a few dozen bits per ciphertext: a DGK verdict slot is `c·r` for a tiny
//! `c`, a masked distance is `dist² + v`. This module packs `capacity`
//! such slots into one plaintext word
//!
//! ```text
//! word = Σ_i  m_i · 2^{i·slot_bits},      0 ≤ m_i < 2^{slot_bits}
//! ```
//!
//! so one encryption, one wire ciphertext, and one CRT decryption carry
//! `capacity` logical values — the homomorphic-batching optimization of
//! Samanthula et al.'s outsourced k-means, applied to the response legs of
//! this workspace's protocols.
//!
//! Three operations cover every use:
//!
//! * [`PublicKey::pack_encrypt`] — encrypt plaintext slots directly: one
//!   `g^word` shortcut and **one** nonce (pooled when the key carries a
//!   [`crate::RandomizerPool`]) per word, instead of one exponentiation
//!   pair per slot.
//! * [`PublicKey::pack_ciphertexts`] — build packed words from *per-slot
//!   ciphertext contributions*: slot `i` of a word is
//!   `E(m_i)^{2^{i·slot_bits}}`, so a responder holding one small
//!   ciphertext per slot (a masked DGK cell, a homomorphic dot product)
//!   multiplies shifted slots together, adds a plaintext slot vector (the
//!   masks/offsets), and re-randomizes the whole word with one fresh
//!   encryption.
//! * [`PrivateKey::unpack_decrypt`] / [`SlotLayout::split_word`] — one CRT
//!   decryption per word, then a pure bit-split back into slots.
//!
//! ## Why slots cannot overflow into neighbors
//!
//! Packing is only sound if every slot value stays strictly below
//! `2^{slot_bits}` *and* the whole word stays below `n`. The layout
//! guarantees the second from the first: `capacity` is chosen as
//! `⌊(n_bits − 1)/slot_bits⌋`, so even with every slot at its maximum the
//! word is `< 2^{capacity·slot_bits} ≤ 2^{n_bits−1} ≤ n`. The first is the
//! caller's carry-guard obligation, checked where the values are known
//! ([`PublicKey::pack_encrypt`] rejects oversized slots with
//! [`PaillierError::SlotOverflow`]) and established by construction where
//! they are encrypted (protocol layers derive `slot_bits` as
//! `value_bits + mask_bits + 1` from the *public* bounds on value and mask,
//! so `value + mask` has a guard bit of headroom). Since each slot receives
//! exactly one value — packing adds shifted slots, never slot-to-slot sums
//! — no carries can arise between slots.

use crate::error::PaillierError;
use crate::keys::{Ciphertext, PrivateKey, PublicKey};
use ppds_bigint::{multi_exp, random, BigUint};
use rand::Rng;

/// Version tag of the slot-packing discipline, stamped into benchmark
/// artifacts so a recorded run names the packed-word layout scheme it
/// used (`slots-v1` = shift-packed words, `⌊(n_bits−1)/slot_bits⌋`
/// capacity, offset-shifted signed slots).
pub const PACKING_DISCIPLINE: &str = "slots-v1";

/// How plaintext slots are laid out inside one Paillier word.
///
/// Both parties derive the layout from *public* data only (the key size and
/// the protocol's agreed value/mask bounds), so no extra negotiation is
/// needed: a layout is part of the protocol the handshake's `packing` knob
/// selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotLayout {
    slot_bits: usize,
    capacity: usize,
}

impl SlotLayout {
    /// Layout with `slot_bits`-wide slots under a `key_bits`-bit modulus:
    /// `capacity = ⌊(key_bits − 1)/slot_bits⌋`. Returns `None` when not
    /// even one slot fits (the packed protocol then degrades to the
    /// unpacked form — deterministically on both sides, since the inputs
    /// are public).
    pub fn new(key_bits: usize, slot_bits: usize) -> Option<SlotLayout> {
        if slot_bits == 0 {
            return None;
        }
        let capacity = key_bits.saturating_sub(1) / slot_bits;
        (capacity >= 1).then_some(SlotLayout {
            slot_bits,
            capacity,
        })
    }

    /// Layout sized for masked values: a slot holds `value + mask` where
    /// `value < 2^{value_bits}` and `mask < 2^{mask_bits}`, plus one carry
    /// guard bit so the sum can never reach the slot boundary.
    pub fn for_masked_values(
        key_bits: usize,
        value_bits: usize,
        mask_bits: usize,
    ) -> Option<SlotLayout> {
        SlotLayout::new(key_bits, value_bits + mask_bits + 1)
    }

    /// Bits per slot.
    pub fn slot_bits(&self) -> usize {
        self.slot_bits
    }

    /// Slots per word.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Words needed to carry `count` slots: `⌈count/capacity⌉`.
    pub fn words_for(&self, count: usize) -> usize {
        count.div_ceil(self.capacity)
    }

    /// Exclusive upper bound of one slot: `2^{slot_bits}`.
    pub fn slot_limit(&self) -> BigUint {
        &BigUint::one() << self.slot_bits
    }

    /// The plaintext multiplier that moves a value into slot `index` of a
    /// word: `2^{index·slot_bits}`.
    ///
    /// # Panics
    /// Panics if `index ≥ capacity`.
    pub fn slot_shift(&self, index: usize) -> BigUint {
        assert!(index < self.capacity, "slot {index} beyond capacity");
        &BigUint::one() << (index * self.slot_bits)
    }

    /// Assembles one plaintext word from at most `capacity` slot values.
    ///
    /// # Errors
    /// [`PaillierError::SlotOverflow`] if any value needs more than
    /// `slot_bits` bits.
    pub fn assemble_word(&self, slots: &[BigUint]) -> Result<BigUint, PaillierError> {
        assert!(
            slots.len() <= self.capacity,
            "word holds {} slots",
            self.capacity
        );
        let mut word = BigUint::zero();
        for (i, slot) in slots.iter().enumerate() {
            if slot.bit_length() > self.slot_bits {
                return Err(PaillierError::SlotOverflow {
                    slot_bits: self.slot_bits,
                    value_bits: slot.bit_length(),
                });
            }
            word = &word + &(slot << (i * self.slot_bits));
        }
        Ok(word)
    }

    /// Splits a decrypted word back into `count` slot values
    /// (`count ≤ capacity`; trailing unused slots are ignored).
    pub fn split_word(&self, word: &BigUint, count: usize) -> Vec<BigUint> {
        let limit = self.slot_limit();
        (0..count.min(self.capacity))
            .map(|i| &(word >> (i * self.slot_bits)) % &limit)
            .collect()
    }

    /// Samples a uniform nonzero slot mask in `[1, 2^{mask_bits})`. Used by
    /// the packed DGK reply, where a zero mask would erase the verdict.
    pub fn sample_slot_mask<R: Rng + ?Sized>(rng: &mut R, mask_bits: usize) -> BigUint {
        loop {
            let candidate = random::gen_biguint_bits(rng, mask_bits);
            if !candidate.is_zero() {
                return candidate;
            }
        }
    }
}

impl PublicKey {
    /// Encrypts `slots` as packed words: `⌈slots.len()/capacity⌉`
    /// ciphertexts, each costing one `g^word` shortcut multiplication and
    /// **one** nonce exponentiation (served from the key's
    /// [`crate::RandomizerPool`] when one is attached) — versus one full
    /// encryption per slot unpacked.
    ///
    /// # Errors
    /// [`PaillierError::SlotOverflow`] if a slot value exceeds the layout's
    /// slot width (the carry guard that keeps slots from bleeding into
    /// their neighbors).
    pub fn pack_encrypt<R: Rng + ?Sized>(
        &self,
        layout: &SlotLayout,
        slots: &[BigUint],
        rng: &mut R,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        slots
            .chunks(layout.capacity())
            .map(|chunk| {
                let word = layout.assemble_word(chunk)?;
                self.encrypt(&word, rng)
            })
            .collect()
    }

    /// Builds packed response words from per-slot ciphertext contributions
    /// plus a per-slot plaintext addend (a mask, an offset — zero when
    /// none): word `w` is
    /// `Π_i items[w·cap + i]^{2^{i·slot_bits}} · E(Σ_i plain[w·cap+i]·2^{i·slot_bits})`,
    /// i.e. slot `i` decrypts to `D(items[i]) + plain[i]`. The trailing
    /// `E(…)` carries the one fresh nonce that re-randomizes the whole word,
    /// so no per-item re-randomization is needed.
    ///
    /// The caller owns the carry-guard argument: every
    /// `D(items[i]) + plain[i]` must lie in `[0, 2^{slot_bits})` — the
    /// protocol layers guarantee this from public bounds (see the module
    /// docs). Values are *residues*: a signed item plus a large enough
    /// plaintext offset lands in the non-negative slot range exactly.
    ///
    /// # Errors
    /// [`PaillierError::SlotOverflow`] if a plaintext addend alone exceeds
    /// the slot width (ciphertext contributions cannot be checked without
    /// the secret key).
    pub fn pack_ciphertexts<R: Rng + ?Sized>(
        &self,
        layout: &SlotLayout,
        items: &[Ciphertext],
        plain: &[BigUint],
        rng: &mut R,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        assert_eq!(items.len(), plain.len(), "one plaintext addend per slot");
        items
            .chunks(layout.capacity())
            .zip(plain.chunks(layout.capacity()))
            .map(|(item_chunk, plain_chunk)| {
                let word_plain = layout.assemble_word(plain_chunk)?;
                // One fresh encryption per word: carries the plaintext
                // addends and re-randomizes every slot at once.
                let word = self.encrypt(&word_plain, rng)?;
                if item_chunk.is_empty() {
                    return Ok(word);
                }
                // Π items[i]^{2^{i·slot_bits}} in one interleaved
                // multi-exponentiation: the squaring chain is shared across
                // all slots instead of re-walked per slot. Slot shifts are
                // always < n (capacity·slot_bits ≤ key_bits−1), so the
                // `mod n` reduction in the per-slot `mul_plain` path was the
                // identity and the product is the same group element —
                // word bytes are unchanged.
                let shifts: Vec<BigUint> = (0..item_chunk.len())
                    .map(|i| layout.slot_shift(i))
                    .collect();
                let pairs: Vec<(&BigUint, &BigUint)> =
                    item_chunk.iter().map(|c| &c.0).zip(shifts.iter()).collect();
                let shifted = multi_exp(self.mont_nn(), &pairs);
                Ok(Ciphertext(self.mul_mod_nn(&word.0, &shifted)))
            })
            .collect()
    }
}

impl PrivateKey {
    /// Decrypts packed words and splits them into `count` slot values:
    /// **one** CRT decryption per word. The sequential convenience form —
    /// protocol layers decrypt the words on a worker pool and call
    /// [`SlotLayout::split_word`] per word instead.
    ///
    /// # Errors
    /// [`PaillierError::InvalidCiphertext`] on malformed words;
    /// [`PaillierError::SlotCountMismatch`] if `words` cannot carry
    /// exactly `count` slots.
    pub fn unpack_decrypt(
        &self,
        layout: &SlotLayout,
        words: &[Ciphertext],
        count: usize,
    ) -> Result<Vec<BigUint>, PaillierError> {
        if words.len() != layout.words_for(count) {
            return Err(PaillierError::SlotCountMismatch {
                words: words.len(),
                expected: layout.words_for(count),
            });
        }
        // One Montgomery batch inversion validates the whole word vector
        // (same accept/reject set and error as per-word validation), so the
        // decryption loop can skip the per-ciphertext GCD.
        self.public().validate_many(words)?;
        let mut out = Vec::with_capacity(count);
        for (w, word) in words.iter().enumerate() {
            let plain = self.decrypt_crt_prevalidated(word)?;
            let remaining = count - w * layout.capacity();
            out.extend(layout.split_word(&plain, remaining));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{rng, shared_keypair};

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn layout_capacity_math() {
        // 256-bit key, 23-bit slots: ⌊255/23⌋ = 11 slots per word.
        let layout = SlotLayout::new(256, 23).unwrap();
        assert_eq!(layout.capacity(), 11);
        assert_eq!(layout.words_for(11), 1);
        assert_eq!(layout.words_for(12), 2);
        assert_eq!(layout.words_for(0), 0);
        // 1024-bit key, 48-bit slots: the ~20x factor the protocols quote.
        assert_eq!(SlotLayout::new(1024, 48).unwrap().capacity(), 21);
        // Slot wider than the message space: no layout.
        assert!(SlotLayout::new(16, 23).is_none());
        assert!(SlotLayout::new(256, 0).is_none());
        // Masked-value sizing adds the carry guard bit.
        let masked = SlotLayout::for_masked_values(256, 6, 16).unwrap();
        assert_eq!(masked.slot_bits(), 23);
    }

    #[test]
    fn word_roundtrip_is_exact() {
        let layout = SlotLayout::new(256, 20).unwrap();
        let slots: Vec<BigUint> = [0u64, 1, (1 << 20) - 1, 12345, 0, 999_999]
            .iter()
            .map(|&v| b(v))
            .collect();
        let word = layout
            .assemble_word(&slots[..layout.capacity().min(slots.len())])
            .unwrap();
        let back = layout.split_word(&word, slots.len());
        assert_eq!(back, slots);
    }

    #[test]
    fn oversized_slot_rejected() {
        let layout = SlotLayout::new(256, 20).unwrap();
        let err = layout.assemble_word(&[b(1 << 20)]).unwrap_err();
        assert!(matches!(err, PaillierError::SlotOverflow { .. }));
    }

    #[test]
    fn pack_encrypt_unpack_roundtrip() {
        let kp = shared_keypair();
        let mut r = rng(90);
        let layout = SlotLayout::new(kp.public.bits(), 24).unwrap();
        let slots: Vec<BigUint> = (0..25u64).map(|i| b(i * 654_321 % (1 << 24))).collect();
        let words = kp.public.pack_encrypt(&layout, &slots, &mut r).unwrap();
        assert_eq!(words.len(), layout.words_for(slots.len()));
        let back = kp
            .private
            .unpack_decrypt(&layout, &words, slots.len())
            .unwrap();
        assert_eq!(back, slots);
    }

    #[test]
    fn pack_ciphertexts_adds_slotwise() {
        // Slot i of a packed word must decrypt to D(items[i]) + plain[i]:
        // the parity between packed-word arithmetic and scalar Paillier.
        let kp = shared_keypair();
        let mut r = rng(91);
        let layout = SlotLayout::new(kp.public.bits(), 30).unwrap();
        let values: Vec<u64> = (0..13).map(|i| i * 1000 + 7).collect();
        let addends: Vec<u64> = (0..13).map(|i| 500_000 - i * 3).collect();
        let items: Vec<Ciphertext> = values
            .iter()
            .map(|&v| kp.public.encrypt(&b(v), &mut r).unwrap())
            .collect();
        let plain: Vec<BigUint> = addends.iter().map(|&v| b(v)).collect();
        let words = kp
            .public
            .pack_ciphertexts(&layout, &items, &plain, &mut r)
            .unwrap();
        let back = kp
            .private
            .unpack_decrypt(&layout, &words, values.len())
            .unwrap();
        for i in 0..values.len() {
            assert_eq!(back[i], b(values[i] + addends[i]), "slot {i}");
        }
    }

    #[test]
    fn pack_ciphertexts_matches_naive_shift_fold() {
        // The multi-exp kernel must reproduce the per-slot shift-and-multiply
        // fold byte for byte. Drive both from identically-seeded RNGs so the
        // word encryptions use the same nonces.
        let kp = shared_keypair();
        let mut setup = rng(95);
        let layout = SlotLayout::new(kp.public.bits(), 30).unwrap();
        let items: Vec<Ciphertext> = (0..13u64)
            .map(|i| kp.public.encrypt(&b(i * 7 + 1), &mut setup).unwrap())
            .collect();
        let plain: Vec<BigUint> = (0..13u64).map(b).collect();

        let mut r_kernel = rng(96);
        let packed = kp
            .public
            .pack_ciphertexts(&layout, &items, &plain, &mut r_kernel)
            .unwrap();

        let mut r_naive = rng(96);
        let naive: Vec<Ciphertext> = items
            .chunks(layout.capacity())
            .zip(plain.chunks(layout.capacity()))
            .map(|(item_chunk, plain_chunk)| {
                let word_plain = layout.assemble_word(plain_chunk).unwrap();
                let mut word = kp.public.encrypt(&word_plain, &mut r_naive).unwrap();
                for (i, item) in item_chunk.iter().enumerate() {
                    word = kp
                        .public
                        .add(&word, &kp.public.mul_plain(item, &layout.slot_shift(i)));
                }
                word
            })
            .collect();
        assert_eq!(packed, naive, "kernel and fold must agree byte-for-byte");
    }

    #[test]
    fn packed_words_are_rerandomized() {
        let kp = shared_keypair();
        let mut r = rng(92);
        let layout = SlotLayout::new(kp.public.bits(), 30).unwrap();
        let item = kp.public.encrypt(&b(5), &mut r).unwrap();
        let w1 = kp
            .public
            .pack_ciphertexts(
                &layout,
                std::slice::from_ref(&item),
                &[BigUint::zero()],
                &mut r,
            )
            .unwrap();
        let w2 = kp
            .public
            .pack_ciphertexts(&layout, &[item], &[BigUint::zero()], &mut r)
            .unwrap();
        assert_ne!(w1, w2, "each word carries a fresh nonce");
    }

    #[test]
    fn word_count_mismatch_rejected() {
        let kp = shared_keypair();
        let mut r = rng(93);
        let layout = SlotLayout::new(kp.public.bits(), 24).unwrap();
        let words = kp
            .public
            .pack_encrypt(&layout, &[b(1), b(2)], &mut r)
            .unwrap();
        let err = kp
            .private
            .unpack_decrypt(&layout, &words, 2 + layout.capacity())
            .unwrap_err();
        assert!(matches!(err, PaillierError::SlotCountMismatch { .. }));
    }

    #[test]
    fn slot_masks_are_nonzero() {
        let mut r = rng(94);
        for _ in 0..200 {
            let m = SlotLayout::sample_slot_mask(&mut r, 8);
            assert!(!m.is_zero());
            assert!(m.bit_length() <= 8);
        }
    }
}
