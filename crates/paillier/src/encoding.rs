//! Signed plaintext encoding.
//!
//! The DBSCAN protocols work with values that can be negative: Bob's random
//! masks `v`, Alice's zero-sum blinding terms `r_i`, and dot-product
//! coefficients like `-2·A_k` in the enhanced protocol (§5). `Z_n` has no
//! native sign, so signed values `x ∈ [-(n-1)/2, (n-1)/2]` are mapped to
//! `x mod n` and decoded by interpreting residues above `(n-1)/2` as
//! negative — the usual balanced representation. Homomorphic sums remain
//! correct as long as every intermediate value stays inside the window,
//! which the protocol layer guarantees by construction (distances and masks
//! are tiny compared to a ≥ 2^16 modulus).

use crate::error::PaillierError;
use crate::keys::{Ciphertext, PrivateKey, PublicKey};
use ppds_bigint::{BigInt, BigUint, Sign};
use rand::Rng;

impl PublicKey {
    /// Encodes a signed value into `Z_n` (balanced representation).
    pub fn encode_signed(&self, value: &BigInt) -> Result<BigUint, PaillierError> {
        if value.magnitude() > self.half_n() {
            return Err(PaillierError::SignedMessageOutOfRange);
        }
        Ok(value.rem_euclid(self.n()))
    }

    /// Decodes a `Z_n` residue back to a signed value.
    pub fn decode_signed(&self, residue: &BigUint) -> BigInt {
        if residue > self.half_n() {
            BigInt::from_biguint(Sign::Negative, self.n() - residue)
        } else {
            BigInt::from_biguint(Sign::Positive, residue.clone())
        }
    }

    /// Encrypts a signed value.
    pub fn encrypt_signed<R: Rng + ?Sized>(
        &self,
        value: &BigInt,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        let encoded = self.encode_signed(value)?;
        self.encrypt(&encoded, rng)
    }

    /// Encrypts an `i64` (always in range for keys of ≥ 66 bits; checked).
    pub fn encrypt_i64<R: Rng + ?Sized>(
        &self,
        value: i64,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        self.encrypt_signed(&BigInt::from_i64(value), rng)
    }
}

impl PrivateKey {
    /// Decrypts to a signed value (balanced decoding).
    pub fn decrypt_signed(&self, c: &Ciphertext) -> Result<BigInt, PaillierError> {
        let residue = self.decrypt_crt(c)?;
        Ok(self.public().decode_signed(&residue))
    }

    /// Decrypts to an `i64`, or `None` if the signed value does not fit.
    pub fn decrypt_i64(&self, c: &Ciphertext) -> Result<Option<i64>, PaillierError> {
        Ok(self.decrypt_signed(c)?.to_i64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{rng, shared_keypair};

    #[test]
    fn signed_roundtrip() {
        let kp = shared_keypair();
        let mut r = rng(30);
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN + 1] {
            let c = kp.public.encrypt_i64(v, &mut r).unwrap();
            assert_eq!(kp.private.decrypt_i64(&c).unwrap(), Some(v), "{v}");
        }
    }

    #[test]
    fn signed_boundaries() {
        let kp = shared_keypair();
        let half = kp.public.half_n().clone();
        let max = BigInt::from(half.clone());
        let min = -&max;
        assert!(kp.public.encode_signed(&max).is_ok());
        assert!(kp.public.encode_signed(&min).is_ok());
        let over = &max + &BigInt::one();
        assert_eq!(
            kp.public.encode_signed(&over).unwrap_err(),
            PaillierError::SignedMessageOutOfRange
        );
        let under = -&over;
        assert_eq!(
            kp.public.encode_signed(&under).unwrap_err(),
            PaillierError::SignedMessageOutOfRange
        );
    }

    #[test]
    fn encode_decode_agree() {
        let kp = shared_keypair();
        for v in [-1000i64, -1, 0, 1, 999_999] {
            let enc = kp.public.encode_signed(&BigInt::from_i64(v)).unwrap();
            assert_eq!(kp.public.decode_signed(&enc), BigInt::from_i64(v));
        }
    }

    #[test]
    fn homomorphic_signed_arithmetic() {
        // (x·y + v) with negative v — the exact shape of Algorithm 2's output.
        let kp = shared_keypair();
        let mut r = rng(31);
        let x = 37i64;
        let y = -12i64;
        let v = -1000i64;
        let ex = kp.public.encrypt_i64(x, &mut r).unwrap();
        let xy = kp.public.mul_plain_signed(&ex, &BigInt::from_i64(y));
        let result = kp
            .public
            .add(&xy, &kp.public.encrypt_i64(v, &mut r).unwrap());
        assert_eq!(kp.private.decrypt_i64(&result).unwrap(), Some(x * y + v));
    }

    #[test]
    fn signed_sum_cancellation() {
        // Sum of zero-mean masks decodes to exactly the unmasked value — the
        // algebra behind Alice's r_1 + ... + r_m = 0 trick in protocol HDP.
        let kp = shared_keypair();
        let mut r = rng(32);
        let masks = [5i64, -3, 13, -15]; // sums to 0
        let payload = 421i64;
        let mut acc = kp.public.encrypt_i64(payload, &mut r).unwrap();
        for &m in &masks {
            let c = kp.public.encrypt_i64(m, &mut r).unwrap();
            acc = kp.public.add(&acc, &c);
        }
        assert_eq!(kp.private.decrypt_i64(&acc).unwrap(), Some(payload));
    }
}
