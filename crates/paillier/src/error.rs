//! Error type for Paillier operations whose failure is data-dependent.

use std::fmt;

/// Errors surfaced by fallible Paillier operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaillierError {
    /// Plaintext is outside the message space `Z_n`.
    MessageOutOfRange,
    /// Signed plaintext is outside `[-(n-1)/2, (n-1)/2]`.
    SignedMessageOutOfRange,
    /// Ciphertext value is outside `Z_{n²}` or shares a factor with `n`.
    InvalidCiphertext,
    /// Requested key size is below [`crate::MIN_KEY_BITS`].
    KeyTooSmall {
        /// Bits asked for (or received over the wire).
        requested: usize,
        /// The enforced floor, [`crate::MIN_KEY_BITS`].
        minimum: usize,
    },
    /// A precomputed randomizer was offered to a key other than the one it
    /// was computed under (the ciphertext would silently decrypt to
    /// garbage).
    RandomizerKeyMismatch,
    /// A custom generator `g` is not usable: zero, not below `n²`, or not
    /// invertible modulo `n`.
    InvalidGenerator,
    /// A packed-slot value needs more bits than the slot layout provides
    /// (it would bleed into the neighboring slot).
    SlotOverflow {
        /// The layout's slot width.
        slot_bits: usize,
        /// Bits the offending value actually needs.
        value_bits: usize,
    },
    /// A packed word vector cannot carry the expected number of slots.
    SlotCountMismatch {
        /// Words received.
        words: usize,
        /// Words the layout requires for the slot count.
        expected: usize,
    },
}

impl fmt::Display for PaillierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaillierError::MessageOutOfRange => {
                write!(f, "plaintext is not in the message space Z_n")
            }
            PaillierError::SignedMessageOutOfRange => {
                write!(f, "signed plaintext is outside [-(n-1)/2, (n-1)/2]")
            }
            PaillierError::InvalidCiphertext => {
                write!(f, "ciphertext is not a valid element of Z*_{{n²}}")
            }
            PaillierError::KeyTooSmall { requested, minimum } => {
                write!(
                    f,
                    "key size {requested} bits is below the minimum {minimum}"
                )
            }
            PaillierError::RandomizerKeyMismatch => {
                write!(f, "randomizer was precomputed under a different key")
            }
            PaillierError::InvalidGenerator => {
                write!(f, "generator is not an invertible element of Z*_{{n²}}")
            }
            PaillierError::SlotOverflow {
                slot_bits,
                value_bits,
            } => {
                write!(
                    f,
                    "packed value needs {value_bits} bits but slots are {slot_bits} bits wide"
                )
            }
            PaillierError::SlotCountMismatch { words, expected } => {
                write!(
                    f,
                    "packed response has {words} words but the layout requires {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PaillierError {}
