//! Randomizer precomputation: moving Paillier's modular exponentiation off
//! the encryption hot path.
//!
//! A Paillier encryption `c = g^m · r^n mod n²` spends almost all of its
//! time computing `r^n mod n²`; with the standard `g = n + 1` the `g^m`
//! part is a single multiplication. The factor `r^n` is independent of the
//! message, so it can be computed *before* the message exists — by idle
//! cores, between requests, or concurrently with protocol I/O. This module
//! provides:
//!
//! * [`Randomizer`] — one precomputed `r^n mod n²`, bound to a key and
//!   consumed by exactly one encryption,
//! * [`PublicKey::precompute_randomizer`] / `encrypt_with_randomizer` — the
//!   split encryption API,
//! * [`RandomizerPool`] — a thread-safe, bounded buffer of randomizers with
//!   optional background filler threads, shared by any number of concurrent
//!   protocol sessions encrypting under the same key.
//!
//! ## Security invariants
//!
//! Semantic security of Paillier requires a *fresh, secret, uniform* nonce
//! per encryption. The pool preserves exactly that:
//!
//! * each [`Randomizer`] is handed out at most once ([`RandomizerPool::take`]
//!   pops; nothing is ever cloned back in), and `Randomizer` deliberately
//!   implements neither `Clone` nor `Copy`;
//! * the nonce `r` itself is dropped right after `r^n` is computed — the
//!   pool stores only the group element, which reveals nothing about `r`
//!   without breaking the n-th residuosity assumption;
//! * a drained pool falls back to computing inline rather than reusing
//!   anything ([`RandomizerPool::take_or_compute`]), so throughput
//!   degradation can never become a correctness or security event.

use crate::error::PaillierError;
use crate::keys::{Ciphertext, PublicKey};
use ppds_bigint::BigUint;
use ppds_observe::Counter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A precomputed `r^n mod n²` for one specific public key.
///
/// Intentionally neither `Clone` nor `Copy`: one randomizer must blind at
/// most one ciphertext. The modulus it was computed under travels with it,
/// so offering it to a different key is an error rather than a silently
/// undecryptable ciphertext.
#[derive(Debug)]
pub struct Randomizer {
    pub(crate) r_to_n: BigUint,
    /// Modulus of the key this randomizer belongs to.
    pub(crate) n: BigUint,
}

impl Randomizer {
    /// The raw group element (for tests and serialization experiments).
    pub fn into_biguint(self) -> BigUint {
        self.r_to_n
    }
}

impl PublicKey {
    /// Computes the expensive, message-independent half of an encryption:
    /// samples a fresh nonce `r ∈ Z*_n` and returns `r^n mod n²`.
    pub fn precompute_randomizer<R: Rng + ?Sized>(&self, rng: &mut R) -> Randomizer {
        let r = self.sample_nonce(rng);
        Randomizer {
            r_to_n: self.pow_mod_nn(&r, self.n()),
            n: self.n().clone(),
        }
    }

    /// Batch form of [`PublicKey::precompute_randomizer`]: samples `count`
    /// fresh nonces, then raises them all to the `n`-th power over the
    /// key's one Montgomery context with a single shared decomposition of
    /// the (fixed) exponent `n`. Each returned randomizer is exactly what
    /// the one-at-a-time path computes for the same nonce; only the
    /// per-call setup is amortized.
    pub fn precompute_randomizers<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
    ) -> Vec<Randomizer> {
        let nonces: Vec<BigUint> = (0..count).map(|_| self.sample_nonce(rng)).collect();
        self.mont_nn()
            .pow_many(&nonces, self.n())
            .into_iter()
            .map(|r_to_n| Randomizer {
                r_to_n,
                n: self.n().clone(),
            })
            .collect()
    }

    /// Encrypts `m` using a precomputed randomizer: `c = g^m · (r^n) mod n²`.
    ///
    /// With `g = n + 1` this is two modular multiplications — no
    /// exponentiation. The randomizer is consumed.
    ///
    /// # Errors
    /// [`PaillierError::RandomizerKeyMismatch`] if the randomizer was
    /// precomputed under a different key;
    /// [`PaillierError::MessageOutOfRange`] if `m ≥ n`.
    pub fn encrypt_with_randomizer(
        &self,
        m: &BigUint,
        randomizer: Randomizer,
    ) -> Result<Ciphertext, PaillierError> {
        if &randomizer.n != self.n() {
            return Err(PaillierError::RandomizerKeyMismatch);
        }
        if m >= self.n() {
            return Err(PaillierError::MessageOutOfRange);
        }
        let g_to_m = self.g_pow(m);
        Ok(Ciphertext(self.mul_mod_nn(&g_to_m, &randomizer.r_to_n)))
    }
}

/// Counters describing a pool's lifetime behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Randomizers produced (by fillers, `prefill`, or inline fallback).
    pub produced: u64,
    /// `take*` calls served from the buffer.
    pub hits: u64,
    /// `take_or_compute` calls that found the buffer empty and computed
    /// inline.
    pub misses: u64,
}

/// A bounded, thread-safe buffer of precomputed randomizers for one key,
/// shared across concurrent protocol sessions.
///
/// Typical use: wrap in an [`Arc`], call [`RandomizerPool::spawn_fillers`]
/// once, then hand clones of the `Arc` to every session encrypting under
/// this key. Sessions call [`RandomizerPool::take_or_compute`] (or
/// [`RandomizerPool::encrypt`]) and never block on the fillers.
pub struct RandomizerPool {
    public_key: PublicKey,
    capacity: usize,
    queue: Mutex<VecDeque<Randomizer>>,
    /// Signaled when the queue drops below capacity (fillers wait on this).
    not_full: Condvar,
    shutdown: AtomicBool,
    produced: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional operator metric mirroring `produced` (see
    /// [`RandomizerPool::observe_fills`]); a live fill-rate signal without
    /// polling [`RandomizerPool::stats`].
    fill_counter: OnceLock<Counter>,
}

impl std::fmt::Debug for RandomizerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomizerPool")
            .field("key_bits", &self.public_key.bits())
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl RandomizerPool {
    /// An empty pool for `public_key` holding at most `capacity`
    /// randomizers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(public_key: PublicKey, capacity: usize) -> Arc<RandomizerPool> {
        assert!(capacity > 0, "a zero-capacity pool can never serve");
        Arc::new(RandomizerPool {
            // Strip any attached pool from the stored key: a pool holding a
            // key holding this pool would be an Arc cycle (and pooled
            // randomizer production never encrypts anyway).
            public_key: public_key.without_pool(),
            capacity,
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            not_full: Condvar::new(),
            shutdown: AtomicBool::new(false),
            produced: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fill_counter: OnceLock::new(),
        })
    }

    /// Mirrors every buffered randomizer this pool produces into `counter`
    /// (an operator metric from a `ppds_observe::MetricsRegistry`), giving
    /// a scrapeable fill-rate signal. First registration wins; later calls
    /// are ignored.
    pub fn observe_fills(&self, counter: Counter) {
        let _ = self.fill_counter.set(counter);
    }

    /// Records `count` randomizers pushed into the buffer, mirroring into
    /// the fill metric when one is registered.
    fn note_produced(&self, count: usize) {
        if count == 0 {
            return;
        }
        self.produced.fetch_add(count as u64, Ordering::Relaxed);
        if let Some(counter) = self.fill_counter.get() {
            counter.add(count as u64);
        }
    }

    /// The key every randomizer in this pool is bound to.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }

    /// Buffered randomizers right now.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// `true` if no randomizer is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            produced: self.produced.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Synchronously computes and buffers `count` randomizers (subject to
    /// capacity). Randomizers are produced in batches sized to the room
    /// currently available, so the `r^n` exponentiations share one
    /// decomposition of the exponent and the lock is only held to push.
    pub fn prefill<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) {
        let mut remaining = count;
        while remaining > 0 {
            let room = self.capacity.saturating_sub(self.len());
            if room == 0 {
                return;
            }
            let batch = self
                .public_key
                .precompute_randomizers(remaining.min(room), rng);
            remaining -= batch.len();
            self.push_batch(batch);
        }
    }

    /// Pushes a computed batch, dropping any overflow past capacity (a
    /// concurrent filler may have refilled while we computed).
    fn push_batch(&self, batch: Vec<Randomizer>) {
        let mut queue = self.queue.lock().unwrap();
        let mut pushed = 0;
        for randomizer in batch {
            if queue.len() >= self.capacity {
                break;
            }
            queue.push_back(randomizer);
            pushed += 1;
        }
        drop(queue);
        self.note_produced(pushed);
    }

    /// Pops a buffered randomizer, if any.
    pub fn take(&self) -> Option<Randomizer> {
        let popped = self.queue.lock().unwrap().pop_front();
        if popped.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.not_full.notify_one();
        }
        popped
    }

    /// Pops a buffered randomizer, or computes one inline when the buffer
    /// is dry. Never blocks on the fillers.
    pub fn take_or_compute<R: Rng + ?Sized>(&self, rng: &mut R) -> Randomizer {
        match self.take() {
            Some(randomizer) => randomizer,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.produced.fetch_add(1, Ordering::Relaxed);
                self.public_key.precompute_randomizer(rng)
            }
        }
    }

    /// Encrypts `m` under the pool's key with a pooled (or, on a dry pool,
    /// freshly computed) randomizer.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        let randomizer = self.take_or_compute(rng);
        self.public_key.encrypt_with_randomizer(m, randomizer)
    }

    /// Starts `workers` background threads that keep the pool topped up to
    /// capacity until the returned handle is dropped.
    ///
    /// Filler RNGs are seeded from `seed` (one stream per worker) — the
    /// nonces are as good as the seed's entropy, which is the same contract
    /// as every other RNG input in this workspace.
    pub fn spawn_fillers(self: &Arc<Self>, workers: usize, seed: u64) -> FillerHandle {
        assert!(workers > 0, "need at least one filler thread");
        let threads = (0..workers)
            .map(|worker| {
                let pool = Arc::clone(self);
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                std::thread::spawn(move || pool.fill_until_shutdown(&mut rng))
            })
            .collect();
        FillerHandle {
            pool: Arc::clone(self),
            threads,
        }
    }

    fn fill_until_shutdown(&self, rng: &mut StdRng) {
        /// Upper bound on one refill batch: large enough to amortize the
        /// shared exponent decomposition, small enough that shutdown is
        /// never more than a few exponentiations away.
        const MAX_FILL_BATCH: usize = 8;
        loop {
            // Wait (off-CPU) while full; bail promptly on shutdown.
            let room;
            {
                let mut queue = self.queue.lock().unwrap();
                while queue.len() >= self.capacity {
                    if self.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    let (guard, _timeout) = self
                        .not_full
                        .wait_timeout(queue, std::time::Duration::from_millis(50))
                        .unwrap();
                    queue = guard;
                }
                room = self.capacity - queue.len();
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            // The expensive exponentiations happen outside the lock, as a
            // batch over one shared decomposition of the fixed exponent n.
            let batch = self
                .public_key
                .precompute_randomizers(room.min(MAX_FILL_BATCH), rng);
            self.push_batch(batch);
        }
    }
}

/// Joins a pool's background fillers when dropped.
pub struct FillerHandle {
    pool: Arc<RandomizerPool>,
    threads: Vec<JoinHandle<()>>,
}

impl FillerHandle {
    /// Signals shutdown and joins all filler threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.pool.shutdown.store(true, Ordering::Relaxed);
        self.pool.not_full.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FillerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{rng, shared_keypair};

    #[test]
    fn randomizer_encryption_decrypts_correctly() {
        let kp = shared_keypair();
        let mut r = rng(1);
        for m in [0u64, 1, 42, u32::MAX as u64] {
            let m = BigUint::from_u64(m);
            let randomizer = kp.public.precompute_randomizer(&mut r);
            let c = kp.public.encrypt_with_randomizer(&m, randomizer).unwrap();
            assert_eq!(kp.private.decrypt_crt(&c).unwrap(), m);
        }
    }

    #[test]
    fn randomizer_matches_nonce_encryption() {
        // encrypt_with_randomizer(m, r^n) must equal encrypt_with_nonce(m, r).
        let kp = shared_keypair();
        let nonce = BigUint::from_u64(987_654_321);
        let m = BigUint::from_u64(31337);
        let randomizer = Randomizer {
            r_to_n: kp.public.pow_mod_nn(&nonce, kp.public.n()),
            n: kp.public.n().clone(),
        };
        let via_randomizer = kp.public.encrypt_with_randomizer(&m, randomizer).unwrap();
        let via_nonce = kp.public.encrypt_with_nonce(&m, &nonce).unwrap();
        assert_eq!(via_randomizer, via_nonce);
    }

    #[test]
    fn randomizer_encryption_rejects_oversized_message() {
        let kp = shared_keypair();
        let mut r = rng(2);
        let randomizer = kp.public.precompute_randomizer(&mut r);
        assert_eq!(
            kp.public
                .encrypt_with_randomizer(&kp.public.n().clone(), randomizer)
                .unwrap_err(),
            PaillierError::MessageOutOfRange
        );
    }

    #[test]
    fn cross_key_randomizer_rejected() {
        let kp = shared_keypair();
        let mut r = rng(20);
        let other = crate::Keypair::generate(64, &mut r);
        let randomizer = other.public.precompute_randomizer(&mut r);
        assert_eq!(
            kp.public
                .encrypt_with_randomizer(&BigUint::from_u64(1), randomizer)
                .unwrap_err(),
            PaillierError::RandomizerKeyMismatch
        );
    }

    #[test]
    fn pool_prefill_take_and_fallback() {
        let kp = shared_keypair();
        let pool = RandomizerPool::new(kp.public.clone(), 4);
        let mut r = rng(3);
        pool.prefill(4, &mut r);
        assert_eq!(pool.len(), 4);

        for _ in 0..4 {
            assert!(pool.take().is_some());
        }
        assert!(pool.take().is_none());

        // Dry pool: take_or_compute falls back inline.
        let m = BigUint::from_u64(77);
        let c = pool.encrypt(&m, &mut r).unwrap();
        assert_eq!(kp.private.decrypt_crt(&c).unwrap(), m);

        let stats = pool.stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.produced, 5);
    }

    #[test]
    fn batch_precompute_matches_individual() {
        // pow_many shares the exponent decomposition but must return the
        // exact r^n the one-at-a-time path computes for the same nonces.
        let kp = shared_keypair();
        let batch: Vec<BigUint> = kp
            .public
            .precompute_randomizers(5, &mut rng(30))
            .into_iter()
            .map(Randomizer::into_biguint)
            .collect();
        let individual: Vec<BigUint> = {
            let mut r = rng(30);
            (0..5)
                .map(|_| kp.public.precompute_randomizer(&mut r).into_biguint())
                .collect()
        };
        assert_eq!(batch, individual);
    }

    #[test]
    fn fill_counter_tracks_buffered_production() {
        let kp = shared_keypair();
        let registry = ppds_observe::MetricsRegistry::new();
        let pool = RandomizerPool::new(kp.public.clone(), 4);
        pool.observe_fills(registry.counter("paillier_pool_fills"));
        let mut r = rng(31);
        pool.prefill(3, &mut r);
        assert_eq!(registry.counter("paillier_pool_fills").get(), 3);
        // Inline fallback production is not a fill.
        for _ in 0..3 {
            pool.take();
        }
        let _ = pool.take_or_compute(&mut r);
        assert_eq!(registry.counter("paillier_pool_fills").get(), 3);
        assert_eq!(pool.stats().produced, 4);
    }

    #[test]
    fn pool_respects_capacity() {
        let kp = shared_keypair();
        let pool = RandomizerPool::new(kp.public.clone(), 2);
        let mut r = rng(4);
        pool.prefill(10, &mut r);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pooled_ciphertexts_are_distinct_and_valid() {
        let kp = shared_keypair();
        let pool = RandomizerPool::new(kp.public.clone(), 8);
        let mut r = rng(5);
        pool.prefill(8, &mut r);
        let m = BigUint::from_u64(5);
        let c1 = pool.encrypt(&m, &mut r).unwrap();
        let c2 = pool.encrypt(&m, &mut r).unwrap();
        assert_ne!(c1, c2, "two takes must yield two distinct nonces");
        assert_eq!(kp.private.decrypt_crt(&c1).unwrap(), m);
        assert_eq!(kp.private.decrypt_crt(&c2).unwrap(), m);
    }

    #[test]
    fn background_fillers_top_up_and_shut_down() {
        let kp = shared_keypair();
        let pool = RandomizerPool::new(kp.public.clone(), 6);
        let fillers = pool.spawn_fillers(2, 42);
        // Wait for the fillers to reach capacity (256-bit ops are fast).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.len() < 6 {
            assert!(
                std::time::Instant::now() < deadline,
                "fillers did not reach capacity; len = {}",
                pool.len()
            );
            std::thread::yield_now();
        }
        // Drain a few; fillers should replenish.
        for _ in 0..3 {
            assert!(pool.take().is_some());
        }
        while pool.len() < 6 {
            assert!(std::time::Instant::now() < deadline, "no replenish");
            std::thread::yield_now();
        }
        fillers.stop();
        let mut r = rng(6);
        let m = BigUint::from_u64(123);
        let c = pool.encrypt(&m, &mut r).unwrap();
        assert_eq!(kp.private.decrypt_crt(&c).unwrap(), m);
    }

    #[test]
    fn concurrent_takers_never_share_a_randomizer() {
        let kp = shared_keypair();
        let pool = RandomizerPool::new(kp.public.clone(), 32);
        let mut r = rng(7);
        pool.prefill(32, &mut r);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut taken = Vec::new();
                while let Some(randomizer) = pool.take() {
                    taken.push(randomizer.into_biguint());
                }
                taken
            }));
        }
        let mut all: Vec<BigUint> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len(), 32);
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "a randomizer was handed out twice");
    }
}
