//! Homomorphic operations on ciphertexts.
//!
//! These implement the two properties the paper quotes in §3.7 and builds
//! Algorithm 2 (the Multiplication Protocol) on:
//!
//! * addition:        `D(E(m1) · E(m2) mod n²) = m1 + m2 mod n`
//! * plaintext mul:   `D(E(m1)^m2  mod n²) = m1 · m2 mod n`

use crate::keys::{Ciphertext, PublicKey};
use ppds_bigint::{BigInt, BigUint, FixedBaseTable};
use rand::Rng;

/// Fixed-base comb tables for a set of ciphertexts that are each raised to
/// many (or large) scalars — the `Π cᵢ^{yᵢ}` response legs of the
/// multiplication and dot-product protocols.
///
/// Built once per request via [`PublicKey::scaled_bases`], then consumed by
/// [`ScaledBases::combine_signed`], which accumulates the whole product in
/// the Montgomery domain: each `cᵢ^{kᵢ}` costs table lookups and
/// multiplications only (combs spend **zero** squarings at evaluation
/// time), versus a full square-and-multiply ladder per ciphertext.
///
/// Value-equality: every exponent is reduced `k mod n` exactly as
/// [`PublicKey::mul_plain_signed`] reduces it, each comb evaluation returns
/// the canonical residue the plain ladder returns, and the product mod `n²`
/// is the same group element in any association order — so protocol bytes
/// are unchanged.
pub struct ScaledBases {
    tables: Vec<FixedBaseTable>,
}

impl ScaledBases {
    /// Number of base ciphertexts.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the base set is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// `acc · Π cᵢ^{coeffs[i] mod n} mod n²`, equal byte-for-byte to
    /// folding [`PublicKey::mul_plain_signed`] + [`PublicKey::add`] over
    /// the same pairs. Zero coefficients contribute the identity and are
    /// skipped.
    ///
    /// # Panics
    /// Panics if `coeffs.len()` differs from the number of bases.
    pub fn combine_signed(
        &self,
        pk: &PublicKey,
        acc: &Ciphertext,
        coeffs: &[BigInt],
    ) -> Ciphertext {
        assert_eq!(
            coeffs.len(),
            self.tables.len(),
            "one coefficient per scaled base"
        );
        let mont = pk.mont_nn();
        let mut product = mont.to_mont(&acc.0);
        for (table, k) in self.tables.iter().zip(coeffs) {
            let k_reduced = k.rem_euclid(pk.n());
            if k_reduced.is_zero() {
                continue;
            }
            let factor = table
                .pow_mont(&k_reduced)
                .expect("exponent reduced mod n always fits the comb");
            product = mont.mont_mul(&product, &factor);
        }
        Ciphertext(mont.from_mont(&product))
    }
}

impl PublicKey {
    /// Builds fixed-base comb tables over `cts` for repeated/large-scalar
    /// use (see [`ScaledBases`]). Worth it whenever each ciphertext is
    /// raised to a full-width scalar — the comb trades the ladder's
    /// `bits` squarings for a one-time table build of comparable cost that
    /// is then amortized across the whole product.
    pub fn scaled_bases(&self, cts: &[Ciphertext]) -> ScaledBases {
        let tables = cts
            .iter()
            .map(|c| FixedBaseTable::new(self.mont_nn(), &c.0, 4, self.bits()))
            .collect();
        ScaledBases { tables }
    }
}

impl PublicKey {
    /// `E(m1 + m2)` from `E(m1)` and `E(m2)`: ciphertext product mod `n²`.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        Ciphertext(self.mul_mod_nn(&c1.0, &c2.0))
    }

    /// `E(m + k)` from `E(m)` and plaintext `k`: multiply by `g^k`.
    pub fn add_plain(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        let k = k % self.n();
        let g_to_k = self
            .encrypt_with_nonce(&k, &BigUint::one())
            .expect("k reduced mod n");
        self.add(c, &g_to_k)
    }

    /// `E(m · k)` from `E(m)` and plaintext `k`: ciphertext power mod `n²`.
    pub fn mul_plain(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        let k = k % self.n();
        if k.is_zero() {
            // c^0 = 1 = E(0) with nonce 1; keep it a valid group element.
            return Ciphertext(BigUint::one());
        }
        Ciphertext(self.pow_mod_nn(&c.0, &k))
    }

    /// `E(m · k)` for a signed scalar `k` (negative scalars exponentiate by
    /// `k mod n`, i.e. `n - |k|`).
    pub fn mul_plain_signed(&self, c: &Ciphertext, k: &BigInt) -> Ciphertext {
        let k_reduced = k.rem_euclid(self.n());
        self.mul_plain(c, &k_reduced)
    }

    /// `E(-m)` from `E(m)`: exponent `n - 1 ≡ -1 (mod n)`.
    pub fn negate(&self, c: &Ciphertext) -> Ciphertext {
        let minus_one = self.n() - &BigUint::one();
        self.mul_plain(c, &minus_one)
    }

    /// `E(m1 - m2)` from `E(m1)` and `E(m2)`.
    pub fn sub(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        self.add(c1, &self.negate(c2))
    }

    /// Re-randomizes a ciphertext: multiplies by a fresh encryption of zero,
    /// so the value is unchanged but the group element is statistically
    /// independent of the input. The DBSCAN drivers use this before echoing
    /// any ciphertext back to its producer.
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        let zero_enc = self
            .encrypt(&BigUint::zero(), rng)
            .expect("0 is always in range");
        self.add(c, &zero_enc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{rng, shared_keypair};
    use ppds_bigint::random::gen_biguint_below;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn homomorphic_addition() {
        let kp = shared_keypair();
        let mut r = rng(10);
        let c1 = kp.public.encrypt(&b(20), &mut r).unwrap();
        let c2 = kp.public.encrypt(&b(22), &mut r).unwrap();
        let sum = kp.public.add(&c1, &c2);
        assert_eq!(kp.private.decrypt(&sum).unwrap(), b(42));
    }

    #[test]
    fn homomorphic_addition_wraps_mod_n() {
        let kp = shared_keypair();
        let mut r = rng(11);
        let n_minus_1 = kp.public.n() - &BigUint::one();
        let c1 = kp.public.encrypt(&n_minus_1, &mut r).unwrap();
        let c2 = kp.public.encrypt(&b(5), &mut r).unwrap();
        let sum = kp.public.add(&c1, &c2);
        assert_eq!(kp.private.decrypt(&sum).unwrap(), b(4));
    }

    #[test]
    fn add_plain_matches_add() {
        let kp = shared_keypair();
        let mut r = rng(12);
        let c = kp.public.encrypt(&b(100), &mut r).unwrap();
        let shifted = kp.public.add_plain(&c, &b(23));
        assert_eq!(kp.private.decrypt(&shifted).unwrap(), b(123));
    }

    #[test]
    fn mul_plain_scalars() {
        let kp = shared_keypair();
        let mut r = rng(13);
        let c = kp.public.encrypt(&b(7), &mut r).unwrap();
        for k in [0u64, 1, 2, 6, 1000] {
            let scaled = kp.public.mul_plain(&c, &b(k));
            assert_eq!(kp.private.decrypt(&scaled).unwrap(), b(7 * k), "k = {k}");
        }
    }

    #[test]
    fn mul_plain_reduces_large_scalar() {
        let kp = shared_keypair();
        let mut r = rng(14);
        let c = kp.public.encrypt(&b(3), &mut r).unwrap();
        let k = kp.public.n() + &b(2); // k ≡ 2 (mod n)
        let scaled = kp.public.mul_plain(&c, &k);
        assert_eq!(kp.private.decrypt(&scaled).unwrap(), b(6));
    }

    #[test]
    fn mul_plain_signed_negative() {
        let kp = shared_keypair();
        let mut r = rng(15);
        let c = kp.public.encrypt(&b(10), &mut r).unwrap();
        let scaled = kp.public.mul_plain_signed(&c, &BigInt::from_i64(-3));
        // -30 mod n = n - 30
        let expect = kp.public.n() - &b(30);
        assert_eq!(kp.private.decrypt(&scaled).unwrap(), expect);
    }

    #[test]
    fn negate_and_sub() {
        let kp = shared_keypair();
        let mut r = rng(16);
        let c1 = kp.public.encrypt(&b(50), &mut r).unwrap();
        let c2 = kp.public.encrypt(&b(8), &mut r).unwrap();
        let diff = kp.public.sub(&c1, &c2);
        assert_eq!(kp.private.decrypt(&diff).unwrap(), b(42));
        let neg = kp.public.negate(&c1);
        assert_eq!(kp.private.decrypt(&neg).unwrap(), kp.public.n() - &b(50));
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_ciphertext() {
        let kp = shared_keypair();
        let mut r = rng(17);
        let c = kp.public.encrypt(&b(77), &mut r).unwrap();
        let c2 = kp.public.rerandomize(&c, &mut r);
        assert_ne!(c, c2);
        assert_eq!(kp.private.decrypt(&c2).unwrap(), b(77));
    }

    #[test]
    fn multiplication_protocol_core_identity() {
        // The exact algebra of Algorithm 2: u' = E(x)^y * E(v), u = D(u') = xy + v.
        let kp = shared_keypair();
        let mut r = rng(18);
        let (x, y, v) = (b(123), b(456), b(789));
        let ex = kp.public.encrypt(&x, &mut r).unwrap();
        let u_prime = kp.public.add(
            &kp.public.mul_plain(&ex, &y),
            &kp.public.encrypt(&v, &mut r).unwrap(),
        );
        let u = kp.private.decrypt(&u_prime).unwrap();
        assert_eq!(u, b(123 * 456 + 789));
    }

    #[test]
    fn random_homomorphic_add_mod_n() {
        let kp = shared_keypair();
        let mut r = rng(19);
        for _ in 0..8 {
            let m1 = gen_biguint_below(&mut r, kp.public.n());
            let m2 = gen_biguint_below(&mut r, kp.public.n());
            let c1 = kp.public.encrypt(&m1, &mut r).unwrap();
            let c2 = kp.public.encrypt(&m2, &mut r).unwrap();
            let got = kp.private.decrypt_crt(&kp.public.add(&c1, &c2)).unwrap();
            assert_eq!(got, m1.add_mod(&m2, kp.public.n()));
        }
    }

    #[test]
    fn scaled_bases_match_mul_plain_signed_fold() {
        let kp = shared_keypair();
        let mut r = rng(21);
        for trial in 0..4u64 {
            let cts: Vec<Ciphertext> = (0..6)
                .map(|_| {
                    let m = gen_biguint_below(&mut r, kp.public.n());
                    kp.public.encrypt(&m, &mut r).unwrap()
                })
                .collect();
            let coeffs: Vec<BigInt> = (0..6)
                .map(|i| match (trial + i) % 4 {
                    0 => BigInt::zero(),
                    1 => BigInt::from_i64(-(17 + i as i64)),
                    2 => BigInt::from_biguint(
                        ppds_bigint::Sign::Positive,
                        gen_biguint_below(&mut r, kp.public.n()),
                    ),
                    _ => BigInt::from_i64(1 + i as i64),
                })
                .collect();
            let acc = kp.public.encrypt(&b(5), &mut r).unwrap();

            let naive = cts.iter().zip(&coeffs).fold(acc.clone(), |acc, (c, k)| {
                kp.public.add(&acc, &kp.public.mul_plain_signed(c, k))
            });
            let kernel = kp
                .public
                .scaled_bases(&cts)
                .combine_signed(&kp.public, &acc, &coeffs);
            assert_eq!(kernel, naive, "trial {trial}: bytes must be identical");
        }
    }

    #[test]
    fn mul_plain_zero_is_valid_encryption_of_zero() {
        let kp = shared_keypair();
        let mut r = rng(20);
        let c = kp.public.encrypt(&b(9), &mut r).unwrap();
        let zeroed = kp.public.mul_plain(&c, &BigUint::zero());
        assert_eq!(kp.private.decrypt(&zeroed).unwrap(), BigUint::zero());
        // And it must still compose homomorphically.
        let c5 = kp.public.encrypt(&b(5), &mut r).unwrap();
        let sum = kp.public.add(&zeroed, &c5);
        assert_eq!(kp.private.decrypt(&sum).unwrap(), b(5));
    }
}
