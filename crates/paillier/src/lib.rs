#![warn(missing_docs)]

//! Paillier's additively homomorphic cryptosystem (Paillier, EUROCRYPT '99),
//! as summarized in §3.7 of Liu et al., *Privacy Preserving Distributed
//! DBSCAN Clustering*.
//!
//! This crate provides everything the paper's protocols consume:
//!
//! * [`Keypair::generate`] — key generation exactly as in §3.7: random primes
//!   `p, q` with `gcd(pq, (p-1)(q-1)) = 1`, `n = pq`, `λ = lcm(p-1, q-1)`,
//!   generator `g` with `μ = (L(g^λ mod n²))^{-1} mod n`,
//! * [`PublicKey::encrypt`] / [`PrivateKey::decrypt`] — `c = g^m·r^n mod n²`
//!   and `m = L(c^λ mod n²)·μ mod n`, with a CRT-accelerated decryption path,
//! * homomorphic operations ([`PublicKey::add`], [`PublicKey::mul_plain`],
//!   …) implementing the two properties quoted by the paper:
//!   `D(E(m1)·E(m2) mod n²) = m1 + m2 mod n` and
//!   `D(E(m1)^m2 mod n²) = m1·m2 mod n`,
//! * a signed-message encoding ([`PublicKey::encrypt_signed`],
//!   [`PrivateKey::decrypt_signed`]) mapping `[-(n-1)/2, (n-1)/2]` into
//!   `Z_n`, which the DBSCAN protocols rely on because masked distances and
//!   Bob's random offsets can be negative,
//! * plaintext-slot packing ([`SlotLayout`], [`PublicKey::pack_encrypt`],
//!   [`PublicKey::pack_ciphertexts`], [`PrivateKey::unpack_decrypt`]):
//!   many small protocol values ride one ciphertext, cutting the
//!   ciphertext-heavy response legs (DGK verdict vectors, masked-distance
//!   replies) and the keyholder's decryption count by the packing factor,
//! * randomizer precomputation ([`RandomizerPool`],
//!   [`PublicKey::precompute_randomizer`],
//!   [`PublicKey::encrypt_with_randomizer`]): the message-independent
//!   `r^n mod n²` factor is computed ahead of time (optionally by
//!   background threads), so a hot-path encryption collapses to two
//!   modular multiplications. The `ppds-engine` crate shares one pool
//!   across all concurrent sessions encrypting under a key,
//! * exponentiation kernels ([`PublicKey::with_exp_kernels`],
//!   [`ScaledBases`], [`PublicKey::validate_many`]): windowed fixed-base
//!   combs for general-generator keys, multi-exponentiation for packed-slot
//!   aggregation, and Montgomery batch inversion for batch ciphertext
//!   validation — all value-equal to the ladders they replace, so every
//!   ciphertext byte and protocol transcript is unchanged.
//!
//! ## Deviation from the paper's Algorithm 2 narration
//!
//! Algorithm 2 as printed has Alice send the encryption nonce `r` to Bob and
//! reuse one nonce across encryptions. A Paillier ciphertext with a known
//! nonce is trivially invertible (`m = L(c·r^{-n})` for `g = n+1`), so a
//! literal reading would leak Alice's input. We follow standard practice —
//! and the paper's clear intent, since its Lemma 7 proof assumes semantic
//! security — by drawing a fresh secret nonce per encryption. Correctness of
//! every protocol is unaffected; see DESIGN.md.

mod encoding;
mod error;
mod homomorphic;
mod keys;
mod packing;
mod precompute;

pub use error::PaillierError;
pub use homomorphic::ScaledBases;
pub use keys::{Ciphertext, ExpKernels, Keypair, PrivateKey, PublicKey, MIN_KEY_BITS};
pub use packing::{SlotLayout, PACKING_DISCIPLINE};
pub use precompute::{FillerHandle, PoolStats, Randomizer, RandomizerPool};

#[cfg(test)]
pub(crate) mod test_helpers {
    use super::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A shared 256-bit test keypair: generating keys dominates unit-test
    /// time, so tests reuse one unless they specifically test generation.
    pub fn shared_keypair() -> &'static Keypair {
        static KEYPAIR: OnceLock<Keypair> = OnceLock::new();
        KEYPAIR.get_or_init(|| Keypair::generate(256, &mut rng(0xA11CE)))
    }
}
