//! The operator endpoint: a deliberately tiny HTTP/1.0 text server on a
//! second port, curl-compatible, no external dependencies.
//!
//! Routes:
//! - `GET /healthz` — `ok` (or `draining` once shutdown started), always 200
//! - `GET /metrics` — [`ppds_observe::MetricsRegistry::render_text`]
//! - `GET /sessions` — one line per registry row
//! - `GET /trace/<id>` — the session's flight-recorder trace as
//!   Chrome/Perfetto JSON, 404 when none was recorded
//! - `GET /shutdown` — requests a graceful shutdown (the binary polls
//!   [`crate::Server::shutdown_requested`] and drains)

use crate::server::Shared;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

pub(crate) fn serve_ops(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop_ops.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop_ops.load(Ordering::SeqCst) {
            return;
        }
        // One request per connection, served inline: operator traffic is
        // rare and tiny, so a thread per scrape would be overkill.
        let _ = handle(stream, shared);
    }
}

fn handle(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");

    let (status, content_type, body) = route(path, shared);
    let mut out = stream;
    write!(
        out,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

fn route(path: &str, shared: &Arc<Shared>) -> (&'static str, &'static str, String) {
    const OK: &str = "200 OK";
    const NOT_FOUND: &str = "404 Not Found";
    const TEXT: &str = "text/plain; charset=utf-8";
    match path {
        "/healthz" => {
            let body = if shared.draining.load(Ordering::SeqCst) {
                "draining\n"
            } else {
                "ok\n"
            };
            (OK, TEXT, body.into())
        }
        "/metrics" => (OK, TEXT, shared.metrics.render_text()),
        "/sessions" => {
            let mut body = String::from("id mode state peer batching packing\n");
            for row in shared.registry.snapshot() {
                body.push_str(&format!(
                    "{} {} {} {} {} {}\n",
                    row.id,
                    row.mode,
                    row.state.name(),
                    row.peer,
                    row.batching,
                    row.packing
                ));
            }
            (OK, TEXT, body)
        }
        "/shutdown" => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            (OK, TEXT, "draining initiated\n".into())
        }
        _ => match path.strip_prefix("/trace/").map(str::parse::<u64>) {
            Some(Ok(id)) => match shared.registry.chrome_trace(id) {
                Some(json) => (OK, "application/json", json),
                None => (NOT_FOUND, TEXT, format!("no trace for session {id}\n")),
            },
            _ => (NOT_FOUND, TEXT, format!("no route {path}\n")),
        },
    }
}

/// Minimal blocking HTTP GET against the operator endpoint, returning the
/// response body. Shared by the client example, the e2e tests, and the
/// binary's smoke path so none of them needs curl.
pub fn ops_get(addr: &std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response);
    Ok(body)
}
