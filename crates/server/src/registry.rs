//! The session registry: every admitted session's id, lifecycle state,
//! and (optionally) its flight-recorder trace.

use ppdbscan::session::Mode;
use ppds_observe::SessionTrace;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Lifecycle of one admitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted, waiting for a worker slot.
    Queued,
    /// A worker is executing the protocol.
    Running,
    /// The protocol finished and produced an outcome.
    Completed,
    /// The protocol aborted (handshake mismatch, transport error, timeout).
    Failed,
    /// Shed before running: the drain deadline passed while it was queued.
    Dropped,
}

impl SessionState {
    /// Stable lowercase name for the operator endpoint.
    pub fn name(self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Completed => "completed",
            SessionState::Failed => "failed",
            SessionState::Dropped => "dropped",
        }
    }
}

/// One registry row, as exposed to operators and tests.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// The granted session id.
    pub id: u64,
    /// The negotiated protocol family.
    pub mode: Mode,
    /// The client's socket address.
    pub peer: String,
    /// Current lifecycle state.
    pub state: SessionState,
    /// Whether round batching was adopted for this session.
    pub batching: bool,
    /// Whether plaintext-slot packing was adopted for this session.
    pub packing: bool,
}

struct Entry {
    info: SessionInfo,
    trace: Option<SessionTrace>,
}

struct Inner {
    next_id: u64,
    entries: BTreeMap<u64, Entry>,
}

/// Threadsafe store of all sessions the server has admitted, keyed by
/// session id. Ids are granted at admission: a client's proposed id is
/// honored when free (so a test driving the server can predict the
/// server-side seed), otherwise the next unused id is assigned.
pub struct SessionRegistry {
    inner: Mutex<Inner>,
}

impl SessionRegistry {
    /// An empty registry; ids start at 1 (0 means "assign me one" on the
    /// wire).
    pub fn new() -> SessionRegistry {
        SessionRegistry {
            inner: Mutex::new(Inner {
                next_id: 1,
                entries: BTreeMap::new(),
            }),
        }
    }

    /// Registers a new session in [`SessionState::Queued`] and returns the
    /// granted id: `proposed` when nonzero and unused, the next free id
    /// otherwise.
    pub fn admit(
        &self,
        proposed: u64,
        mode: Mode,
        peer: String,
        batching: bool,
        packing: bool,
    ) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let id = if proposed != 0 && !inner.entries.contains_key(&proposed) {
            proposed
        } else {
            while inner.entries.contains_key(&inner.next_id) {
                inner.next_id += 1;
            }
            inner.next_id
        };
        inner.next_id = inner.next_id.max(id + 1);
        inner.entries.insert(
            id,
            Entry {
                info: SessionInfo {
                    id,
                    mode,
                    peer,
                    state: SessionState::Queued,
                    batching,
                    packing,
                },
                trace: None,
            },
        );
        id
    }

    /// Moves session `id` to `state` (no-op for unknown ids).
    pub fn set_state(&self, id: u64, state: SessionState) {
        if let Some(entry) = self.inner.lock().unwrap().entries.get_mut(&id) {
            entry.info.state = state;
        }
    }

    /// Terminal transition: sets the state and stores the session's trace
    /// when one was recorded.
    pub fn finish(&self, id: u64, state: SessionState, trace: Option<SessionTrace>) {
        if let Some(entry) = self.inner.lock().unwrap().entries.get_mut(&id) {
            entry.info.state = state;
            entry.trace = trace;
        }
    }

    /// The current row for session `id`, if admitted.
    pub fn get(&self, id: u64) -> Option<SessionInfo> {
        self.inner
            .lock()
            .unwrap()
            .entries
            .get(&id)
            .map(|e| e.info.clone())
    }

    /// All rows in id order.
    pub fn snapshot(&self) -> Vec<SessionInfo> {
        self.inner
            .lock()
            .unwrap()
            .entries
            .values()
            .map(|e| e.info.clone())
            .collect()
    }

    /// How many sessions are currently in `state`.
    pub fn count(&self, state: SessionState) -> usize {
        self.inner
            .lock()
            .unwrap()
            .entries
            .values()
            .filter(|e| e.info.state == state)
            .count()
    }

    /// Chrome/Perfetto JSON for session `id`'s flight-recorder trace, if
    /// one was recorded (sessions record traces only when the server runs
    /// with [`crate::ServerConfig::record_traces`]).
    pub fn chrome_trace(&self, id: u64) -> Option<String> {
        self.inner
            .lock()
            .unwrap()
            .entries
            .get(&id)
            .and_then(|e| e.trace.as_ref())
            .map(|t| t.to_chrome_json(&format!("session-{id}")))
    }
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(reg: &SessionRegistry, proposed: u64) -> u64 {
        reg.admit(proposed, Mode::Horizontal, "test".into(), false, false)
    }

    #[test]
    fn proposed_ids_honored_when_free() {
        let reg = SessionRegistry::new();
        assert_eq!(admit(&reg, 7), 7);
        // Collision: falls back to the next unused id past the grant.
        assert_eq!(admit(&reg, 7), 8);
        // 0 means "assign me one".
        assert_eq!(admit(&reg, 0), 9);
        assert_eq!(reg.snapshot().len(), 3);
    }

    #[test]
    fn lifecycle_transitions_and_counts() {
        let reg = SessionRegistry::new();
        let id = admit(&reg, 0);
        assert_eq!(reg.get(id).unwrap().state, SessionState::Queued);
        reg.set_state(id, SessionState::Running);
        assert_eq!(reg.count(SessionState::Running), 1);
        reg.finish(id, SessionState::Completed, None);
        assert_eq!(reg.get(id).unwrap().state, SessionState::Completed);
        assert_eq!(reg.chrome_trace(id), None);
    }
}
