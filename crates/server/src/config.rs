//! Server configuration and per-session seed derivation.

use ppdbscan::session::PartyData;
use ppdbscan::ProtocolConfig;
use ppds_smc::Party;
use std::time::Duration;

/// One protocol family the server is willing to host: the server-side
/// config, role, and private data view used for every session of that
/// mode. The mode itself is implied by the [`PartyData`] variant.
#[derive(Debug, Clone)]
pub struct HostedMode {
    /// The server's protocol configuration for this mode. The negotiable
    /// knobs (`batching`, `packing`) are adopted from each client's
    /// preamble; everything else must match or the connection is rejected
    /// with a typed [`crate::proto::ServerReply::Incompatible`].
    pub cfg: ProtocolConfig,
    /// The role the server plays in sessions of this mode (the client
    /// plays the complement).
    pub role: Party,
    /// The server's private data view, cloned into every session.
    pub data: PartyData,
}

/// Everything [`crate::Server::start`] needs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Protocol listener address (`host:port`; port 0 = ephemeral).
    pub listen: String,
    /// Operator endpoint address (`/metrics`, `/healthz`, …).
    pub ops: String,
    /// The protocol families served, one entry per mode.
    pub hosted: Vec<HostedMode>,
    /// Engine worker threads — the maximum number of sessions running
    /// concurrently; further admitted sessions wait in the queue.
    pub workers: usize,
    /// Admission cap: a connection arriving while `engine_queue_depth`
    /// is at or above this is refused with a typed
    /// [`crate::proto::ServerReply::Busy`].
    pub queue_cap: usize,
    /// How long a freshly accepted connection may take to deliver its
    /// preamble `Hello` before it is reaped (counted in
    /// `server_handshake_timeouts`).
    pub handshake_timeout: Duration,
    /// Read deadline applied to admitted sessions; bounds how long a dead
    /// client can pin a worker. `None` = block forever (trusted clients).
    pub session_read_timeout: Option<Duration>,
    /// Root of the per-session seed derivation (see [`session_seed`]).
    pub base_seed: u64,
    /// Record a flight-recorder trace per session, retrievable from the
    /// operator endpoint as `/trace/<session id>`.
    pub record_traces: bool,
}

impl ServerConfig {
    /// A config serving `hosted` on ephemeral loopback ports with
    /// moderate defaults; override with the `with_*` builders.
    pub fn new(hosted: Vec<HostedMode>) -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            ops: "127.0.0.1:0".into(),
            hosted,
            workers: 4,
            queue_cap: 16,
            handshake_timeout: Duration::from_secs(2),
            session_read_timeout: Some(Duration::from_secs(30)),
            base_seed: 0x5E55_10D5,
            record_traces: true,
        }
    }

    /// Sets the protocol listener address.
    pub fn with_listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Sets the operator endpoint address.
    pub fn with_ops(mut self, addr: impl Into<String>) -> Self {
        self.ops = addr.into();
        self
    }

    /// Sets the worker count (concurrent session slots).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission queue cap.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the preamble read deadline.
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Sets (or clears) the in-session read deadline.
    pub fn with_session_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.session_read_timeout = timeout;
        self
    }

    /// Sets the seed-derivation root.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Enables or disables per-session flight recording.
    pub fn with_traces(mut self, record: bool) -> Self {
        self.record_traces = record;
        self
    }
}

/// The server-side session seed for session `id` under `base`: a splitmix
/// step keeps neighboring ids far apart while staying a pure function the
/// tests (and a client proposing its own id) can reproduce to compare a
/// server-mediated session against a direct in-process run.
pub fn session_seed(base: u64, id: u64) -> u64 {
    base ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_seeds_are_distinct_and_reproducible() {
        assert_eq!(session_seed(7, 1), session_seed(7, 1));
        assert_ne!(session_seed(7, 1), session_seed(7, 2));
        assert_ne!(session_seed(7, 1), session_seed(8, 1));
    }
}
