//! The connection preamble the server speaks before the protocol proper.
//!
//! A client opens a TCP connection, sends one ordinary wire-v3
//! [`ppdbscan::session::Hello`] carrying an extra session-id field (0 =
//! "assign me one"), and reads back one [`ServerReply`]. On
//! [`ServerReply::Accept`] the connection is handed to an engine worker and
//! the untouched [`ppdbscan::session::Participant`] handshake runs next on
//! the same channel — the preamble classifies and admits, it never changes
//! a byte of the session itself, which is how server-mediated sessions stay
//! byte-identical to direct in-process runs.
//!
//! Every rejection is typed: the client can distinguish "retry later"
//! ([`ServerReply::Busy`], [`ServerReply::Draining`]) from "fix your
//! config" ([`ServerReply::Incompatible`] names the offending handshake
//! field) from "wrong door" ([`ServerReply::Unsupported`]).

use ppds_transport::wire::{Reader, WireDecode, WireEncode};
use ppds_transport::TransportError;

const T_ACCEPT: u8 = 1;
const T_BUSY: u8 = 2;
const T_DRAINING: u8 = 3;
const T_INCOMPATIBLE: u8 = 4;
const T_UNSUPPORTED: u8 = 5;

/// The server's one-frame answer to a connection preamble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerReply {
    /// Session admitted under `session_id`; the protocol handshake runs
    /// next on this connection.
    Accept {
        /// The id granted (the client's proposal when it was free).
        session_id: u64,
    },
    /// The engine queue is at capacity; the session was not admitted.
    Busy {
        /// Sessions waiting when the connection was refused.
        depth: u64,
        /// The server's configured queue cap.
        cap: u64,
    },
    /// The server is shutting down and no longer admits sessions.
    Draining,
    /// A protocol-semantic field disagrees; reconfigure and reconnect.
    Incompatible {
        /// Name of the offending handshake field (e.g. `eps_sq`).
        field: String,
        /// The server's value.
        ours: u64,
        /// The client's value.
        theirs: u64,
    },
    /// The request cannot be served at all (unknown mode, mode not
    /// hosted, malformed preamble).
    Unsupported {
        /// Human-readable reason.
        detail: String,
    },
}

impl WireEncode for ServerReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerReply::Accept { session_id } => {
                T_ACCEPT.encode(out);
                session_id.encode(out);
            }
            ServerReply::Busy { depth, cap } => {
                T_BUSY.encode(out);
                depth.encode(out);
                cap.encode(out);
            }
            ServerReply::Draining => T_DRAINING.encode(out),
            ServerReply::Incompatible {
                field,
                ours,
                theirs,
            } => {
                T_INCOMPATIBLE.encode(out);
                field.as_bytes().to_vec().encode(out);
                ours.encode(out);
                theirs.encode(out);
            }
            ServerReply::Unsupported { detail } => {
                T_UNSUPPORTED.encode(out);
                detail.as_bytes().to_vec().encode(out);
            }
        }
    }
}

impl WireDecode for ServerReply {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let tag = u8::decode(reader)?;
        Ok(match tag {
            T_ACCEPT => ServerReply::Accept {
                session_id: u64::decode(reader)?,
            },
            T_BUSY => ServerReply::Busy {
                depth: u64::decode(reader)?,
                cap: u64::decode(reader)?,
            },
            T_DRAINING => ServerReply::Draining,
            T_INCOMPATIBLE => ServerReply::Incompatible {
                field: String::from_utf8_lossy(&Vec::<u8>::decode(reader)?).into_owned(),
                ours: u64::decode(reader)?,
                theirs: u64::decode(reader)?,
            },
            T_UNSUPPORTED => ServerReply::Unsupported {
                detail: String::from_utf8_lossy(&Vec::<u8>::decode(reader)?).into_owned(),
            },
            other => {
                return Err(TransportError::decode(
                    "ServerReply",
                    format!("unknown reply tag {other}"),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reply_roundtrips() {
        let replies = [
            ServerReply::Accept { session_id: 42 },
            ServerReply::Busy { depth: 3, cap: 2 },
            ServerReply::Draining,
            ServerReply::Incompatible {
                field: "eps_sq".into(),
                ours: 81,
                theirs: 4,
            },
            ServerReply::Unsupported {
                detail: "mode multiparty is not hosted".into(),
            },
        ];
        for reply in replies {
            let bytes = reply.encode_to_vec();
            assert_eq!(ServerReply::decode_exact(&bytes).unwrap(), reply);
        }
    }

    #[test]
    fn unknown_tag_is_a_typed_decode_error() {
        let err = ServerReply::decode_exact(&[99]).unwrap_err();
        assert!(matches!(err, TransportError::Decode { .. }), "{err}");
    }
}
