//! The `ppds-server` binary: hosts the demo datasets over TCP, serves the
//! operator endpoint, and drains cleanly when `/shutdown` is hit.
//!
//! ```text
//! ppds-server --listen 127.0.0.1:7401 --ops 127.0.0.1:7402
//! ppds-server --client 127.0.0.1:7401        # run one demo session and exit
//! curl http://127.0.0.1:7402/metrics
//! curl http://127.0.0.1:7402/shutdown        # graceful drain
//! ```

use ppdbscan::session::{Participant, PartyData};
use ppdbscan::{ProtocolConfig, VerticalPartition};
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Quantizer};
use ppds_server::{hosted, open_session, ServerConfig};
use ppds_smc::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

struct Opts {
    listen: String,
    ops: String,
    workers: usize,
    queue_cap: usize,
    seed: u64,
    client: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        listen: "127.0.0.1:7401".into(),
        ops: "127.0.0.1:7402".into(),
        workers: 4,
        queue_cap: 16,
        seed: 0x5E55_10D5,
        client: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--ops" => opts.ops = value("--ops")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-cap" => {
                opts.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--client" => opts.client = Some(value("--client")?),
            "--help" | "-h" => {
                println!(
                    "ppds-server [--listen ADDR] [--ops ADDR] [--workers N] \
                     [--queue-cap N] [--seed N] [--client ADDR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn demo_cfg() -> ProtocolConfig {
    ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    )
}

/// The demo dataset both the hosted halves and the `--client` mode derive
/// their views from — fixed seed so server and client agree on shapes.
fn demo_points() -> Vec<ppds_dbscan::Point> {
    let mut rng = StdRng::seed_from_u64(4242);
    let (points, _) = standard_blobs(&mut rng, 6, 3, 2, Quantizer::new(1.0, 60));
    points
}

fn run_server(opts: &Opts) -> Result<(), String> {
    let cfg = demo_cfg();
    let points = demo_points();
    let (_, horizontal_bob) = split_alternating(&points);
    let vertical = VerticalPartition::split(&points, 1);
    let hosted_modes = vec![
        hosted(
            cfg,
            Party::Bob,
            PartyData::Horizontal(horizontal_bob.clone()),
        ),
        hosted(cfg, Party::Bob, PartyData::Enhanced(horizontal_bob)),
        hosted(cfg, Party::Bob, PartyData::Vertical(vertical.bob)),
    ];
    let server = ppds_server::Server::start(
        ServerConfig::new(hosted_modes)
            .with_listen(opts.listen.clone())
            .with_ops(opts.ops.clone())
            .with_workers(opts.workers)
            .with_queue_cap(opts.queue_cap)
            .with_base_seed(opts.seed),
    )
    .map_err(|e| format!("failed to start: {e}"))?;
    println!(
        "ppds-server listening on {} (ops on {})",
        server.local_addr(),
        server.ops_addr()
    );
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("shutdown requested, draining...");
    let report = server.shutdown(Duration::from_secs(10));
    println!(
        "drained: {} completed, {} failed, {} dropped, {} refused while draining",
        report.completed, report.failed, report.dropped, report.rejected_draining
    );
    Ok(())
}

fn run_client(addr: &str) -> Result<(), String> {
    let addr = addr
        .parse()
        .map_err(|e| format!("bad server address: {e}"))?;
    let points = demo_points();
    let (horizontal_alice, _) = split_alternating(&points);
    let participant = Participant::new(demo_cfg())
        .role(Party::Alice)
        .data(PartyData::Horizontal(horizontal_alice))
        .seed(1001);
    let session = open_session(&addr, &participant, 0, Duration::from_secs(10))
        .map_err(|e| format!("preamble failed: {e}"))?;
    let id = session.session_id();
    let outcome = session
        .run(participant)
        .map_err(|e| format!("session failed: {e}"))?;
    println!(
        "session {id}: mode {} found {} clusters over {} records ({} bytes on the wire)",
        outcome.meta.mode,
        outcome.output.clustering.num_clusters,
        outcome.output.clustering.labels.len(),
        outcome.output.traffic.bytes_sent + outcome.output.traffic.bytes_received,
    );
    Ok(())
}

fn main() {
    let result = parse_args().and_then(|opts| match &opts.client {
        Some(addr) => run_client(addr),
        None => run_server(&opts),
    });
    if let Err(msg) = result {
        eprintln!("ppds-server: {msg}");
        std::process::exit(1);
    }
}
