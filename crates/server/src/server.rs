//! The long-running protocol service: accept loop, connection greeters,
//! session execution on the engine worker pool, and graceful shutdown.
//!
//! ## Connection lifecycle
//!
//! ```text
//! accept → greeter thread:
//!   recv Hello (handshake_timeout)  ── timeout ──▶ reap, count
//!   draining?                       ── yes ──────▶ reply Draining
//!   mode hosted?                    ── no ───────▶ reply Unsupported
//!   adopt knobs, check_against      ── mismatch ─▶ reply Incompatible
//!   queue_depth ≥ cap?              ── yes ──────▶ reply Busy
//!   register session, reply Accept, hand channel to the engine
//! engine worker:
//!   session Running → Participant::run on the accepted channel
//!   → Completed (outcome recorded) | Failed | Dropped (drain deadline)
//! ```
//!
//! The greeter holds a single admission lock across the depth check, the
//! `Accept` reply, and the submit, so the configured cap can never be
//! oversubscribed by racing connections. The depth itself is the engine's
//! `engine_queue_depth` gauge — admission control and observability read
//! the same number.

use crate::config::{session_seed, HostedMode, ServerConfig};
use crate::proto::ServerReply;
use crate::registry::{SessionInfo, SessionRegistry, SessionState};
use ppdbscan::session::{Hello, Mode, Participant, PartyData};
use ppdbscan::CoreError;
use ppdbscan::ProtocolConfig;
use ppds_engine::{Engine, EngineConfig, EngineReport};
use ppds_observe::{MetricsRegistry, SpanRecorder};
use ppds_paillier::Keypair;
use ppds_smc::Party;
use ppds_transport::tcp::TcpChannel;
use ppds_transport::{Channel, TransportError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a graceful shutdown accomplished.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Sessions that finished with an outcome (lifetime total).
    pub completed: u64,
    /// Sessions that aborted with a protocol or transport error.
    pub failed: u64,
    /// Sessions shed because the drain deadline passed while they waited.
    pub dropped: u64,
    /// Connections refused with `Draining` during the shutdown window.
    pub rejected_draining: u64,
    /// The engine's final rollup (traffic, Yao ledger, busy time).
    pub engine: EngineReport,
}

/// State shared by the accept loop, greeters, session tasks, and the
/// operator endpoint. Deliberately does **not** hold the [`Engine`]: a
/// session task owning an engine handle would make the worker join itself
/// on the final drop. Greeters receive the engine handle separately and
/// are joined before the engine is shut down.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) registry: SessionRegistry,
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) draining: AtomicBool,
    pub(crate) drain_deadline: Mutex<Option<Instant>>,
    pub(crate) stop_accepting: AtomicBool,
    pub(crate) stop_ops: AtomicBool,
    pub(crate) shutdown_requested: AtomicBool,
    /// Serializes depth-check → Accept → submit across greeters.
    admission: Mutex<()>,
    /// Long-lived Paillier keypairs keyed by modulus size: a hosted
    /// session reuses the server's hot key (with its fixed-base comb
    /// tables already attached) instead of paying keygen per connection.
    keypairs: Mutex<HashMap<usize, Keypair>>,
    /// Admission-checked session configs keyed by the client preamble's
    /// [`Hello::negotiation_fingerprint`]: a reconnecting client whose
    /// preamble content is unchanged skips knob adoption and the
    /// compatibility cross-check entirely. Only *successful* negotiations
    /// are cached — refusals stay cheap and a changed preamble always
    /// re-negotiates (different fingerprint, different entry).
    negotiated: Mutex<HashMap<u64, ProtocolConfig>>,
}

/// A running protocol service. Construct with [`Server::start`]; tear down
/// with [`Server::shutdown`] (dropping without it leaves the accept thread
/// parked until process exit).
pub struct Server {
    shared: Arc<Shared>,
    engine: Arc<Engine>,
    listen_addr: SocketAddr,
    ops_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    ops: Option<JoinHandle<()>>,
    greeters: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds both listeners, starts the engine worker pool, and begins
    /// accepting connections.
    pub fn start(cfg: ServerConfig) -> Result<Server, TransportError> {
        if cfg.hosted.is_empty() {
            return Err(TransportError::decode(
                "ServerConfig",
                "server needs at least one hosted mode",
            ));
        }
        let listener = TcpListener::bind(&cfg.listen)?;
        let ops_listener = TcpListener::bind(&cfg.ops)?;
        let listen_addr = listener.local_addr()?;
        let ops_addr = ops_listener.local_addr()?;

        // The engine runs unbounded; the *server* enforces the cap against
        // the engine's own queue-depth gauge, so a refused connection never
        // consumes an engine slot at all.
        let engine = Arc::new(Engine::start(EngineConfig::with_workers(
            cfg.workers.max(1),
        )));
        let metrics = engine.registry();
        // Pre-register the operator metrics so a scrape before any traffic
        // already shows them at zero.
        for name in [
            "server_sessions_accepted",
            "server_sessions_completed",
            "server_sessions_failed",
            "server_sessions_rejected_busy",
            "server_sessions_rejected_draining",
            "server_sessions_rejected_incompatible",
            "server_sessions_dropped_drain",
            "server_handshake_timeouts",
            "server_keypair_cache_hits",
            "server_keypair_cache_misses",
            "server_negotiation_cache_hits",
            "server_negotiation_cache_misses",
        ] {
            metrics.counter(name);
        }
        metrics.gauge("server_active_sessions");

        let shared = Arc::new(Shared {
            cfg,
            registry: SessionRegistry::new(),
            metrics,
            draining: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            stop_accepting: AtomicBool::new(false),
            stop_ops: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            admission: Mutex::new(()),
            keypairs: Mutex::new(HashMap::new()),
            negotiated: Mutex::new(HashMap::new()),
        });

        let greeters: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let engine = Arc::clone(&engine);
            let greeters = Arc::clone(&greeters);
            std::thread::Builder::new()
                .name("ppds-server-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &engine, &greeters))
                .expect("spawn accept thread")
        };
        let ops = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ppds-server-ops".into())
                .spawn(move || crate::http::serve_ops(&ops_listener, &shared))
                .expect("spawn ops thread")
        };

        Ok(Server {
            shared,
            engine,
            listen_addr,
            ops_addr,
            accept: Some(accept),
            ops: Some(ops),
            greeters,
        })
    }

    /// The protocol listener's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// The operator endpoint's bound address.
    pub fn ops_addr(&self) -> SocketAddr {
        self.ops_addr
    }

    /// The live metrics registry (shared with the engine).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Current registry rows, id order.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        self.shared.registry.snapshot()
    }

    /// Whether an operator hit `/shutdown` on the ops endpoint. The
    /// binary's main loop polls this and then calls [`Server::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop admitting (new connections get a typed
    /// `Draining` reply), let in-flight and already-queued sessions finish
    /// until `drain` elapses, shed whatever is still queued past the
    /// deadline, then join every thread and return what happened.
    ///
    /// Sessions already *running* past the deadline cannot be preempted;
    /// they finish or hit their read timeout — which is why
    /// [`ServerConfig::session_read_timeout`] bounds how long this call
    /// can block past the deadline.
    pub fn shutdown(mut self, drain: Duration) -> DrainReport {
        let deadline = Instant::now() + drain;
        *self.shared.drain_deadline.lock().unwrap() = Some(deadline);
        self.shared.draining.store(true, Ordering::SeqCst);

        // Drain: wait until every admitted task resolved or time is up.
        loop {
            let report = self.engine.report();
            if report.completed + report.failed >= report.submitted {
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        // Stop the accept loop (a wake-up connect unblocks `accept`).
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.listen_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.greeters.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        // Stop the operator endpoint the same way.
        self.shared.stop_ops.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.ops_addr);
        if let Some(handle) = self.ops.take() {
            let _ = handle.join();
        }

        // Greeters are joined, so ours is the last engine handle: consume
        // it to drain the queue (stragglers past the deadline self-drop)
        // and join the workers. The defensive arm keeps shutdown total if
        // that invariant is ever broken.
        let engine = match Arc::try_unwrap(self.engine) {
            Ok(engine) => engine.shutdown(),
            Err(arc) => arc.report(),
        };
        let counter = |name: &str| self.shared.metrics.counter(name).get();
        DrainReport {
            completed: counter("server_sessions_completed"),
            failed: counter("server_sessions_failed"),
            dropped: counter("server_sessions_dropped_drain"),
            rejected_draining: counter("server_sessions_rejected_draining"),
            engine,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    engine: &Arc<Engine>,
    greeters: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop_accepting.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop_accepting.load(Ordering::SeqCst) {
            return; // the wake-up connect, or a straggler past the drain
        }
        let shared = Arc::clone(shared);
        let engine = Arc::clone(engine);
        let handle = std::thread::Builder::new()
            .name("ppds-server-greeter".into())
            .spawn(move || greet(stream, &shared, &engine))
            .expect("spawn greeter");
        let mut slots = greeters.lock().unwrap();
        // Reap finished greeters so the vec tracks live threads only.
        let mut live = Vec::with_capacity(slots.len() + 1);
        for h in slots.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        live.push(handle);
        *slots = live;
    }
}

/// Whether `mode`'s in-session handshake requires equal dimensions — must
/// agree with the mode drivers' `HandshakeProfile`s so the preamble rejects
/// exactly what the session handshake would.
fn dim_must_match(mode: Mode) -> bool {
    mode != Mode::Vertical
}

/// One connection's preamble: classify, admit or refuse, hand off.
fn greet(stream: TcpStream, shared: &Arc<Shared>, engine: &Arc<Engine>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    let Ok(mut chan) = TcpChannel::from_stream(stream) else {
        return;
    };
    let refuse = |chan: &mut TcpChannel, reply: ServerReply, counter: &str| {
        // Count before replying so a client that has read the refusal
        // already sees it reflected in a metrics scrape.
        shared.metrics.counter(counter).inc();
        let _ = chan.send(&reply);
    };
    if shared.draining.load(Ordering::SeqCst) {
        refuse(
            &mut chan,
            ServerReply::Draining,
            "server_sessions_rejected_draining",
        );
        return;
    }
    if chan
        .set_read_timeout(Some(shared.cfg.handshake_timeout))
        .is_err()
    {
        return;
    }
    let hello: Hello = match chan.recv() {
        Ok(hello) => hello,
        Err(TransportError::Timeout) => {
            shared.metrics.counter("server_handshake_timeouts").inc();
            return;
        }
        Err(_) => return,
    };

    let Some(mode) = hello.mode() else {
        refuse(
            &mut chan,
            ServerReply::Unsupported {
                detail: "preamble carries no known protocol mode".into(),
            },
            "server_sessions_rejected_incompatible",
        );
        return;
    };
    let Some(host) = shared.cfg.hosted.iter().find(|h| h.data.mode() == mode) else {
        refuse(
            &mut chan,
            ServerReply::Unsupported {
                detail: format!("mode {mode} is not hosted here"),
            },
            "server_sessions_rejected_incompatible",
        );
        return;
    };

    // Adopt the client's negotiable knobs, then require agreement on
    // everything protocol-semantic. The outcome is cached per preamble
    // fingerprint: a reconnecting client with unchanged content reuses the
    // admission-checked config and skips re-negotiation.
    let fingerprint = hello.negotiation_fingerprint();
    let cached = shared.negotiated.lock().unwrap().get(&fingerprint).copied();
    let scfg = if let Some(cfg) = cached {
        shared
            .metrics
            .counter("server_negotiation_cache_hits")
            .inc();
        cfg
    } else {
        shared
            .metrics
            .counter("server_negotiation_cache_misses")
            .inc();
        let scfg = host
            .cfg
            .with_batching(hello.batching().unwrap_or(host.cfg.batching))
            .with_packing(hello.packing().unwrap_or(host.cfg.packing))
            .with_pruning(hello.pruning().unwrap_or(host.cfg.pruning));
        let (n, dim) = host.data.shape();
        let mine = Hello::for_session(&scfg, mode, n, dim);
        if let Err(err) = mine.check_against(&hello, dim_must_match(mode)) {
            let reply = match err {
                CoreError::HandshakeMismatch {
                    field,
                    ours,
                    theirs,
                } => ServerReply::Incompatible {
                    field: field.into(),
                    ours,
                    theirs,
                },
                other => ServerReply::Unsupported {
                    detail: other.to_string(),
                },
            };
            refuse(&mut chan, reply, "server_sessions_rejected_incompatible");
            return;
        }
        shared.negotiated.lock().unwrap().insert(fingerprint, scfg);
        scfg
    };

    // Admission: depth check, grant, Accept, submit — atomic under the
    // admission lock so racing greeters cannot oversubscribe the cap.
    let _admission = shared.admission.lock().unwrap();
    let depth = engine.queue_depth();
    if depth >= shared.cfg.queue_cap {
        refuse(
            &mut chan,
            ServerReply::Busy {
                depth: depth as u64,
                cap: shared.cfg.queue_cap as u64,
            },
            "server_sessions_rejected_busy",
        );
        return;
    }
    let sid = shared.registry.admit(
        hello.session_id().unwrap_or(0),
        mode,
        peer,
        scfg.batching,
        scfg.packing,
    );
    // Count before replying: a client that has read `Accept` must already
    // be visible in the gauges a concurrent scrape reads.
    shared.metrics.counter("server_sessions_accepted").inc();
    shared.metrics.gauge("server_active_sessions").inc();
    if chan.send(&ServerReply::Accept { session_id: sid }).is_err() {
        shared.registry.set_state(sid, SessionState::Failed);
        shared.metrics.counter("server_sessions_failed").inc();
        shared.metrics.gauge("server_active_sessions").dec();
        return;
    }
    let _ = chan.set_read_timeout(shared.cfg.session_read_timeout);

    let task_shared = Arc::clone(shared);
    let role = host.role;
    let data = host.data.clone();
    let submitted = engine.try_submit_task(
        "server-session",
        Box::new(move || run_hosted(&task_shared, chan, sid, scfg, role, data)),
    );
    if submitted.is_err() {
        // Unreachable while the server owns the engine (it runs unbounded),
        // but never strand an accepted client silently.
        shared.registry.set_state(sid, SessionState::Dropped);
        shared.metrics.gauge("server_active_sessions").dec();
        shared
            .metrics
            .counter("server_sessions_dropped_drain")
            .inc();
    }
}

/// The admitted session's worker-side body.
fn run_hosted(
    shared: &Arc<Shared>,
    mut chan: TcpChannel,
    sid: u64,
    cfg: ProtocolConfig,
    role: Party,
    data: PartyData,
) -> Result<(), String> {
    if let Some(deadline) = *shared.drain_deadline.lock().unwrap() {
        if Instant::now() >= deadline {
            shared.registry.set_state(sid, SessionState::Dropped);
            shared
                .metrics
                .counter("server_sessions_dropped_drain")
                .inc();
            shared.metrics.gauge("server_active_sessions").dec();
            return Err(format!("session {sid} dropped: drain deadline passed"));
        }
    }
    shared.registry.set_state(sid, SessionState::Running);
    let mode = data.mode();
    let keypair = hot_keypair(shared, cfg.key_bits);
    let mut participant = Participant::new(cfg)
        .role(role)
        .data(data)
        .seed(session_seed(shared.cfg.base_seed, sid))
        .keypair(keypair)
        .expect("hot keypair is generated at cfg.key_bits");
    if shared.cfg.record_traces {
        participant = participant.trace(SpanRecorder::new());
    }
    let result = participant.run(&mut chan);
    shared.metrics.gauge("server_active_sessions").dec();
    match result {
        Ok(outcome) => {
            shared
                .metrics
                .record_traffic(mode.name(), outcome.output.traffic);
            shared
                .registry
                .finish(sid, SessionState::Completed, outcome.trace);
            shared.metrics.counter("server_sessions_completed").inc();
            Ok(())
        }
        Err(err) => {
            shared.registry.finish(sid, SessionState::Failed, None);
            shared.metrics.counter("server_sessions_failed").inc();
            Err(format!("session {sid} ({mode}): {err}"))
        }
    }
}

/// Returns the server's long-lived keypair for `key_bits`, generating it
/// (and attaching the fixed-base exponentiation combs) on first use. Every
/// later session at the same security parameter skips keygen entirely —
/// the dominant per-connection setup cost for realistic key sizes.
///
/// The cache lock is held across generation on purpose: two racing first
/// sessions would otherwise both pay keygen, and one result would be
/// discarded. Hits and misses surface as
/// `server_keypair_cache_hits` / `server_keypair_cache_misses`.
///
/// Determinism: the key derives from `base_seed` and `key_bits` only, so a
/// restarted server with the same config reuses the same key material —
/// session outcomes never depend on key bytes, but operators diffing
/// traces across restarts appreciate stable moduli.
fn hot_keypair(shared: &Shared, key_bits: usize) -> Keypair {
    let mut cache = shared.keypairs.lock().unwrap();
    if let Some(kp) = cache.get(&key_bits) {
        shared.metrics.counter("server_keypair_cache_hits").inc();
        return kp.clone();
    }
    shared.metrics.counter("server_keypair_cache_misses").inc();
    let mut rng = StdRng::seed_from_u64(session_seed(
        shared.cfg.base_seed ^ 0x4B45_5947_454E_2121, // "KEYGEN!!"
        key_bits as u64,
    ));
    let mut keypair = Keypair::generate(key_bits, &mut rng);
    // No-op for standard-generator keys (the `(1+n)^m` shortcut wins), but
    // general-generator deployments get their comb tables warmed once here
    // instead of per session.
    keypair.public = keypair.public.clone().with_exp_kernels();
    cache.insert(key_bits, keypair.clone());
    keypair
}

/// A ready-made [`HostedMode`] helper for demos and the binary: hosts
/// `data` as `role` under `cfg`.
pub fn hosted(cfg: ProtocolConfig, role: Party, data: PartyData) -> HostedMode {
    HostedMode { cfg, role, data }
}
