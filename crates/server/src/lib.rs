//! `ppds-server`: the long-running front-end for the privacy-preserving
//! DBSCAN protocols.
//!
//! A [`Server`] listens on two ports: a protocol port where each
//! connection speaks a one-frame wire-v3 preamble (an ordinary
//! [`ppdbscan::session::Hello`] plus a session-id field) and, when
//! admitted, runs an untouched [`ppdbscan::session::Participant`] session
//! against the server's hosted data; and an operator port serving plain
//! HTTP/1.0 text (`/metrics`, `/healthz`, `/sessions`, `/trace/<id>`,
//! `/shutdown`).
//!
//! Concurrency comes from the `ppds-engine` worker pool: each admitted
//! session is one engine task, so the engine's `engine_queue_depth` gauge
//! doubles as the server's admission signal — connections arriving above
//! [`ServerConfig::queue_cap`] are refused with a typed
//! [`proto::ServerReply::Busy`] before any protocol work starts. Each
//! session derives its own seed via [`session_seed`], so sessions are
//! isolated and individually reproducible: a direct in-process run with
//! the same seeds produces byte-identical labels, leakage, and ledgers
//! (pinned by `tests/server_e2e.rs`).

pub mod client;
pub mod config;
pub mod http;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::{open_session, run_session, ClientError, ServerSession};
pub use config::{session_seed, HostedMode, ServerConfig};
pub use http::ops_get;
pub use proto::ServerReply;
pub use registry::{SessionInfo, SessionRegistry, SessionState};
pub use server::{hosted, DrainReport, Server};
