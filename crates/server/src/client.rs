//! Client-side helpers for talking to a [`crate::Server`]: open a
//! connection, speak the preamble, then run an ordinary
//! [`Participant`] over the accepted channel.

use crate::proto::ServerReply;
use ppdbscan::session::{Hello, Participant, SessionOutcome};
use ppdbscan::CoreError;
use ppds_transport::tcp::TcpChannel;
use ppds_transport::{Channel, TransportError};
use std::net::SocketAddr;
use std::time::Duration;

/// Everything that can go wrong between a client and the server, with the
/// server's typed refusals surfaced as first-class variants so callers can
/// tell "retry later" from "fix your config".
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect refused, timeout, disconnect).
    Transport(TransportError),
    /// The server's queue is full; retry later.
    Busy {
        /// Sessions waiting when the connection was refused.
        depth: u64,
        /// The server's queue cap.
        cap: u64,
    },
    /// The server is shutting down; find another or retry much later.
    Draining,
    /// A protocol-semantic field disagrees with the server's hosting.
    Incompatible {
        /// The offending handshake field.
        field: String,
        /// The server's value.
        ours: u64,
        /// This client's value.
        theirs: u64,
    },
    /// The server cannot serve this request at all.
    Unsupported(String),
    /// The session was admitted but the protocol itself failed.
    Protocol(CoreError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Busy { depth, cap } => {
                write!(f, "server busy: {depth} sessions waiting, cap {cap}")
            }
            ClientError::Draining => write!(f, "server is draining"),
            ClientError::Incompatible {
                field,
                ours,
                theirs,
            } => write!(
                f,
                "incompatible {field}: server has {ours}, client sent {theirs}"
            ),
            ClientError::Unsupported(detail) => write!(f, "unsupported: {detail}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Transport(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<CoreError> for ClientError {
    fn from(e: CoreError) -> Self {
        ClientError::Protocol(e)
    }
}

/// An admitted connection: the preamble succeeded, the server granted
/// `session_id`, and the protocol handshake runs next on `chan`.
pub struct ServerSession {
    chan: TcpChannel,
    session_id: u64,
}

impl ServerSession {
    /// The id the server granted (equal to the proposal when it was free).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Runs the participant's half of the session over the admitted
    /// channel. The participant must be the same one (config- and
    /// data-wise) the preamble described.
    pub fn run(mut self, participant: Participant) -> Result<SessionOutcome, ClientError> {
        Ok(participant.run(&mut self.chan)?)
    }

    /// Surrenders the raw channel (tests that drive the wire directly).
    pub fn into_channel(self) -> TcpChannel {
        self.chan
    }
}

/// Connects to `addr` and speaks the preamble for `participant`,
/// proposing `session_id` (0 = let the server assign one). On `Accept`
/// the returned [`ServerSession`] is ready for [`ServerSession::run`];
/// every refusal maps to its typed [`ClientError`] variant.
pub fn open_session(
    addr: &SocketAddr,
    participant: &Participant,
    session_id: u64,
    timeout: Duration,
) -> Result<ServerSession, ClientError> {
    let data = participant.party_data().ok_or_else(|| {
        ClientError::Protocol(CoreError::Config(
            "participant needs data before opening a server session".into(),
        ))
    })?;
    let (n, dim) = data.shape();
    let hello =
        Hello::for_session(participant.config(), data.mode(), n, dim).with_session_id(session_id);

    let mut chan = TcpChannel::connect_timeout(addr, timeout)?;
    chan.set_read_timeout(Some(timeout))?;
    chan.send(&hello)?;
    let reply: ServerReply = chan.recv()?;
    match reply {
        ServerReply::Accept { session_id } => {
            chan.set_read_timeout(None)?;
            Ok(ServerSession { chan, session_id })
        }
        ServerReply::Busy { depth, cap } => Err(ClientError::Busy { depth, cap }),
        ServerReply::Draining => Err(ClientError::Draining),
        ServerReply::Incompatible {
            field,
            ours,
            theirs,
        } => Err(ClientError::Incompatible {
            field,
            ours,
            theirs,
        }),
        ServerReply::Unsupported { detail } => Err(ClientError::Unsupported(detail)),
    }
}

/// [`open_session`] + [`ServerSession::run`] in one call, returning the
/// granted id alongside the outcome.
pub fn run_session(
    addr: &SocketAddr,
    participant: Participant,
    session_id: u64,
    timeout: Duration,
) -> Result<(u64, SessionOutcome), ClientError> {
    let session = open_session(addr, &participant, session_id, timeout)?;
    let id = session.session_id();
    let outcome = session.run(participant)?;
    Ok((id, outcome))
}
