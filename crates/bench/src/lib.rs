#![warn(missing_docs)]

//! Shared utilities for the experiment harness and the Criterion benches:
//! canonical workloads, table formatting, and small measurement helpers.
//!
//! The experiment binary (`cargo run -p ppds-bench --bin experiments --release`)
//! regenerates every table and figure of EXPERIMENTS.md; the Criterion
//! benches (`cargo bench`) cover the primitive costs.

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_data_pair, PartyData};
use ppdbscan::{ArbitraryPartition, CoreError, PartyOutput, VerticalPartition};
use ppds_dbscan::datagen::{split_alternating, standard_blobs};
use ppds_dbscan::{DbscanParams, Point, Quantizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for every experiment (results must be reproducible).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// [`run_data_pair`] over horizontally partitioned complete records.
pub fn run_horizontal_pair(
    cfg: &ProtocolConfig,
    alice: &[Point],
    bob: &[Point],
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Horizontal(alice.to_vec()),
        PartyData::Horizontal(bob.to_vec()),
        rng_a,
        rng_b,
    )
}

/// [`run_data_pair`] on the enhanced (count-free) protocol.
pub fn run_enhanced_pair(
    cfg: &ProtocolConfig,
    alice: &[Point],
    bob: &[Point],
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Enhanced(alice.to_vec()),
        PartyData::Enhanced(bob.to_vec()),
        rng_a,
        rng_b,
    )
}

/// [`run_data_pair`] on a vertical partition.
pub fn run_vertical_pair(
    cfg: &ProtocolConfig,
    partition: &VerticalPartition,
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Vertical(partition.alice.clone()),
        PartyData::Vertical(partition.bob.clone()),
        rng_a,
        rng_b,
    )
}

/// [`run_data_pair`] on an arbitrary partition.
pub fn run_arbitrary_pair(
    cfg: &ProtocolConfig,
    partition: &ArbitraryPartition,
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Arbitrary(partition.alice_values.clone()),
        PartyData::Arbitrary(partition.bob_values.clone()),
        rng_a,
        rng_b,
    )
}

/// The canonical experiment workload: `n` lattice points in `dim`
/// dimensions forming three Gaussian blobs, split evenly between the
/// parties, with parameters that keep every blob clusterable.
pub struct Workload {
    /// All generated points (Alice's and Bob's interleaved).
    pub all: Vec<Point>,
    /// Alice's horizontal share (even indices).
    pub alice: Vec<Point>,
    /// Bob's horizontal share (odd indices).
    pub bob: Vec<Point>,
    /// Protocol configuration matched to the generator's lattice bound.
    pub cfg: ProtocolConfig,
}

/// Builds the canonical blob workload.
pub fn blob_workload(n: usize, dim: usize, seed: u64) -> Workload {
    let quantizer = Quantizer::new(1.0, 60);
    let per_cluster = (n / 3).max(1);
    let (all, _) = standard_blobs(&mut rng(seed), per_cluster, 3, dim, quantizer);
    let (alice, bob) = split_alternating(&all);
    let cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    );
    Workload {
        all,
        alice,
        bob,
        cfg,
    }
}

/// Prints a markdown table row, padding each cell to its column width.
pub fn print_row(widths: &[usize], cells: &[String]) {
    let mut line = String::from("|");
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!(" {cell:>width$} |"));
    }
    println!("{line}");
}

/// Prints a markdown table header plus separator.
pub fn print_header(widths: &[usize], names: &[&str]) {
    print_row(
        widths,
        &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let mut line = String::from("|");
    for width in widths {
        line.push_str(&format!("{}|", "-".repeat(width + 2)));
    }
    println!("{line}");
}

/// Formats a byte count with a binary-prefix unit.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_split() {
        let w1 = blob_workload(30, 2, 7);
        let w2 = blob_workload(30, 2, 7);
        assert_eq!(w1.all, w2.all);
        assert_eq!(w1.alice.len() + w1.bob.len(), w1.all.len());
        assert!(w1.alice.len().abs_diff(w1.bob.len()) <= 1);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
