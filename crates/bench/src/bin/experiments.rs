//! Experiment regenerator: one sub-command per experiment in EXPERIMENTS.md
//! (which records a full run of `all`). The paper has no empirical tables —
//! its evaluation is the communication-complexity analyses of §4.2.2,
//! §4.3.2, §5.1, the privacy theorems and the Figure 1 attack — so every
//! experiment here measures one of those analytical claims.
//!
//! Usage:
//! `cargo run -p ppds-bench --bin experiments --release -- [e1..e13|e13smoke|f1|all]`
//! `cargo run -p ppds-bench --bin experiments --release -- --json <path>`
//!
//! `--json <path>` runs the round-batching (E10), slot-packing (E11) and
//! sharing-backend (E12) protocol sweeps and writes per-protocol
//! `{backend, batching, packing, rounds, messages, bytes, modeled_lan_ms,
//! modeled_wan_ms}` records — the bench trajectory future PRs diff against
//! (the repo keeps one run as `BENCH_protocols.json`).
//!
//! `--backend <paillier|sharing>` restricts the sweeps (and the trajectory)
//! to one SMC substrate; by default both are swept so the trajectory carries
//! per-backend rows. E11 (slot packing) and E12 (the cross-backend
//! comparison) are Paillier-anchored and are skipped under
//! `--backend sharing`, which instead prints the batching sweep on the
//! sharing substrate.

use ppdbscan::config::ProtocolConfig;
use ppdbscan::session::{run_participants, Participant, PartyData};
use ppdbscan::{ArbitraryPartition, PartyOutput, VerticalPartition};
use ppds_bench::{
    blob_workload, fmt_bytes, print_header, print_row, rng, run_arbitrary_pair, run_enhanced_pair,
    run_horizontal_pair, run_vertical_pair,
};
use ppds_bigint::{BigInt, BigUint};
use ppds_dbscan::datagen::{cluster_in_ring, split_alternating, two_moons};
use ppds_dbscan::{dbscan, dbscan_with_external_density, eval, DbscanParams, Point, Quantizer};
use ppds_observe::{chrome_trace, SessionTrace, SpanRecorder};
use ppds_paillier::Keypair;
use ppds_smc::compare::{compare_alice, compare_bob, CmpOp, Comparator, ComparisonDomain};
use ppds_smc::kth::{kth_smallest_alice, kth_smallest_bob, SelectionMethod};
use ppds_smc::millionaires;
use ppds_smc::multiplication::{mul_keyholder, mul_peer};
use ppds_smc::{BackendKind, Party, ProtocolContext};
use ppds_transport::{duplex, Channel, CostModel};
use std::sync::Arc;
use std::time::Instant;

fn section(title: &str) {
    println!("\n### {title}\n");
}

/// E1 — §4.2.2: horizontal protocol communication is
/// `O(c1·m·l(n−l) + c2·n0·l(n−l))`.
fn e1() {
    section("E1  Horizontal protocol: communication vs n, m (§4.2.2)");
    println!("Sweep n (m = 2, even split l = n/2):\n");
    let widths = [4, 4, 6, 9, 12, 13, 14, 12];
    print_header(
        &widths,
        &[
            "n",
            "l",
            "pairs",
            "queries",
            "comparisons",
            "wire bytes",
            "modeled Yao",
            "bytes/pair",
        ],
    );
    for n in [12usize, 24, 36, 48] {
        let w = blob_workload(n, 2, 1000 + n as u64);
        let (a, b) = run_horizontal_pair(&w.cfg, &w.alice, &w.bob, rng(1), rng(2)).unwrap();
        let queries =
            a.leakage.count_kind("neighbor_count") + b.leakage.count_kind("neighbor_count");
        let pairs = a.yao.comparisons; // = Σ queries × peer-size
        print_row(
            &widths,
            &[
                format!("{}", w.all.len()),
                format!("{}", w.alice.len()),
                format!("{pairs}"),
                format!("{queries}"),
                format!("{}", a.yao.comparisons),
                fmt_bytes(a.traffic.total_bytes()),
                fmt_bytes(a.yao.modeled_bytes),
                format!("{}", a.traffic.total_bytes() / pairs.max(1)),
            ],
        );
    }
    println!("\nSweep m at n = 24 (ciphertext term `c1·m` isolated as wire-byte delta):\n");
    let widths = [4, 12, 13, 18];
    print_header(
        &widths,
        &["m", "comparisons", "wire bytes", "bytes/(pair*m)"],
    );
    for m in [2usize, 4, 8] {
        let w = blob_workload(24, m, 2000 + m as u64);
        let (a, _) = run_horizontal_pair(&w.cfg, &w.alice, &w.bob, rng(3), rng(4)).unwrap();
        print_row(
            &widths,
            &[
                format!("{m}"),
                format!("{}", a.yao.comparisons),
                fmt_bytes(a.traffic.total_bytes()),
                format!(
                    "{:.1}",
                    a.traffic.total_bytes() as f64 / (a.yao.comparisons.max(1) as f64 * m as f64)
                ),
            ],
        );
    }
    println!("\nSweep coordinate bound C at n = 12, m = 2 (Yao domain n0 ∝ m·C²):\n");
    let widths = [5, 9, 12, 16];
    print_header(&widths, &["C", "n0", "modeled Yao", "modeled/cmp (B)"]);
    // Fixed small points (within ±10), only the *agreed* bound C grows —
    // the domain, and with it the faithful-Yao cost, scales as C².
    let alice: Vec<Point> = (0..6).map(|i| Point::new(vec![i * 3 - 8, 2])).collect();
    let bob: Vec<Point> = (0..6).map(|i| Point::new(vec![i * 3 - 7, -2])).collect();
    for bound in [15i64, 30, 60, 120] {
        let mut cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 81,
                min_pts: 3,
            },
            bound,
        );
        cfg.key_bits = 256;
        let domain = ppdbscan::domain::hdp_domain(&cfg, 2);
        let (a, _) = run_horizontal_pair(&cfg, &alice, &bob, rng(5), rng(6)).unwrap();
        print_row(
            &widths,
            &[
                format!("{bound}"),
                format!("{}", domain.n0()),
                fmt_bytes(a.yao.modeled_bytes),
                format!("{}", a.yao.modeled_bytes / a.yao.comparisons.max(1)),
            ],
        );
    }
}

/// E2 — §4.3.2: vertical protocol communication is `O(c2·n0·n²)`.
fn e2() {
    section("E2  Vertical protocol: communication vs n (§4.3.2)");
    let widths = [4, 9, 12, 14, 13, 14];
    print_header(
        &widths,
        &[
            "n",
            "queries",
            "comparisons",
            "cmp/n²",
            "wire bytes",
            "modeled Yao",
        ],
    );
    for n in [9usize, 18, 27, 36] {
        let w = blob_workload(n, 2, 4000 + n as u64);
        let partition = VerticalPartition::split(&w.all, 1);
        let (a, _) = run_vertical_pair(&w.cfg, &partition, rng(7), rng(8)).unwrap();
        let n_actual = w.all.len();
        print_row(
            &widths,
            &[
                format!("{n_actual}"),
                format!("{}", a.leakage.count_kind("neighbor_count")),
                format!("{}", a.yao.comparisons),
                format!(
                    "{:.2}",
                    a.yao.comparisons as f64 / (n_actual * n_actual) as f64
                ),
                fmt_bytes(a.traffic.total_bytes()),
                fmt_bytes(a.yao.modeled_bytes),
            ],
        );
    }
    println!("\ncmp/n² stays ~constant: the §4.3.2 quadratic term, with the constant");
    println!("equal to (region queries per point) ≈ 1 when most points join clusters.");
}

/// E3 — §5.1: enhanced protocol stays within the same asymptotic envelope;
/// the constant-factor and mask-width (σ) trade-offs quantified.
fn e3() {
    section("E3  Basic vs enhanced protocol (§5.1) and the σ ablation");
    let w = blob_workload(24, 2, 5000);
    let (basic, _) = run_horizontal_pair(&w.cfg, &w.alice, &w.bob, rng(9), rng(10)).unwrap();
    let widths = [22, 12, 13, 14];
    print_header(
        &widths,
        &["protocol", "comparisons", "wire bytes", "modeled Yao"],
    );
    print_row(
        &widths,
        &[
            "basic".into(),
            format!("{}", basic.yao.comparisons),
            fmt_bytes(basic.traffic.total_bytes()),
            fmt_bytes(basic.yao.modeled_bytes),
        ],
    );
    for (label, selection) in [
        ("enhanced/repeated-min", SelectionMethod::RepeatedMin),
        ("enhanced/quickselect", SelectionMethod::QuickSelect),
    ] {
        let mut cfg = w.cfg;
        cfg.selection = selection;
        let (enh, _) = run_enhanced_pair(&cfg, &w.alice, &w.bob, rng(11), rng(12)).unwrap();
        assert_eq!(enh.clustering, basic.clustering, "same output required");
        print_row(
            &widths,
            &[
                label.into(),
                format!("{}", enh.yao.comparisons),
                fmt_bytes(enh.traffic.total_bytes()),
                fmt_bytes(enh.yao.modeled_bytes),
            ],
        );
    }
    println!("\nMask-width ablation (enhanced, repeated-min): σ drives the share-");
    println!("comparison domain and therefore the faithful-Yao model cost:\n");
    let widths = [4, 14, 14];
    print_header(&widths, &["σ", "share n0", "modeled Yao"]);
    for mask_bits in [4u32, 8, 12, 16, 20] {
        let mut cfg = w.cfg;
        cfg.mask_bits = mask_bits;
        let n0 = ppdbscan::domain::enhanced_share_domain(&cfg, 2).n0();
        let (enh, _) = run_enhanced_pair(&cfg, &w.alice, &w.bob, rng(13), rng(14)).unwrap();
        print_row(
            &widths,
            &[
                format!("{mask_bits}"),
                format!("{n0:.2e}"),
                fmt_bytes(enh.yao.modeled_bytes),
            ],
        );
    }
}

/// E4 — correctness contract: private runs vs plaintext references.
fn e4() {
    section("E4  Correctness: private protocols vs plaintext DBSCAN");
    let quantizer = Quantizer::new(1.0, 60);
    let (moons, _) = two_moons(&mut rng(20), 12, 30.0, 1.0, quantizer);
    let (rings, _) = cluster_in_ring(&mut rng(21), 10, 14, 2.0, 25.0, 0.5, quantizer);
    let blob = blob_workload(24, 2, 6000);
    let workloads: Vec<(&str, Vec<Point>, DbscanParams)> = vec![
        ("blobs", blob.all.clone(), blob.cfg.params),
        (
            "moons",
            moons,
            DbscanParams {
                eps_sq: 81,
                min_pts: 3,
            },
        ),
        (
            "rings",
            rings,
            DbscanParams {
                eps_sq: 100,
                min_pts: 3,
            },
        ),
    ];
    let widths = [7, 16, 17, 17, 21];
    print_header(
        &widths,
        &[
            "data",
            "vertical==plain",
            "arbitrary==plain",
            "horiz==reference",
            "horiz RI vs central",
        ],
    );
    for (name, records, params) in workloads {
        let cfg = ProtocolConfig::new(params, 60);
        let reference = dbscan(&records, params);

        let vp = VerticalPartition::split(&records, 1);
        let (v, _) = run_vertical_pair(&cfg, &vp, rng(22), rng(23)).unwrap();

        let ap = ArbitraryPartition::random(&mut rng(24), &records);
        let (ar, _) = run_arbitrary_pair(&cfg, &ap, rng(25), rng(26)).unwrap();

        let (alice_pts, bob_pts) = split_alternating(&records);
        let (h, _) = run_horizontal_pair(&cfg, &alice_pts, &bob_pts, rng(27), rng(28)).unwrap();
        let h_ref = dbscan_with_external_density(&alice_pts, &bob_pts, params);
        let central_alice = ppds_dbscan::Clustering {
            labels: dbscan(&records, params).labels[..]
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(_, l)| *l)
                .collect(),
            num_clusters: reference.num_clusters,
        };
        print_row(
            &widths,
            &[
                name.into(),
                format!("{}", v.clustering == reference),
                format!("{}", ar.clustering == reference),
                format!("{}", h.clustering == h_ref),
                format!("{:.4}", eval::rand_index(&h.clustering, &central_alice)),
            ],
        );
    }
    println!("\nThe horizontal protocol matches its own reference semantics exactly;");
    println!("vs centralized DBSCAN it diverges only when clusters are bridged solely");
    println!("by peer points (RI < 1 would flag that; dense splits give RI = 1).");
}

/// E5 — Theorem 9 vs 10 vs 11: measured leakage-event profiles.
fn e5() {
    section("E5  Leakage profiles (Theorems 9, 10, 11)");
    let w = blob_workload(24, 2, 7000);
    let (basic_a, basic_b) =
        run_horizontal_pair(&w.cfg, &w.alice, &w.bob, rng(30), rng(31)).unwrap();
    let (enh_a, enh_b) = run_enhanced_pair(&w.cfg, &w.alice, &w.bob, rng(32), rng(33)).unwrap();
    let vp = VerticalPartition::split(&w.all, 1);
    let (vert_a, _) = run_vertical_pair(&w.cfg, &vp, rng(34), rng(35)).unwrap();

    let widths = [26, 15, 11, 13, 15];
    print_header(
        &widths,
        &[
            "run",
            "neighbor_count",
            "core_bit",
            "own_matched",
            "threshold_rank",
        ],
    );
    for (name, log) in [
        ("basic horizontal (Alice)", &basic_a.leakage),
        ("basic horizontal (Bob)", &basic_b.leakage),
        ("enhanced (Alice)", &enh_a.leakage),
        ("enhanced (Bob)", &enh_b.leakage),
        ("vertical (Alice)", &vert_a.leakage),
    ] {
        print_row(
            &widths,
            &[
                name.into(),
                format!("{}", log.count_kind("neighbor_count")),
                format!("{}", log.count_kind("core_point_bit")),
                format!("{}", log.count_kind("own_point_matched")),
                format!("{}", log.count_kind("threshold_rank")),
            ],
        );
    }
    println!("\nTheorem 9: counts leak in the basic run. Theorem 11: the enhanced run");
    println!("replaces every count with a single core bit. Theorem 10: the vertical");
    println!("protocol's output itself is the neighborhood structure.");
}

/// E6 — §4.1: the Multiplication Protocol costs O(c1) per invocation.
fn e6() {
    section("E6  Multiplication Protocol cost vs key size (§4.1)");
    let widths = [9, 12, 14, 12];
    print_header(&widths, &["key bits", "bytes/call", "time/call", "keygen"]);
    for key_bits in [128usize, 256, 512, 1024] {
        let t0 = Instant::now();
        let keypair = Keypair::generate(key_bits, &mut rng(40));
        let keygen = t0.elapsed();
        let reps = 20;
        let (mut kchan, mut pchan) = duplex();
        let kp = keypair.clone();
        let handle = std::thread::spawn(move || {
            let kctx = ProtocolContext::new(41);
            for i in 0..reps {
                let _ = mul_keyholder(
                    &mut kchan,
                    &kp,
                    &BigInt::from_i64(37 + i),
                    &kctx.at(i as u64),
                )
                .unwrap();
            }
            kchan.metrics()
        });
        let pctx = ProtocolContext::new(42);
        let t0 = Instant::now();
        for i in 0..reps {
            mul_peer(
                &mut pchan,
                &keypair.public,
                &BigInt::from_i64(53 + i),
                &BigUint::from_u64(1 << 30),
                &pctx.at(i as u64),
            )
            .unwrap();
        }
        let per_call = t0.elapsed() / reps as u32;
        let metrics = handle.join().unwrap();
        print_row(
            &widths,
            &[
                format!("{key_bits}"),
                format!("{}", metrics.total_bytes() / reps as u64),
                format!("{per_call:.2?}"),
                format!("{keygen:.2?}"),
            ],
        );
    }
    println!("\nBytes/call = 2 ciphertexts ≈ 4·(key bits)/8: the O(c1) claim, with");
    println!("c1 the ciphertext width. Time is dominated by the Paillier decryption.");
}

/// E7 — §3.8: YMPP costs O(c2·n0) bits and O(n0) decryptions.
fn e7() {
    section("E7  Yao's Millionaires' Protocol cost vs domain size n0 (§3.8)");
    let keypair = Keypair::generate(256, &mut rng(50));
    let widths = [6, 13, 13, 12, 13];
    print_header(
        &widths,
        &["n0", "measured B", "modeled B", "time", "decryptions"],
    );
    for n0 in [16u64, 64, 256, 1024] {
        let domain = ComparisonDomain::new(1, n0 as i64 - 1);
        assert_eq!(domain.n0(), n0);
        let (mut achan, mut bchan) = duplex();
        let kp = keypair.clone();
        let handle = std::thread::spawn(move || {
            compare_alice(
                Comparator::Yao,
                &mut achan,
                &kp,
                2,
                CmpOp::Lt,
                &domain,
                false,
                &ProtocolContext::new(51),
            )
            .unwrap();
            achan.metrics()
        });
        let t0 = Instant::now();
        compare_bob(
            Comparator::Yao,
            &mut bchan,
            &keypair.public,
            5.min(n0 as i64 - 2),
            CmpOp::Lt,
            &domain,
            false,
            &ProtocolContext::new(52),
        )
        .unwrap();
        let elapsed = t0.elapsed();
        let metrics = handle.join().unwrap();
        let (m1, m2, m3) = millionaires::modeled_message_sizes(256, n0);
        print_row(
            &widths,
            &[
                format!("{n0}"),
                format!("{}", metrics.total_bytes()),
                format!("{}", m1 + m2 + m3 + 12),
                format!("{elapsed:.2?}"),
                format!("{n0}"),
            ],
        );
    }
    println!("\nMeasured bytes track the model within BigUint minimal-length noise;");
    println!("both scale linearly in n0 — the c2·n0 term of every complexity bound.");
}

/// E8 — §5's two selection algorithms: O(kn) repeated-min vs expected-O(n)
/// quickselect.
fn e8() {
    section("E8  k-th smallest selection: repeated-min vs quickselect (§5)");
    let keypair = Keypair::generate(64, &mut rng(60));
    let widths = [5, 5, 15, 14];
    print_header(&widths, &["n", "k", "repeated-min", "quickselect"]);
    for n in [16usize, 32, 64] {
        for k in [1usize, 4, n / 2, n - 1] {
            let mut counts = Vec::new();
            for method in [SelectionMethod::RepeatedMin, SelectionMethod::QuickSelect] {
                let mut r = rng(61);
                use rand::Rng as _;
                let dists: Vec<i64> = (0..n).map(|_| r.random_range(0..1000)).collect();
                let vs: Vec<i64> = (0..n).map(|_| r.random_range(-500..500)).collect();
                let us: Vec<i64> = dists.iter().zip(&vs).map(|(d, v)| d + v).collect();
                let domain = ComparisonDomain::symmetric(4000);
                let (mut achan, mut bchan) = duplex();
                let kp = keypair.clone();
                let handle = std::thread::spawn(move || {
                    kth_smallest_alice(
                        method,
                        Comparator::Ideal,
                        &mut achan,
                        &kp,
                        &us,
                        k,
                        &domain,
                        false,
                        &ProtocolContext::new(62),
                    )
                    .unwrap()
                });
                let outcome = kth_smallest_bob(
                    method,
                    Comparator::Ideal,
                    &mut bchan,
                    &keypair.public,
                    &vs,
                    k,
                    &domain,
                    false,
                    &ProtocolContext::new(63),
                )
                .unwrap();
                let _ = handle.join().unwrap();
                counts.push(outcome.comparisons);
            }
            print_row(
                &widths,
                &[
                    format!("{n}"),
                    format!("{k}"),
                    format!("{}", counts[0]),
                    format!("{}", counts[1]),
                ],
            );
        }
    }
    println!("\nRepeated-min grows with k (O(kn)); quickselect stays near-linear in n.");
    println!("Crossover sits at small k — matching §5's \"good for small k\" guidance.");
}

/// E9 — the multi-party extension (paper §6 future work): per-party cost
/// as the number of parties grows at fixed total data size.
fn e9() {
    section("E9  Multi-party extension: per-party cost vs K (total n fixed)");
    let widths = [4, 8, 13, 14, 13];
    print_header(
        &widths,
        &["K", "n/party", "wire/party", "comparisons", "counts seen"],
    );
    let total = 24usize;
    for k in [2usize, 3, 4, 6] {
        let w = blob_workload(total, 2, 8000);
        // Deal the same points round-robin to K parties.
        let mut parties: Vec<Vec<Point>> = vec![Vec::new(); k];
        for (i, p) in w.all.iter().enumerate() {
            parties[i % k].push(p.clone());
        }
        let outputs: Vec<PartyOutput> = ppdbscan::session::run_mesh_local(&w.cfg, &parties, 42)
            .unwrap()
            .into_iter()
            .map(|outcome| outcome.output)
            .collect();
        let avg_bytes: u64 =
            outputs.iter().map(|o| o.traffic.total_bytes()).sum::<u64>() / k as u64;
        let avg_cmp: u64 = outputs.iter().map(|o| o.yao.comparisons).sum::<u64>() / k as u64;
        let avg_counts: usize = outputs
            .iter()
            .map(|o| o.leakage.count_kind("neighbor_count"))
            .sum::<usize>()
            / k;
        print_row(
            &widths,
            &[
                format!("{k}"),
                format!("{}", parties[0].len()),
                fmt_bytes(avg_bytes),
                format!("{avg_cmp}"),
                format!("{avg_counts}"),
            ],
        );
    }
    println!("\nPer-party pair work is (n/K)·(n − n/K): it falls as K grows (each");
    println!("party queries fewer own points), while the leakage grows finer-grained");
    println!("(K−1 separate counts per query) — the trade the module docs discuss.");
}

/// One row of the round-batching sweep: a protocol family under one
/// framing, with the measured wire figures and modeled link times.
#[derive(Clone)]
struct BatchBenchRow {
    protocol: &'static str,
    backend: &'static str,
    batching: bool,
    packing: bool,
    rounds: u64,
    messages: u64,
    bytes: u64,
    lan_ms: f64,
    wan_ms: f64,
}

/// Runs one closure per two-party protocol family on the canonical n = 36
/// blob workload (shared by the batching and packing sweeps).
#[allow(clippy::type_complexity)]
fn protocol_runs<'a>(
    w: &'a ppds_bench::Workload,
    vp: &'a VerticalPartition,
    ap: &'a ArbitraryPartition,
) -> Vec<(
    &'static str,
    Box<dyn Fn(&ProtocolConfig) -> (PartyOutput, PartyOutput) + 'a>,
)> {
    vec![
        (
            "horizontal",
            Box::new(|cfg| run_horizontal_pair(cfg, &w.alice, &w.bob, rng(81), rng(82)).unwrap()),
        ),
        (
            "enhanced",
            Box::new(|cfg| run_enhanced_pair(cfg, &w.alice, &w.bob, rng(83), rng(84)).unwrap()),
        ),
        (
            // Quickselect partitions are the enhanced protocol's batchable
            // comparisons (repeated-min is sequential by construction), and
            // a higher MinPts forces the joint core tests to engage.
            "enhanced-quickselect",
            Box::new(|cfg| {
                let mut cfg = *cfg;
                cfg.selection = SelectionMethod::QuickSelect;
                cfg.params.min_pts = 6;
                run_enhanced_pair(&cfg, &w.alice, &w.bob, rng(83), rng(84)).unwrap()
            }),
        ),
        (
            "vertical",
            Box::new(|cfg| run_vertical_pair(cfg, vp, rng(85), rng(86)).unwrap()),
        ),
        (
            "arbitrary",
            Box::new(|cfg| run_arbitrary_pair(cfg, ap, rng(87), rng(88)).unwrap()),
        ),
    ]
}

fn row_from(protocol: &'static str, cfg: &ProtocolConfig, out: &PartyOutput) -> BatchBenchRow {
    let t = out.traffic;
    BatchBenchRow {
        protocol,
        backend: cfg.backend.name(),
        batching: cfg.batching,
        packing: cfg.packing,
        rounds: t.total_rounds(),
        messages: t.total_messages(),
        bytes: t.total_bytes(),
        lan_ms: CostModel::lan().estimate(&t).as_secs_f64() * 1e3,
        wan_ms: CostModel::wan().estimate(&t).as_secs_f64() * 1e3,
    }
}

/// Runs every two-party protocol family batched and unbatched on the
/// canonical n = 36 blob workload and returns one row per (protocol,
/// framing), all on the given SMC substrate. The per-protocol outputs are
/// asserted label- and leakage-identical across framings before any number
/// is reported.
fn batching_sweep(backend: BackendKind) -> Vec<BatchBenchRow> {
    let w = blob_workload(36, 2, 9_100);
    let vp = VerticalPartition::split(&w.all, 1);
    let ap = ArbitraryPartition::random(&mut rng(9_101), &w.all);
    let mut rows = Vec::new();
    for (protocol, run) in &protocol_runs(&w, &vp, &ap) {
        let plain_cfg = w.cfg.with_backend(backend);
        let batched_cfg = plain_cfg.with_batching(true);
        let plain = run(&plain_cfg);
        let batched = run(&batched_cfg);
        assert_eq!(plain.0.clustering, batched.0.clustering, "{protocol}");
        assert_eq!(plain.0.leakage, batched.0.leakage, "{protocol}");
        rows.push(row_from(protocol, &plain_cfg, &plain.0));
        rows.push(row_from(protocol, &batched_cfg, &batched.0));
    }
    rows
}

/// Runs every two-party protocol family with plaintext-slot packing on and
/// off (round batching on in both, so the delta isolates packing) on the
/// same workload and seeds as [`batching_sweep`]. Labels, leakage, and the
/// Yao ledger are asserted identical before any number is reported.
fn packing_sweep() -> Vec<BatchBenchRow> {
    // Slot packing is a Paillier transport concern, so this sweep always
    // runs on the default (Paillier) substrate.
    let w = blob_workload(36, 2, 9_100);
    let vp = VerticalPartition::split(&w.all, 1);
    let ap = ArbitraryPartition::random(&mut rng(9_101), &w.all);
    let mut rows = Vec::new();
    for (protocol, run) in &protocol_runs(&w, &vp, &ap) {
        let packed_cfg = w.cfg.with_batching(true).with_packing(true);
        let plain = run(&w.cfg.with_batching(true));
        let packed = run(&packed_cfg);
        assert_eq!(plain.0.clustering, packed.0.clustering, "{protocol}");
        assert_eq!(plain.0.leakage, packed.0.leakage, "{protocol}");
        assert_eq!(plain.0.yao, packed.0.yao, "{protocol}");
        rows.push(row_from(protocol, &packed_cfg, &packed.0));
    }
    rows
}

/// E10 — the round-batched pipeline: one message per neighborhood instead
/// of one per comparison; wire rounds (and with them modeled WAN latency)
/// collapse while bytes, logical messages, outputs, and leakage are
/// unchanged.
fn e10(backend: BackendKind) -> Vec<BatchBenchRow> {
    section(&format!(
        "E10  Round batching: wire rounds and modeled link time (n = 36, {})",
        backend.name()
    ));
    let rows = batching_sweep(backend);
    let widths = [11, 6, 8, 9, 11, 9, 10];
    print_header(
        &widths,
        &[
            "protocol",
            "batch",
            "rounds",
            "messages",
            "wire bytes",
            "LAN ms",
            "WAN ms",
        ],
    );
    for row in &rows {
        print_row(
            &widths,
            &[
                row.protocol.into(),
                if row.batching { "on" } else { "off" }.into(),
                format!("{}", row.rounds),
                format!("{}", row.messages),
                fmt_bytes(row.bytes),
                format!("{:.1}", row.lan_ms),
                format!("{:.0}", row.wan_ms),
            ],
        );
    }
    println!("\nLabels and leakage logs are identical across framings (asserted);");
    println!("rounds drop from O(candidates) to O(1) per neighborhood query, so");
    println!("the 20 ms-per-hop WAN model collapses by the same factor.");
    rows
}

/// E11 — plaintext-slot packing: the ciphertext-heavy response legs (DGK
/// verdict vectors, masked-distance and masked-product replies, the Ideal
/// comparator's verdict-sized padding) ride packed Paillier words, so
/// bytes — and keyholder decryptions — drop by roughly the packing factor
/// while labels, leakage, and the Yao ledger are unchanged (asserted).
fn e11(baseline: &[BatchBenchRow]) -> Vec<BatchBenchRow> {
    section("E11  Slot packing: wire bytes with packed response words (n = 36)");
    let packed = packing_sweep();
    let widths = [20, 5, 11, 11, 7, 10];
    print_header(
        &widths,
        &[
            "protocol",
            "pack",
            "wire bytes",
            "WAN ms",
            "bytes x",
            "rounds",
        ],
    );
    let mut rows = Vec::new();
    for row in packed {
        let unpacked = baseline
            .iter()
            .find(|r| r.protocol == row.protocol && r.batching)
            .expect("baseline row exists");
        for (r, factor) in [
            (unpacked, String::new()),
            (
                &row,
                format!("{:.1}x", unpacked.bytes as f64 / row.bytes as f64),
            ),
        ] {
            print_row(
                &widths,
                &[
                    r.protocol.into(),
                    if r.packing { "on" } else { "off" }.into(),
                    fmt_bytes(r.bytes),
                    format!("{:.0}", r.wan_ms),
                    factor.clone(),
                    format!("{}", r.rounds),
                ],
            );
        }
        rows.push(row);
    }
    println!("\nLabels, leakage, and the Yao ledger are identical packed vs unpacked");
    println!("(asserted); only the transport of masked responses changes. The DGK");
    println!("request leg (per-bit ciphertexts) cannot pack, which bounds that");
    println!("backend's end-to-end cut at ~2x; reply legs cut by the full capacity.");
    rows
}

/// E12 — DESIGN.md §14: the additive-sharing backend replaces every
/// ciphertext leg of the three SMC workhorses with 8-byte ring elements.
/// Each protocol family is run on packed Paillier (its best framing) and on
/// the sharing substrate; labels and leakage logs are asserted identical
/// before any number is reported, and the vertical protocol must cut wire
/// bytes by at least 10x (the PR's acceptance bar). The dealer-tape
/// precomputation the online run consumes is ledgered per row.
fn e12() -> Vec<BatchBenchRow> {
    section("E12  Secret-sharing backend vs packed Paillier (n = 36)");
    let w = blob_workload(36, 2, 9_100);
    let vp = VerticalPartition::split(&w.all, 1);
    let ap = ArbitraryPartition::random(&mut rng(9_101), &w.all);
    let widths = [20, 11, 11, 7, 8, 9, 11];
    print_header(
        &widths,
        &[
            "protocol",
            "paillier B",
            "sharing B",
            "cut",
            "triples",
            "compares",
            "offline B",
        ],
    );
    let mut rows = Vec::new();
    for (protocol, run) in &protocol_runs(&w, &vp, &ap) {
        let paillier_cfg = w.cfg.with_batching(true).with_packing(true);
        let sharing_plain_cfg = w.cfg.with_backend(BackendKind::Sharing);
        let sharing_cfg = sharing_plain_cfg.with_batching(true);
        let p = run(&paillier_cfg);
        let plain = run(&sharing_plain_cfg);
        let s = run(&sharing_cfg);
        assert_eq!(p.0.clustering, s.0.clustering, "{protocol}: backend parity");
        assert_eq!(p.0.leakage, s.0.leakage, "{protocol}: backend parity");
        assert_eq!(plain.0.clustering, s.0.clustering, "{protocol}: framing");
        assert_eq!(plain.0.leakage, s.0.leakage, "{protocol}: framing");
        let (pb, sb) = (p.0.traffic.total_bytes(), s.0.traffic.total_bytes());
        if *protocol == "vertical" {
            assert!(
                sb * 10 <= pb,
                "vertical sharing run must move >=10x fewer bytes ({sb} vs {pb})"
            );
        }
        let ledger = &s.0.sharing;
        print_row(
            &widths,
            &[
                (*protocol).into(),
                fmt_bytes(pb),
                fmt_bytes(sb),
                format!("{:.1}x", pb as f64 / sb as f64),
                format!("{}", ledger.triples),
                format!("{}", ledger.compares),
                fmt_bytes(ledger.modeled_offline_bytes),
            ],
        );
        rows.push(row_from(protocol, &sharing_plain_cfg, &plain.0));
        rows.push(row_from(protocol, &sharing_cfg, &s.0));
    }
    println!("\nEvery ciphertext leg (DGK bit vectors, masked-distance and masked-");
    println!("product replies) becomes one or two ring elements per item, so the");
    println!("byte cut tracks the ciphertext width / 8 B ratio. The \"offline B\"");
    println!("column models the Beaver-triple material a dealer would ship ahead");
    println!("of time — the classic online/offline trade the backend makes.");
    rows
}

/// One flight-recorded session per protocol mode on the canonical n = 36
/// workload (round batching on — the production framing). Each trace is
/// schema-validated before it is returned, so downstream serializers can
/// unwrap rollups.
fn traced_runs() -> Vec<(&'static str, SessionTrace)> {
    let w = blob_workload(36, 2, 9_100);
    let vp = VerticalPartition::split(&w.all, 1);
    let ap = ArbitraryPartition::random(&mut rng(9_101), &w.all);
    let cfg = w.cfg.with_batching(true);
    let mut out: Vec<(&'static str, SessionTrace)> = Vec::new();

    let mut two_party = |mode: &'static str, alice: PartyData, bob: PartyData| {
        let recorder = SpanRecorder::new();
        let (a, _) = run_participants(
            Participant::new(cfg)
                .role(Party::Alice)
                .data(alice)
                .rng(rng(81))
                .trace(Arc::clone(&recorder)),
            Participant::new(cfg)
                .role(Party::Bob)
                .data(bob)
                .rng(rng(82)),
        )
        .unwrap_or_else(|e| panic!("traced {mode} session failed: {e}"));
        let trace = a.trace.expect("traced participant returns a trace");
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{mode} trace schema: {e}"));
        out.push((mode, trace));
    };
    two_party(
        "horizontal",
        PartyData::Horizontal(w.alice.clone()),
        PartyData::Horizontal(w.bob.clone()),
    );
    two_party(
        "enhanced",
        PartyData::Enhanced(w.alice.clone()),
        PartyData::Enhanced(w.bob.clone()),
    );
    two_party(
        "vertical",
        PartyData::Vertical(vp.alice.clone()),
        PartyData::Vertical(vp.bob.clone()),
    );
    two_party(
        "arbitrary",
        PartyData::Arbitrary(ap.alice_values.clone()),
        PartyData::Arbitrary(ap.bob_values.clone()),
    );
    out.push(("multiparty", traced_mesh(&cfg, &w.all, 42)));
    out
}

/// Runs a 3-party mesh session (points dealt round-robin) with the flight
/// recorder attached to node 0 and returns node 0's validated trace.
fn traced_mesh(cfg: &ProtocolConfig, all: &[Point], seed: u64) -> SessionTrace {
    let k = 3usize;
    let mut parties: Vec<Vec<Point>> = vec![Vec::new(); k];
    for (i, p) in all.iter().enumerate() {
        parties[i % k].push(p.clone());
    }
    let mut channels: Vec<Vec<(usize, _)>> = (0..k).map(|_| Vec::new()).collect();
    for i in 0..k {
        for j in i + 1..k {
            let (a, b) = duplex();
            channels[i].push((j, a));
            channels[j].push((i, b));
        }
    }
    let recorder = SpanRecorder::new();
    let mut trace = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (my_id, (mut peers, points)) in channels.drain(..).zip(&parties).enumerate() {
            let mut participant = Participant::new(*cfg)
                .data(PartyData::Multiparty(points.clone()))
                .seed(seed.wrapping_add(my_id as u64));
            if my_id == 0 {
                participant = participant.trace(Arc::clone(&recorder));
            }
            handles.push(scope.spawn(move || participant.run_mesh(&mut peers, my_id, k)));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            let outcome = handle
                .join()
                .expect("mesh node thread")
                .unwrap_or_else(|e| panic!("traced mesh node {i} failed: {e}"));
            if i == 0 {
                trace = outcome.trace;
            }
        }
    });
    let trace = trace.expect("traced node 0 returns a trace");
    trace
        .validate()
        .unwrap_or_else(|e| panic!("multiparty trace schema: {e}"));
    trace
}

/// Writes the Chrome trace-event file (`chrome://tracing` /
/// <https://ui.perfetto.dev> loadable): one process per protocol mode, one
/// track per recorder thread.
fn write_trace_json(path: &str, runs: &[(&'static str, SessionTrace)]) {
    let sessions: Vec<(&str, &SessionTrace)> = runs.iter().map(|(mode, t)| (*mode, t)).collect();
    std::fs::write(path, chrome_trace(&sessions))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote Chrome trace ({} sessions) to {path}", runs.len());
}

/// Serializes the sweep as the machine-readable bench trajectory. The
/// top-level `wire_version` records the session-handshake format,
/// `randomness` the RNG discipline (`keyed-v1` = `ProtocolContext`
/// substreams) and `sharing` the secret-sharing discipline (ring width and
/// share convention of the E12 rows) the run used, so a reader knows which
/// builds a trajectory is comparable with: frame sizes shift slightly between wire versions,
/// and counts that depend on drawn values (the enhanced protocol's
/// quickselect partition paths depend on the masks) shift when the
/// derivation scheme changes. Data-independent counts (horizontal,
/// vertical, arbitrary rounds/messages) are stable across both.
/// Per-phase wire attribution from the flight-recorded runs, as the
/// top-level `"phases"` key: one row per (mode, normalized step path) with
/// span count and bytes/messages/rounds deltas. Wall times are deliberately
/// omitted — every field here is a deterministic function of the seeds, so
/// the trajectory stays diffable across machines.
fn phases_json(runs: &[(&'static str, SessionTrace)]) -> String {
    let mut out = String::from("  \"phases\": [\n");
    let mut rows = Vec::new();
    for (mode, trace) in runs {
        for r in trace.rollup().expect("validated upstream") {
            rows.push(format!(
                "    {{\"mode\": \"{}\", \"path\": \"{}\", \"count\": {}, \"bytes\": {}, \
                 \"messages\": {}, \"rounds\": {}}}",
                mode,
                r.path,
                r.count,
                r.traffic.total_bytes(),
                r.traffic.total_messages(),
                r.traffic.total_rounds(),
            ));
        }
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    out
}

fn write_bench_json(
    path: &str,
    rows: &[BatchBenchRow],
    runs: &[(&'static str, SessionTrace)],
    scaling: &[ScalingRow],
) {
    let mut out = format!(
        "{{\n  \"wire_version\": {},\n  \"randomness\": \"{}\",\n  \"packing\": \"{}\",\n  \"kernels\": \"{}\",\n  \"sharing\": \"{}\",\n  \"pruning\": \"{}\",\n  \"workload\": {{\"n\": 36, \"dim\": 2, \"generator\": \"standard_blobs\"}},\n",
        ppdbscan::session::WIRE_VERSION,
        ppds_smc::context::RANDOMNESS_DISCIPLINE,
        ppds_paillier::PACKING_DISCIPLINE,
        ppds_bigint::KERNEL_DISCIPLINE,
        ppds_smc::SHARING_DISCIPLINE,
        ppds_dbscan::PRUNING_DISCIPLINE
    );
    // The E13 scaling sweep: one row per (n, candidate policy), vertical
    // protocol on the sharing backend. `comparisons` is the secure-
    // comparison count — the quantity pruning exists to cut.
    out.push_str("  \"scaling\": [\n");
    let scaling_rows: Vec<String> = scaling
        .iter()
        .map(|r| {
            format!(
                "    {{\"experiment\": \"e13\", \"protocol\": \"vertical\", \"backend\": \
                 \"sharing\", \"n\": {}, \"pruning\": \"{}\", \"comparisons\": {}, \
                 \"neighbor_queries\": {}, \"bytes\": {}}}",
                r.n, r.pruning, r.comparisons, r.neighbor_queries, r.bytes
            )
        })
        .collect();
    out.push_str(&scaling_rows.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(&phases_json(runs));
    out.push_str("  \"protocols\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"backend\": \"{}\", \"batching\": {}, \"packing\": {}, \
             \"rounds\": {}, \"messages\": {}, \"bytes\": {}, \"modeled_lan_ms\": {:.3}, \
             \"modeled_wan_ms\": {:.3}}}{}\n",
            row.protocol,
            row.backend,
            row.batching,
            row.packing,
            row.rounds,
            row.messages,
            row.bytes,
            row.lan_ms,
            row.wan_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote bench trajectory to {path}");
}

/// One row of the E13 scaling sweep: the vertical protocol on the sharing
/// backend at one `n` under one candidate-generation policy. Every field is
/// a deterministic function of the seeds, so the rows are diffable.
struct ScalingRow {
    n: usize,
    pruning: &'static str,
    comparisons: u64,
    neighbor_queries: usize,
    bytes: u64,
}

/// Uniform points at constant density: the domain side grows as √n, so the
/// per-query candidate count under grid pruning stays ~constant while the
/// exhaustive pair count grows as n² — the regime the pruning subsystem is
/// built for (the fixed-domain blob generator saturates instead: at large n
/// every pair becomes a candidate and nothing can be pruned).
fn scaled_uniform(n: usize, seed: u64) -> (Vec<Point>, i64) {
    let side = (4.0 * (n as f64).sqrt()).ceil() as i64;
    let mut r = rng(seed);
    use rand::Rng as _;
    let points = (0..n)
        .map(|_| Point::new(vec![r.random_range(0..=side), r.random_range(0..=side)]))
        .collect();
    (points, side)
}

/// E13 — the tentpole scaling claim: with grid candidate pruning the
/// secure-comparison count grows ~linearly in n instead of quadratically,
/// which is what makes n = 10⁴ reachable at all. Runs the vertical
/// protocol (sharing backend, round-batched) at n ∈ {10², 10³, 10⁴} with
/// grid pruning, plus exhaustive baselines up to 10³ (the n² wall makes an
/// exhaustive 10⁴ run pointless: the pruned 10⁴ run costs fewer
/// comparisons than the exhaustive 10³ one). Labels are asserted
/// byte-identical wherever both variants run, and the pruned comparison
/// count at n ≥ 10³ is asserted ≤ 10% of n(n−1)/2 — the acceptance bound.
fn e13(max_n: usize) -> Vec<ScalingRow> {
    use ppds_dbscan::Pruning;
    section("E13  Candidate pruning: secure comparisons vs n (vertical, sharing)");
    let widths = [6, 11, 13, 9, 12, 10];
    print_header(
        &widths,
        &["n", "pruning", "comparisons", "cmp/n", "wire bytes", "time"],
    );
    let mut rows: Vec<ScalingRow> = Vec::new();
    for n in [100usize, 1_000, 10_000] {
        if n > max_n {
            continue;
        }
        let (points, side) = scaled_uniform(n, 9_200 + n as u64);
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 8,
                min_pts: 3,
            },
            side,
        )
        .with_backend(BackendKind::Sharing)
        .with_batching(true);
        let vp = VerticalPartition::split(&points, 1);
        let mut variants: Vec<(&'static str, ProtocolConfig)> = Vec::new();
        if n <= 1_000 {
            variants.push(("exhaustive", cfg));
        }
        variants.push(("grid1", cfg.with_pruning(Pruning::Grid { coarseness: 1 })));
        let mut labels = Vec::new();
        for (tag, vcfg) in variants {
            let t0 = Instant::now();
            let (a, _) = run_vertical_pair(&vcfg, &vp, rng(91), rng(92)).unwrap();
            let elapsed = t0.elapsed();
            print_row(
                &widths,
                &[
                    format!("{n}"),
                    tag.into(),
                    format!("{}", a.yao.comparisons),
                    format!("{:.1}", a.yao.comparisons as f64 / n as f64),
                    fmt_bytes(a.traffic.total_bytes()),
                    format!("{elapsed:.1?}"),
                ],
            );
            rows.push(ScalingRow {
                n,
                pruning: tag,
                comparisons: a.yao.comparisons,
                neighbor_queries: a.leakage.count_kind("neighbor_count"),
                bytes: a.traffic.total_bytes(),
            });
            labels.push(a.clustering);
        }
        if let [exhaustive, pruned] = &labels[..] {
            assert_eq!(
                exhaustive, pruned,
                "n = {n}: pruned labels must be byte-identical to exhaustive"
            );
        }
        let pruned = rows.last().expect("grid1 row just pushed");
        let half_pairs = (n as u64) * (n as u64 - 1) / 2;
        if n >= 1_000 {
            assert!(
                pruned.comparisons * 10 <= half_pairs,
                "n = {n}: pruned comparisons ({}) must be <= 10% of n(n-1)/2 ({half_pairs})",
                pruned.comparisons
            );
        }
    }
    println!("\nExhaustive comparisons grow as n² (cmp/n is linear in n); the pruned");
    println!("runs hold cmp/n ~constant because constant-density data keeps each");
    println!("3×3-band candidate set O(1). The disclosed band tables are ledgered");
    println!("as `pruning_bands` leakage events — see DESIGN.md §15 for the trade.");
    rows
}

/// F1 — the Figure 1 neighborhood-intersection attack, *executed* against
/// the implemented Kumar et al. \[14\] baseline and compared with the honest
/// protocol's unlinkable leakage.
fn f1() {
    use ppdbscan::kumar::{intersection_attack, run_kumar_pair, unlinkable_feasible_region};
    section("F1  Figure 1: the intersection attack, executed on real transcripts");
    let bob_points = vec![
        Point::new(vec![0, 0]),
        Point::new(vec![16, 0]),
        Point::new(vec![8, 14]),
    ];
    let alice_points = vec![Point::new(vec![8, 5])];
    let bound = 40i64;
    let widths = [5, 17, 15, 11];
    print_header(
        &widths,
        &["Eps", "Kumar localized", "honest (union)", "ratio"],
    );
    for eps in [10i64, 12, 14, 18] {
        let eps_sq = (eps * eps) as u64;
        let cfg = ProtocolConfig::new(DbscanParams { eps_sq, min_pts: 5 }, 64);
        let (_, kumar_bob) =
            run_kumar_pair(&cfg, &alice_points, &bob_points, rng(70), rng(71)).unwrap();
        let localized = intersection_attack(&bob_points, &kumar_bob.leakage, eps_sq, bound)[&0];
        let union = unlinkable_feasible_region(&bob_points, eps_sq, bound);
        print_row(
            &widths,
            &[
                format!("{eps}"),
                format!("{localized}"),
                format!("{union}"),
                if localized == 0 {
                    "∞".to_string()
                } else {
                    format!("{:.0}x", union as f64 / localized as f64)
                },
            ],
        );
    }
    println!("\nThe \"Kumar localized\" column replays the attack on the baseline");
    println!("protocol's actual transcript (linked neighbor bits); \"honest\" is the");
    println!("best the same adversary achieves against the permuted protocol.");
    println!("See `cargo run --release --example figure1_attack` for the full demo.");
}

/// The full sweep chain (E10 → E11 → E12), honouring the `--backend`
/// restriction: `Some(Paillier)` drops the sharing rows, `Some(Sharing)`
/// drops the Paillier rows (and with them the Paillier-anchored E11/E12,
/// printing the batching sweep on the sharing substrate instead), `None`
/// emits per-backend rows for the full trajectory.
fn run_sweeps(backend: Option<BackendKind>) -> Vec<BatchBenchRow> {
    let mut rows = Vec::new();
    if backend != Some(BackendKind::Sharing) {
        rows = e10(BackendKind::Paillier);
        let packed = e11(&rows);
        rows.extend(packed);
    }
    match backend {
        Some(BackendKind::Paillier) => {}
        Some(BackendKind::Sharing) => rows.extend(e10(BackendKind::Sharing)),
        None => rows.extend(e12()),
    }
    rows
}

/// Every experiment selector `main` accepts, in help order.
const SELECTORS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e13smoke",
    "sweeps", "f1", "all",
];

/// The typed failure an unknown experiment selector produces: names the
/// rejected argument and lists every valid selector, so a typo'd sweep
/// name fails loudly instead of silently running nothing.
#[derive(Debug)]
struct UnknownSelector(String);

impl std::fmt::Display for UnknownSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown experiment selector `{}`; valid selectors: {}",
            self.0,
            SELECTORS.join(", ")
        )
    }
}

impl std::error::Error for UnknownSelector {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut selector: Option<String> = None;
    let mut backend: Option<BackendKind> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--backend" {
            match iter.next().as_deref() {
                Some("paillier") => backend = Some(BackendKind::Paillier),
                Some("sharing") => backend = Some(BackendKind::Sharing),
                Some(other) => {
                    eprintln!("unknown backend {other}; use paillier or sharing");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--backend requires paillier or sharing");
                    std::process::exit(2);
                }
            }
        } else if arg == "--json" {
            match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--trace" {
            match iter.next() {
                Some(path) => trace_path = Some(path),
                None => {
                    eprintln!("--trace requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(first) = &selector {
            eprintln!("at most one experiment selector (got {first} and {arg})");
            std::process::exit(2);
        } else {
            selector = Some(arg);
        }
    }
    // `--json` or `--trace` alone runs the batching + packing sweeps; a
    // selector (or nothing) runs the printed experiments as before.
    let selector = selector.unwrap_or_else(|| {
        if json_path.is_some() || trace_path.is_some() {
            "sweeps".into()
        } else {
            "all".into()
        }
    });

    if !SELECTORS.contains(&selector.as_str()) {
        eprintln!("{}", UnknownSelector(selector));
        std::process::exit(2);
    }

    let t0 = Instant::now();
    println!("# Privacy-preserving distributed DBSCAN — experiment run");
    let mut sweep_rows: Option<Vec<BatchBenchRow>> = None;
    let mut scaling_rows: Option<Vec<ScalingRow>> = None;
    match selector.as_str() {
        "e1" => e1(),
        "e2" => e2(),
        "e3" => e3(),
        "e4" => e4(),
        "e5" => e5(),
        "e6" => e6(),
        "e7" => e7(),
        "e8" => e8(),
        "e9" => e9(),
        "e10" => sweep_rows = Some(e10(backend.unwrap_or_default())),
        "e11" => {
            let mut rows = batching_sweep(BackendKind::Paillier);
            let packed = e11(&rows);
            rows.extend(packed);
            sweep_rows = Some(rows);
        }
        "e12" => sweep_rows = Some(e12()),
        "e13" => scaling_rows = Some(e13(10_000)),
        "e13smoke" => scaling_rows = Some(e13(1_000)),
        "sweeps" => {
            sweep_rows = Some(run_sweeps(backend));
            scaling_rows = Some(e13(10_000));
        }
        "f1" => f1(),
        "all" => {
            e1();
            e2();
            e3();
            e4();
            e5();
            e6();
            e7();
            e8();
            e9();
            sweep_rows = Some(run_sweeps(backend));
            scaling_rows = Some(e13(10_000));
            f1();
        }
        other => unreachable!("selector `{other}` validated above"),
    }
    if json_path.is_some() || trace_path.is_some() {
        // One flight-recorded run per mode feeds both outputs: the Chrome
        // trace file and the deterministic per-phase table in the
        // trajectory JSON.
        let runs = traced_runs();
        if let Some(path) = &trace_path {
            write_trace_json(path, &runs);
        }
        if let Some(path) = &json_path {
            let rows = sweep_rows.unwrap_or_else(|| {
                let mut rows = batching_sweep(BackendKind::Paillier);
                rows.extend(packing_sweep());
                rows
            });
            let scaling = scaling_rows.unwrap_or_else(|| e13(10_000));
            write_bench_json(path, &rows, &runs, &scaling);
        }
    }
    println!("\n(total runtime {:.1?})", t0.elapsed());
}
