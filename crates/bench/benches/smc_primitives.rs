//! SMC primitive costs: the Multiplication Protocol (single and dot
//! product), Yao's millionaires by domain size, the Ideal comparator, and
//! k-th-smallest selection — each including its real two-thread channel
//! round trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppds_bigint::{BigInt, BigUint};
use ppds_paillier::Keypair;
use ppds_smc::compare::{compare_alice, compare_bob, CmpOp, Comparator, ComparisonDomain};
use ppds_smc::kth::{kth_smallest_alice, kth_smallest_bob, SelectionMethod};
use ppds_smc::multiplication::{dot_keyholder, dot_peer, mul_keyholder, mul_peer};
use ppds_transport::duplex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(256, &mut rng(0)))
}

fn bench_multiplication(c: &mut Criterion) {
    let mut group = c.benchmark_group("mul_protocol_256");
    group.sample_size(20);
    group.bench_function("single", |b| {
        b.iter(|| {
            let (mut kchan, mut pchan) = duplex();
            let handle = std::thread::spawn(move || {
                let mut r = rng(1);
                mul_keyholder(&mut kchan, keypair(), &BigInt::from_i64(37), &mut r).unwrap()
            });
            let mut r = rng(2);
            mul_peer(
                &mut pchan,
                &keypair().public,
                &BigInt::from_i64(53),
                &BigUint::from_u64(1 << 30),
                &mut r,
            )
            .unwrap();
            handle.join().unwrap()
        });
    });
    for m in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("dot_product", m), &m, |b, &m| {
            let xs: Vec<BigInt> = (0..m as i64).map(BigInt::from_i64).collect();
            let ys: Vec<BigInt> = (0..m as i64).map(|v| BigInt::from_i64(v * 3)).collect();
            b.iter(|| {
                let (mut kchan, mut pchan) = duplex();
                let xs2 = xs.clone();
                let handle = std::thread::spawn(move || {
                    let mut r = rng(3);
                    dot_keyholder(&mut kchan, keypair(), &xs2, &mut r).unwrap()
                });
                let mut r = rng(4);
                dot_peer(
                    &mut pchan,
                    &keypair().public,
                    &ys,
                    &BigUint::from_u64(1 << 30),
                    &mut r,
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_yao(c: &mut Criterion) {
    let mut group = c.benchmark_group("yao_millionaires_256");
    group.sample_size(10);
    for n0 in [16i64, 64, 256] {
        let domain = ComparisonDomain::new(1, n0 - 1);
        group.bench_with_input(BenchmarkId::from_parameter(n0), &n0, |b, _| {
            b.iter(|| {
                let (mut achan, mut bchan) = duplex();
                let handle = std::thread::spawn(move || {
                    let mut r = rng(5);
                    compare_alice(
                        Comparator::Yao,
                        &mut achan,
                        keypair(),
                        2,
                        CmpOp::Lt,
                        &domain,
                        &mut r,
                    )
                    .unwrap()
                });
                let mut r = rng(6);
                compare_bob(
                    Comparator::Yao,
                    &mut bchan,
                    &keypair().public,
                    5,
                    CmpOp::Lt,
                    &domain,
                    &mut r,
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_ideal_compare(c: &mut Criterion) {
    let domain = ComparisonDomain::symmetric(1 << 30);
    c.bench_function("ideal_compare", |b| {
        b.iter(|| {
            let (mut achan, mut bchan) = duplex();
            let handle = std::thread::spawn(move || {
                let mut r = rng(7);
                compare_alice(
                    Comparator::Ideal,
                    &mut achan,
                    keypair(),
                    123,
                    CmpOp::Leq,
                    &domain,
                    &mut r,
                )
                .unwrap()
            });
            let mut r = rng(8);
            compare_bob(
                Comparator::Ideal,
                &mut bchan,
                &keypair().public,
                456,
                CmpOp::Leq,
                &domain,
                &mut r,
            )
            .unwrap();
            handle.join().unwrap()
        });
    });
}

fn bench_kth_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("kth_selection_n32");
    group.sample_size(10);
    let n = 32usize;
    let mut r = rng(9);
    let dists: Vec<i64> = (0..n).map(|_| r.random_range(0..1000)).collect();
    let vs: Vec<i64> = (0..n).map(|_| r.random_range(-500..500)).collect();
    let us: Vec<i64> = dists.iter().zip(&vs).map(|(d, v)| d + v).collect();
    let domain = ComparisonDomain::symmetric(4000);
    for (label, method, k) in [
        ("repmin_k1", SelectionMethod::RepeatedMin, 1usize),
        ("repmin_k16", SelectionMethod::RepeatedMin, 16),
        ("quickselect_k16", SelectionMethod::QuickSelect, 16),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (mut achan, mut bchan) = duplex();
                let us2 = us.clone();
                let handle = std::thread::spawn(move || {
                    let mut ar = rng(10);
                    kth_smallest_alice(
                        method,
                        Comparator::Ideal,
                        &mut achan,
                        keypair(),
                        &us2,
                        k,
                        &domain,
                        &mut ar,
                    )
                    .unwrap()
                });
                let mut br = rng(11);
                kth_smallest_bob(
                    method,
                    Comparator::Ideal,
                    &mut bchan,
                    &keypair().public,
                    &vs,
                    k,
                    &domain,
                    &mut br,
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

/// Ablation (DESIGN.md): protocol HDP fuses its `m` Algorithm 2 runs into
/// one message round trip. Same ciphertext count either way; the batched
/// form saves `m - 1` round trips of framing and thread wakeups.
fn bench_batching_ablation(c: &mut Criterion) {
    use ppds_smc::multiplication::{mul_batch_keyholder, mul_batch_peer, zero_sum_masks};
    let m = 4usize;
    let xs: Vec<BigInt> = (0..m as i64).map(BigInt::from_i64).collect();
    let ys: Vec<BigInt> = (0..m as i64).map(|v| BigInt::from_i64(v + 1)).collect();
    let mut group = c.benchmark_group("mul_batching_m4");
    group.sample_size(10);
    group.bench_function("four_singles", |b| {
        let xs = xs.clone();
        let ys = ys.clone();
        b.iter(|| {
            let (mut kchan, mut pchan) = duplex();
            let xs2 = xs.clone();
            let handle = std::thread::spawn(move || {
                let mut r = rng(20);
                xs2.iter()
                    .map(|x| mul_keyholder(&mut kchan, keypair(), x, &mut r).unwrap())
                    .collect::<Vec<_>>()
            });
            let mut r = rng(21);
            for y in &ys {
                mul_peer(
                    &mut pchan,
                    &keypair().public,
                    y,
                    &BigUint::from_u64(1 << 20),
                    &mut r,
                )
                .unwrap();
            }
            handle.join().unwrap()
        });
    });
    group.bench_function("one_batch", |b| {
        let xs = xs.clone();
        let ys = ys.clone();
        b.iter(|| {
            let (mut kchan, mut pchan) = duplex();
            let xs2 = xs.clone();
            let handle = std::thread::spawn(move || {
                let mut r = rng(22);
                mul_batch_keyholder(&mut kchan, keypair(), &xs2, &mut r).unwrap()
            });
            let mut r = rng(23);
            let masks = zero_sum_masks(&mut r, ys.len(), &BigUint::from_u64(1 << 20));
            mul_batch_peer(&mut pchan, &keypair().public, &ys, &masks, &mut r).unwrap();
            handle.join().unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_multiplication,
    bench_yao,
    bench_ideal_compare,
    bench_kth_selection,
    bench_batching_ablation
);
criterion_main!(benches);
