//! SMC primitive costs: the Multiplication Protocol (single and dot
//! product), Yao's millionaires by domain size, the Ideal comparator, and
//! k-th-smallest selection — each including its real two-thread channel
//! round trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppds_bigint::{BigInt, BigUint};
use ppds_paillier::Keypair;
use ppds_smc::compare::{compare_alice, compare_bob, CmpOp, Comparator, ComparisonDomain};
use ppds_smc::kth::{kth_smallest_alice, kth_smallest_bob, SelectionMethod};
use ppds_smc::multiplication::{dot_keyholder, dot_peer, mul_keyholder, mul_peer};
use ppds_smc::ProtocolContext;
use ppds_transport::duplex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(256, &mut rng(0)))
}

fn bench_multiplication(c: &mut Criterion) {
    let mut group = c.benchmark_group("mul_protocol_256");
    group.sample_size(20);
    group.bench_function("single", |b| {
        b.iter(|| {
            let (mut kchan, mut pchan) = duplex();
            let handle = std::thread::spawn(move || {
                mul_keyholder(
                    &mut kchan,
                    keypair(),
                    &BigInt::from_i64(37),
                    &ProtocolContext::new(1),
                )
                .unwrap()
            });
            mul_peer(
                &mut pchan,
                &keypair().public,
                &BigInt::from_i64(53),
                &BigUint::from_u64(1 << 30),
                &ProtocolContext::new(2),
            )
            .unwrap();
            handle.join().unwrap()
        });
    });
    for m in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("dot_product", m), &m, |b, &m| {
            let xs: Vec<BigInt> = (0..m as i64).map(BigInt::from_i64).collect();
            let ys: Vec<BigInt> = (0..m as i64).map(|v| BigInt::from_i64(v * 3)).collect();
            b.iter(|| {
                let (mut kchan, mut pchan) = duplex();
                let xs2 = xs.clone();
                let handle = std::thread::spawn(move || {
                    dot_keyholder(&mut kchan, keypair(), &xs2, &ProtocolContext::new(3)).unwrap()
                });
                dot_peer(
                    &mut pchan,
                    &keypair().public,
                    &ys,
                    &BigUint::from_u64(1 << 30),
                    &ProtocolContext::new(4),
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_yao(c: &mut Criterion) {
    let mut group = c.benchmark_group("yao_millionaires_256");
    group.sample_size(10);
    for n0 in [16i64, 64, 256] {
        let domain = ComparisonDomain::new(1, n0 - 1);
        group.bench_with_input(BenchmarkId::from_parameter(n0), &n0, |b, _| {
            b.iter(|| {
                let (mut achan, mut bchan) = duplex();
                let handle = std::thread::spawn(move || {
                    compare_alice(
                        Comparator::Yao,
                        &mut achan,
                        keypair(),
                        2,
                        CmpOp::Lt,
                        &domain,
                        false,
                        &ProtocolContext::new(5),
                    )
                    .unwrap()
                });
                compare_bob(
                    Comparator::Yao,
                    &mut bchan,
                    &keypair().public,
                    5,
                    CmpOp::Lt,
                    &domain,
                    false,
                    &ProtocolContext::new(6),
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_ideal_compare(c: &mut Criterion) {
    let domain = ComparisonDomain::symmetric(1 << 30);
    c.bench_function("ideal_compare", |b| {
        b.iter(|| {
            let (mut achan, mut bchan) = duplex();
            let handle = std::thread::spawn(move || {
                compare_alice(
                    Comparator::Ideal,
                    &mut achan,
                    keypair(),
                    123,
                    CmpOp::Leq,
                    &domain,
                    false,
                    &ProtocolContext::new(7),
                )
                .unwrap()
            });
            compare_bob(
                Comparator::Ideal,
                &mut bchan,
                &keypair().public,
                456,
                CmpOp::Leq,
                &domain,
                false,
                &ProtocolContext::new(8),
            )
            .unwrap();
            handle.join().unwrap()
        });
    });
}

fn bench_kth_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("kth_selection_n32");
    group.sample_size(10);
    let n = 32usize;
    let mut r = rng(9);
    let dists: Vec<i64> = (0..n).map(|_| r.random_range(0..1000)).collect();
    let vs: Vec<i64> = (0..n).map(|_| r.random_range(-500..500)).collect();
    let us: Vec<i64> = dists.iter().zip(&vs).map(|(d, v)| d + v).collect();
    let domain = ComparisonDomain::symmetric(4000);
    for (label, method, k) in [
        ("repmin_k1", SelectionMethod::RepeatedMin, 1usize),
        ("repmin_k16", SelectionMethod::RepeatedMin, 16),
        ("quickselect_k16", SelectionMethod::QuickSelect, 16),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (mut achan, mut bchan) = duplex();
                let us2 = us.clone();
                let handle = std::thread::spawn(move || {
                    kth_smallest_alice(
                        method,
                        Comparator::Ideal,
                        &mut achan,
                        keypair(),
                        &us2,
                        k,
                        &domain,
                        false,
                        &ProtocolContext::new(10),
                    )
                    .unwrap()
                });
                kth_smallest_bob(
                    method,
                    Comparator::Ideal,
                    &mut bchan,
                    &keypair().public,
                    &vs,
                    k,
                    &domain,
                    false,
                    &ProtocolContext::new(11),
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

/// Ablation (DESIGN.md): protocol HDP fuses its `m` Algorithm 2 runs into
/// one message round trip. Same ciphertext count either way; the batched
/// form saves `m - 1` round trips of framing and thread wakeups.
fn bench_batching_ablation(c: &mut Criterion) {
    use ppds_smc::multiplication::{mul_batch_keyholder, mul_batch_peer, zero_sum_masks};
    let m = 4usize;
    let xs: Vec<BigInt> = (0..m as i64).map(BigInt::from_i64).collect();
    let ys: Vec<BigInt> = (0..m as i64).map(|v| BigInt::from_i64(v + 1)).collect();
    let mut group = c.benchmark_group("mul_batching_m4");
    group.sample_size(10);
    group.bench_function("four_singles", |b| {
        let xs = xs.clone();
        let ys = ys.clone();
        b.iter(|| {
            let (mut kchan, mut pchan) = duplex();
            let xs2 = xs.clone();
            let handle = std::thread::spawn(move || {
                let kctx = ProtocolContext::new(20);
                xs2.iter()
                    .enumerate()
                    .map(|(i, x)| {
                        mul_keyholder(&mut kchan, keypair(), x, &kctx.at(i as u64)).unwrap()
                    })
                    .collect::<Vec<_>>()
            });
            let pctx = ProtocolContext::new(21);
            for (i, y) in ys.iter().enumerate() {
                mul_peer(
                    &mut pchan,
                    &keypair().public,
                    y,
                    &BigUint::from_u64(1 << 20),
                    &pctx.at(i as u64),
                )
                .unwrap();
            }
            handle.join().unwrap()
        });
    });
    group.bench_function("one_batch", |b| {
        let xs = xs.clone();
        let ys = ys.clone();
        b.iter(|| {
            let (mut kchan, mut pchan) = duplex();
            let xs2 = xs.clone();
            let handle = std::thread::spawn(move || {
                mul_batch_keyholder(&mut kchan, keypair(), &xs2, None, &ProtocolContext::new(22))
                    .unwrap()
            });
            let pctx = ProtocolContext::new(23);
            let masks = zero_sum_masks(
                pctx.narrow("mask").rng(),
                ys.len(),
                &BigUint::from_u64(1 << 20),
            );
            mul_batch_peer(&mut pchan, &keypair().public, &ys, &masks, None, &pctx).unwrap();
            handle.join().unwrap()
        });
    });
    group.finish();
}

/// Keyed-substream discipline overhead: deriving one generator per record
/// (`ctx.rng_for(i)` — the cost the DGK batch path now pays per item)
/// versus advancing one threaded sequential stream (the old discipline).
/// The derivation is a handful of 64-bit multiplies per record, which the
/// first Paillier exponentiation dwarfs by orders of magnitude.
fn bench_keyed_derivation(c: &mut Criterion) {
    use criterion::black_box;
    use rand::RngCore;
    let mut group = c.benchmark_group("randomness_discipline_1024_draws");
    group.bench_function("keyed_substreams", |b| {
        let ctx = ProtocolContext::new(7).narrow("dgk");
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc ^= ctx.rng_for(black_box(i)).next_u64();
            }
            acc
        });
    });
    group.bench_function("sequential_stream", |b| {
        b.iter(|| {
            let mut r = rng(7);
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc ^= r.next_u64();
            }
            acc
        });
    });
    group.finish();
}

/// Order-independent draws unlock parallel batch evaluation: the DGK batch
/// encryption path (Bob's masked comparison vectors are the analogous hot
/// loop) run on 1 worker vs 4. On a single-CPU host both rows are flat;
/// on a multicore host the 4-worker row shows the speedup. Outputs are
/// byte-identical either way (pinned by the smc parallel tests).
fn bench_parallel_batch_encryption(c: &mut Criterion) {
    use ppds_smc::multiplication::mul_batches_keyholder;
    use ppds_smc::parallel::force_workers;
    let groups: Vec<Vec<BigInt>> = (0..16)
        .map(|g| (0..4).map(|i| BigInt::from_i64(g * 4 + i)).collect())
        .collect();
    let mut group = c.benchmark_group("batch_encryption_16x4_256bit");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let _guard = force_workers(workers);
                    let (mut kchan, mut pchan) = duplex();
                    let groups2 = groups.clone();
                    let handle = std::thread::spawn(move || {
                        let kctx = ProtocolContext::new(30).narrow("mul");
                        mul_batches_keyholder(
                            &mut kchan,
                            keypair(),
                            &groups2,
                            |g| kctx.at(g as u64),
                            None,
                        )
                        .unwrap()
                    });
                    // Absorb and answer with the ciphertexts unchanged so the
                    // bench isolates the keyholder's encrypt+decrypt work.
                    use ppds_transport::Channel;
                    let cts: Vec<Vec<ppds_bigint::BigUint>> = pchan.recv_batch().unwrap();
                    pchan.send_batch(&cts).unwrap();
                    handle.join().unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Packed vs unpacked DGK reply: one comparison over a 10-bit domain at
/// 256-bit keys. Unpacked, Bob ships ℓ = 10 masked ciphertexts and Alice
/// decrypts all 10; packed, the verdict vector rides one word and Alice
/// decrypts once — the reply-leg cost drops by the layout capacity.
fn bench_dgk_reply_packing(c: &mut Criterion) {
    use ppds_smc::bitwise::{dgk_alice, dgk_bob, dgk_packed_alice, dgk_packed_bob};
    let bound = 1023u64; // ℓ = 10
    let mut group = c.benchmark_group("dgk_compare_256bit_l10");
    group.sample_size(10);
    group.bench_function("unpacked", |b| {
        b.iter(|| {
            let (mut achan, mut bchan) = duplex();
            let handle = std::thread::spawn(move || {
                dgk_alice(&mut achan, keypair(), 400, bound, &ProtocolContext::new(1)).unwrap()
            });
            dgk_bob(
                &mut bchan,
                &keypair().public,
                700,
                bound,
                &ProtocolContext::new(2),
            )
            .unwrap();
            handle.join().unwrap()
        });
    });
    group.bench_function("packed", |b| {
        b.iter(|| {
            let (mut achan, mut bchan) = duplex();
            let handle = std::thread::spawn(move || {
                dgk_packed_alice(&mut achan, keypair(), 400, bound, &ProtocolContext::new(1))
                    .unwrap()
            });
            dgk_packed_bob(
                &mut bchan,
                &keypair().public,
                700,
                bound,
                &ProtocolContext::new(2),
            )
            .unwrap();
            handle.join().unwrap()
        });
    });
    group.finish();
}

/// Packed vs unpacked dot-many response: one enhanced-protocol
/// neighborhood answer (24 masked distances) at 256-bit keys. Unpacked:
/// 24 response ciphertexts, 24 keyholder decryptions. Packed: the
/// responses share words (~6 slots each here), so both the response bytes
/// and the decryption count drop by the packing factor.
fn bench_dot_many_packing(c: &mut Criterion) {
    use ppds_paillier::SlotLayout;
    use ppds_smc::multiplication::{dot_many_keyholder, dot_many_peer, ResponsePacking};
    let rows: Vec<Vec<BigInt>> = (0..24)
        .map(|j| {
            vec![
                BigInt::from_i64(1),
                BigInt::from_i64(j % 7),
                BigInt::from_i64(j % 5),
                BigInt::from_i64((j % 7) * (j % 7) + (j % 5) * (j % 5)),
            ]
        })
        .collect();
    let xs: Vec<BigInt> = [25i64, -6, -8, 1]
        .iter()
        .map(|&v| BigInt::from_i64(v))
        .collect();
    let mask_bound = ppds_bigint::BigUint::from_u64(1 << 20);
    let packing = ResponsePacking {
        layout: SlotLayout::new(keypair().public.bits(), 24).unwrap(),
        offset: ppds_bigint::BigUint::from_u64((1 << 20) + 200),
    };
    let mut group = c.benchmark_group("dot_many_24rows_256bit");
    group.sample_size(10);
    for (label, packed) in [("unpacked", false), ("packed", true)] {
        let packing = packed.then(|| packing.clone());
        let rows = rows.clone();
        let xs = xs.clone();
        let mask_bound = mask_bound.clone();
        group.bench_function(label, move |b| {
            b.iter(|| {
                let (mut kchan, mut pchan) = duplex();
                let xs2 = xs.clone();
                let p2 = packing.clone();
                let handle = std::thread::spawn(move || {
                    dot_many_keyholder(
                        &mut kchan,
                        keypair(),
                        &xs2,
                        24,
                        p2.as_ref(),
                        &ProtocolContext::new(3),
                    )
                    .unwrap()
                });
                dot_many_peer(
                    &mut pchan,
                    &keypair().public,
                    &rows,
                    &mask_bound,
                    packing.as_ref(),
                    &ProtocolContext::new(4),
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

/// Flight-recorder overhead on the hottest SMC primitive: the same
/// `dot_many` exchange with the recorder off (no sink installed — spans
/// compile down to an `enabled()` check) and on (lock-free slot claims per
/// span edge). The delta is the tracing tax a production operator pays.
fn bench_trace_overhead(c: &mut Criterion) {
    use ppds_observe::{trace, SpanRecorder, TraceSink};
    use ppds_smc::multiplication::{dot_many_keyholder, dot_many_peer};
    use std::sync::Arc;
    let rows: Vec<Vec<BigInt>> = (0..24)
        .map(|j| {
            vec![
                BigInt::from_i64(1),
                BigInt::from_i64(j % 7),
                BigInt::from_i64(j % 5),
                BigInt::from_i64((j % 7) * (j % 7) + (j % 5) * (j % 5)),
            ]
        })
        .collect();
    let xs: Vec<BigInt> = [25i64, -6, -8, 1]
        .iter()
        .map(|&v| BigInt::from_i64(v))
        .collect();
    let mask_bound = ppds_bigint::BigUint::from_u64(1 << 20);
    let mut group = c.benchmark_group("dot_many_trace_overhead");
    group.sample_size(10);
    for (label, traced) in [("untraced", false), ("traced", true)] {
        let rows = rows.clone();
        let xs = xs.clone();
        let mask_bound = mask_bound.clone();
        group.bench_function(label, move |b| {
            b.iter(|| {
                let recorder = traced.then(SpanRecorder::new);
                let _guard = recorder
                    .clone()
                    .map(|r| trace::install(r as Arc<dyn TraceSink>));
                let (mut kchan, mut pchan) = duplex();
                let xs2 = xs.clone();
                let rec2 = recorder.clone();
                let handle = std::thread::spawn(move || {
                    let _guard = rec2.map(|r| trace::install(r as Arc<dyn TraceSink>));
                    dot_many_keyholder(
                        &mut kchan,
                        keypair(),
                        &xs2,
                        24,
                        None,
                        &ProtocolContext::new(3),
                    )
                    .unwrap()
                });
                dot_many_peer(
                    &mut pchan,
                    &keypair().public,
                    &rows,
                    &mask_bound,
                    None,
                    &ProtocolContext::new(4),
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

/// The two multi-exp response legs against the per-operand loops they
/// replaced (kernel on vs off, same inputs, same output bytes):
/// slot aggregation in `pack_ciphertexts` and the `dot_many` response
/// row fold via precomputed scaled bases.
fn bench_kernel_legs(c: &mut Criterion) {
    use ppds_paillier::SlotLayout;
    let kp = keypair();
    let mut r = rng(40);
    let layout = SlotLayout::new(kp.public.bits(), 24).unwrap();
    let k = layout.capacity();
    let items: Vec<_> = (0..k)
        .map(|i| {
            kp.public
                .encrypt(&BigUint::from_u64(i as u64 + 1), &mut r)
                .unwrap()
        })
        .collect();
    let plain: Vec<BigUint> = (0..k).map(|i| BigUint::from_u64(i as u64)).collect();

    let mut group = c.benchmark_group("kernel_legs_256bit");
    group.sample_size(10);
    // Time only the slot-aggregation leg (the plain word is encrypted the
    // same way on both paths): Π itemsᵢ^(2^{w·i}) folded into the word.
    let word = {
        let mut r = rng(41);
        kp.public
            .pack_encrypt(&layout, &plain, &mut r)
            .unwrap()
            .remove(0)
    };
    group.bench_function("pack_aggregation_multi_exp", |b| {
        let ctx = ppds_bigint::MontgomeryCtx::new(kp.public.n_squared()).unwrap();
        let shifts: Vec<BigUint> = (0..k).map(|i| layout.slot_shift(i)).collect();
        b.iter(|| {
            let pairs: Vec<(&BigUint, &BigUint)> = items
                .iter()
                .map(|c| c.as_biguint())
                .zip(shifts.iter())
                .collect();
            let shifted = ppds_bigint::multi_exp(&ctx, &pairs);
            &(word.as_biguint() * &shifted) % kp.public.n_squared()
        });
    });
    group.bench_function("pack_aggregation_per_operand", |b| {
        // The pre-kernel path: one mul_plain (shift) + add per item.
        b.iter(|| {
            items
                .iter()
                .enumerate()
                .fold(word.clone(), |acc, (i, item)| {
                    let shifted = kp.public.mul_plain(item, &layout.slot_shift(i));
                    kp.public.add(&acc, &shifted)
                })
        });
    });

    // dot_many response fold: 24 rows × 4 shared ciphertext bases.
    let cts: Vec<_> = (0..4u64)
        .map(|i| {
            kp.public
                .encrypt(&BigUint::from_u64(i + 2), &mut r)
                .unwrap()
        })
        .collect();
    let rows: Vec<Vec<BigInt>> = (0..24)
        .map(|j: i64| {
            vec![
                BigInt::from_i64(j - 11),
                BigInt::from_i64(j % 7),
                BigInt::from_i64(-(j % 5)),
                BigInt::from_i64(j * j),
            ]
        })
        .collect();
    let acc = kp.public.encrypt(&BigUint::from_u64(99), &mut r).unwrap();
    group.bench_function("dot_response_scaled_bases", |b| {
        b.iter(|| {
            let bases = kp.public.scaled_bases(&cts);
            rows.iter()
                .map(|ys| bases.combine_signed(&kp.public, &acc, ys))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("dot_response_per_operand", |b| {
        b.iter(|| {
            rows.iter()
                .map(|ys| {
                    cts.iter().zip(ys).fold(acc.clone(), |a, (ct, y)| {
                        kp.public.add(&a, &kp.public.mul_plain_signed(ct, y))
                    })
                })
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

/// The two batched SMC workhorses on both substrates (DESIGN.md §14), at
/// k ∈ {4, 16, 64, 256}: `dot_many` with k responder rows (one
/// neighborhood answer) against the packed-Paillier variant, and
/// `mul_batches` with k four-element groups (one fused Algorithm 2
/// sweep). Same dataflow and channel round trips either way — the delta
/// is 8-byte ring elements plus dealer-tape derivation versus 256-bit
/// ciphertext legs plus encrypt/decrypt work.
fn bench_backend_workhorses(c: &mut Criterion) {
    use ppds_paillier::SlotLayout;
    use ppds_smc::multiplication::{
        dot_many_keyholder, dot_many_peer, mul_batches_keyholder, mul_batches_peer, zero_sum_masks,
        ResponsePacking,
    };
    use ppds_smc::sharing::{
        sharing_dot_querier, sharing_dot_responder, sharing_fold_keyholder_batch,
        sharing_fold_peer_batch, DealerTape, Fe, SharingLedger,
    };

    let packing = ResponsePacking {
        layout: SlotLayout::new(keypair().public.bits(), 24).unwrap(),
        offset: ppds_bigint::BigUint::from_u64((1 << 20) + 200),
    };
    let mask_bound = BigUint::from_u64(1 << 20);
    let xs: [i64; 4] = [25, -6, -8, 1];

    let mut group = c.benchmark_group("backend_dot_many");
    group.sample_size(10);
    for k in [4usize, 16, 64, 256] {
        let rows: Vec<Vec<i64>> = (0..k as i64)
            .map(|j| vec![1, j % 7, j % 5, (j % 7) * (j % 7) + (j % 5) * (j % 5)])
            .collect();
        let rows_big: Vec<Vec<BigInt>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| BigInt::from_i64(v)).collect())
            .collect();
        let rows_fe: Vec<Vec<Fe>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| Fe::embed(v)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("paillier_packed", k), &k, |b, &k| {
            b.iter(|| {
                let (mut kchan, mut pchan) = duplex();
                let xs2: Vec<BigInt> = xs.iter().map(|&v| BigInt::from_i64(v)).collect();
                let p2 = packing.clone();
                let handle = std::thread::spawn(move || {
                    dot_many_keyholder(
                        &mut kchan,
                        keypair(),
                        &xs2,
                        k,
                        Some(&p2),
                        &ProtocolContext::new(3),
                    )
                    .unwrap()
                });
                dot_many_peer(
                    &mut pchan,
                    &keypair().public,
                    &rows_big,
                    &mask_bound,
                    Some(&packing),
                    &ProtocolContext::new(4),
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("sharing", k), &k, |b, &k| {
            // Both sides must share the tape seed and walk the same
            // context path — the path-symmetry contract of DESIGN.md §14.
            let tape = DealerTape::from_seed(0xD07 + k as u64);
            let ctx = ProtocolContext::new(5).at(k as u64);
            b.iter(|| {
                let (mut qchan, mut rchan) = duplex();
                let xs2: Vec<Fe> = xs.iter().map(|&v| Fe::embed(v)).collect();
                let handle = std::thread::spawn(move || {
                    let mut acct = SharingLedger::default();
                    sharing_dot_querier(&tape, &mut qchan, &xs2, k, &ctx, &mut acct).unwrap()
                });
                let mut masks_rng = ctx.narrow("bench_mask").rng();
                let masks: Vec<Fe> = (0..k).map(|_| Fe::random(&mut masks_rng)).collect();
                let mut acct = SharingLedger::default();
                sharing_dot_responder(&tape, &mut rchan, &rows_fe, &masks, &ctx, &mut acct)
                    .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();

    // Zero-sum masks concentrate up to (len-1)·bound in the closing mask,
    // so the fold packing needs a wider offset than the dot-product one.
    let fold_packing = ResponsePacking {
        layout: SlotLayout::new(keypair().public.bits(), 24).unwrap(),
        offset: ppds_bigint::BigUint::from_u64(4 << 20),
    };
    let mut group = c.benchmark_group("backend_mul_batches");
    group.sample_size(10);
    for k in [4usize, 16, 64, 256] {
        let groups: Vec<Vec<i64>> = (0..k as i64)
            .map(|g| (0..4).map(|i| (g * 4 + i) % 97).collect())
            .collect();
        let groups_big: Vec<Vec<BigInt>> = groups
            .iter()
            .map(|r| r.iter().map(|&v| BigInt::from_i64(v)).collect())
            .collect();
        let groups_fe: Vec<Vec<Fe>> = groups
            .iter()
            .map(|r| r.iter().map(|&v| Fe::embed(v)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("paillier_packed", k), &k, |b, _| {
            b.iter(|| {
                let (mut kchan, mut pchan) = duplex();
                let g2 = groups_big.clone();
                let p2 = fold_packing.clone();
                let handle = std::thread::spawn(move || {
                    let kctx = ProtocolContext::new(20).narrow("mul");
                    mul_batches_keyholder(
                        &mut kchan,
                        keypair(),
                        &g2,
                        |g| kctx.at(g as u64),
                        Some(&p2),
                    )
                    .unwrap()
                });
                let pctx = ProtocolContext::new(21).narrow("mul");
                mul_batches_peer(
                    &mut pchan,
                    &keypair().public,
                    &groups_big,
                    |g| zero_sum_masks(pctx.narrow("mask").at(g as u64).rng(), 4, &mask_bound),
                    |g| pctx.at(g as u64),
                    Some(&fold_packing),
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("sharing", k), &k, |b, _| {
            let tape = DealerTape::from_seed(0xF01D + k as u64);
            let ctx = ProtocolContext::new(22).narrow("mul");
            b.iter(|| {
                let (mut kchan, mut pchan) = duplex();
                let g2 = groups_fe.clone();
                let handle = std::thread::spawn(move || {
                    let mut acct = SharingLedger::default();
                    sharing_fold_keyholder_batch(
                        &tape,
                        &mut kchan,
                        &g2,
                        |g| ctx.at(g as u64),
                        &mut acct,
                    )
                    .unwrap()
                });
                let mut acct = SharingLedger::default();
                sharing_fold_peer_batch(
                    &tape,
                    &mut pchan,
                    &groups_fe,
                    |g| ctx.at(g as u64),
                    &mut acct,
                )
                .unwrap();
                handle.join().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_multiplication,
    bench_yao,
    bench_ideal_compare,
    bench_kth_selection,
    bench_batching_ablation,
    bench_keyed_derivation,
    bench_parallel_batch_encryption,
    bench_dgk_reply_packing,
    bench_dot_many_packing,
    bench_kernel_legs,
    bench_trace_overhead,
    bench_backend_workhorses
);
criterion_main!(benches);
