//! End-to-end protocol benchmarks: one neighborhood query of each distance
//! protocol, and complete small clustering runs for all four protocol
//! families (the numbers behind EXPERIMENTS.md's cost discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdbscan::config::ProtocolConfig;
use ppdbscan::{ArbitraryPartition, VerticalPartition};
use ppds_bench::{
    blob_workload, run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_vertical_pair,
};
use ppds_dbscan::{DbscanParams, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Full clustering runs at a size where a benchmark iteration stays under a
/// second. Key size 128 bits: the protocol structure (not the crypto
/// strength) is what these benches characterize.
fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run_n18");
    group.sample_size(10);
    let mut w = blob_workload(18, 2, 7);
    w.cfg.key_bits = 128;

    group.bench_function("horizontal", |b| {
        b.iter(|| run_horizontal_pair(&w.cfg, &w.alice, &w.bob, rng(1), rng(2)).unwrap());
    });
    group.bench_function("enhanced", |b| {
        b.iter(|| run_enhanced_pair(&w.cfg, &w.alice, &w.bob, rng(3), rng(4)).unwrap());
    });
    let vertical = VerticalPartition::split(&w.all, 1);
    group.bench_function("vertical", |b| {
        b.iter(|| run_vertical_pair(&w.cfg, &vertical, rng(5), rng(6)).unwrap());
    });
    let arbitrary = ArbitraryPartition::random(&mut rng(7), &w.all);
    group.bench_function("arbitrary", |b| {
        b.iter(|| run_arbitrary_pair(&w.cfg, &arbitrary, rng(8), rng(9)).unwrap());
    });
    // Round-batched variants: identical outputs, O(1) wire rounds per
    // neighborhood query (in-process the win is fewer frames + syscalls;
    // on a real link it is the latency collapse E10 models).
    let batched_cfg = w.cfg.with_batching(true);
    group.bench_function("horizontal_batched", |b| {
        b.iter(|| run_horizontal_pair(&batched_cfg, &w.alice, &w.bob, rng(1), rng(2)).unwrap());
    });
    group.bench_function("vertical_batched", |b| {
        b.iter(|| run_vertical_pair(&batched_cfg, &vertical, rng(5), rng(6)).unwrap());
    });
    group.bench_function("arbitrary_batched", |b| {
        b.iter(|| run_arbitrary_pair(&batched_cfg, &arbitrary, rng(8), rng(9)).unwrap());
    });
    group.finish();
}

/// Horizontal run cost as the peer set grows (the l(n−l) pair term).
fn bench_horizontal_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("horizontal_by_n");
    group.sample_size(10);
    for n in [8usize, 16, 24] {
        let mut w = blob_workload(n, 2, 100 + n as u64);
        w.cfg.key_bits = 128;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_horizontal_pair(&w.cfg, &w.alice, &w.bob, rng(10), rng(11)).unwrap());
        });
    }
    group.finish();
}

/// Plaintext DBSCAN for reference: the privacy overhead factor is the ratio
/// between these and the protocol runs above.
fn bench_plaintext_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("plaintext_dbscan");
    for n in [100usize, 1000] {
        let w = blob_workload(n, 2, 200 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ppds_dbscan::dbscan(&w.all, w.cfg.params));
        });
    }
    group.finish();
}

/// Key-size ablation on the full horizontal run.
fn bench_key_size_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("horizontal_by_key_bits");
    group.sample_size(10);
    for key_bits in [128usize, 256, 512] {
        let mut w = blob_workload(12, 2, 300);
        w.cfg.key_bits = key_bits;
        group.bench_with_input(BenchmarkId::from_parameter(key_bits), &key_bits, |b, _| {
            b.iter(|| run_horizontal_pair(&w.cfg, &w.alice, &w.bob, rng(12), rng(13)).unwrap());
        });
    }
    group.finish();
}

/// Region-query indexes on plaintext data (the paper's §4.3.2 notes the n²
/// bound assumes no spatial index; this quantifies what an index buys).
fn bench_region_query_index(c: &mut Criterion) {
    use ppds_dbscan::index::{GridIndex, LinearIndex, NeighborIndex};
    let w = blob_workload(2000, 2, 400);
    let eps_sq = w.cfg.params.eps_sq;
    let query = Point::new(vec![0, 0]);
    let mut group = c.benchmark_group("region_query_n2000");
    group.bench_function("linear", |b| {
        let index = LinearIndex::new(&w.all, eps_sq);
        b.iter(|| index.region_query(&query));
    });
    group.bench_function("grid", |b| {
        let index = GridIndex::new(&w.all, eps_sq);
        b.iter(|| index.region_query(&query));
    });
    group.finish();
}

/// Keeps the unused-field warning away while exercising config validation.
fn bench_config_validate(c: &mut Criterion) {
    let cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 81,
            min_pts: 3,
        },
        60,
    );
    c.bench_function("config_validate", |b| b.iter(|| cfg.validate(4).unwrap()));
}

/// The vertical protocol end to end on both SMC substrates (n = 12,
/// round-batched; packing on for the Paillier row — its best framing).
/// Criterion measures wall time; the wire bytes each substrate moves are
/// printed once per row, since the byte cut is the backend's headline
/// delta (the full-size figures live in E12 / BENCH_protocols.json).
fn bench_backend_vertical_e2e(c: &mut Criterion) {
    use ppds_smc::BackendKind;
    let mut w = blob_workload(12, 2, 7);
    w.cfg.key_bits = 128;
    let vertical = VerticalPartition::split(&w.all, 1);
    let mut group = c.benchmark_group("vertical_e2e_backends_n12");
    group.sample_size(10);
    for (label, cfg) in [
        (
            "paillier_packed",
            w.cfg.with_batching(true).with_packing(true),
        ),
        (
            "sharing",
            w.cfg.with_batching(true).with_backend(BackendKind::Sharing),
        ),
    ] {
        let (out, _) = run_vertical_pair(&cfg, &vertical, rng(5), rng(6)).unwrap();
        println!(
            "vertical_e2e_backends_n12/{label}: {} bytes on the wire",
            out.traffic.total_bytes()
        );
        group.bench_function(label, |b| {
            b.iter(|| run_vertical_pair(&cfg, &vertical, rng(5), rng(6)).unwrap());
        });
    }
    group.finish();
}

/// The pruning subsystem's plaintext core: per query, enumerating the
/// band-intersecting candidates and distance-filtering them, versus the
/// all-pairs scan it replaces. Downstream secure-comparison work is
/// proportional to the candidate count, so this ratio is the protocol-level
/// speedup ceiling (E13 measures the realized end-to-end number).
fn bench_candidate_generation(c: &mut Criterion) {
    use ppds_dbscan::{band_width, dist_sq, CoarseGrid};
    let mut group = c.benchmark_group("candidate_generation");
    for n in [100usize, 1000] {
        let w = blob_workload(n, 2, 500 + n as u64);
        let eps_sq = w.cfg.params.eps_sq as u64;
        let width = band_width(w.cfg.params.eps_sq, 1);
        let grid = CoarseGrid::from_points(&w.all, width);
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            b.iter(|| {
                (0..w.all.len())
                    .map(|x| {
                        grid.candidates(w.all[x].coords())
                            .into_iter()
                            .filter(|&y| y != x && dist_sq(&w.all[x], &w.all[y]) <= eps_sq)
                            .count()
                    })
                    .sum::<usize>()
            });
        });
        group.bench_with_input(BenchmarkId::new("all_pairs", n), &n, |b, _| {
            b.iter(|| {
                (0..w.all.len())
                    .map(|x| {
                        (0..w.all.len())
                            .filter(|&y| y != x && dist_sq(&w.all[x], &w.all[y]) <= eps_sq)
                            .count()
                    })
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

/// Grid pruning end to end on the vertical protocol (sharing backend,
/// round-batched): same labels, strictly fewer secure comparisons. The
/// comparison counts are printed once per row so the wall-time delta can be
/// read against the work delta.
fn bench_pruned_vertical_e2e(c: &mut Criterion) {
    use ppds_dbscan::Pruning;
    use ppds_smc::BackendKind;
    let mut w = blob_workload(100, 2, 600);
    w.cfg.key_bits = 128;
    let vertical = VerticalPartition::split(&w.all, 1);
    let base = w.cfg.with_batching(true).with_backend(BackendKind::Sharing);
    let mut group = c.benchmark_group("vertical_pruning_n100");
    group.sample_size(10);
    for (label, cfg) in [
        ("exhaustive", base),
        (
            "grid_pruned",
            base.with_pruning(Pruning::Grid { coarseness: 1 }),
        ),
    ] {
        let (out, _) = run_vertical_pair(&cfg, &vertical, rng(14), rng(15)).unwrap();
        println!(
            "vertical_pruning_n100/{label}: {} secure comparisons",
            out.yao.comparisons
        );
        group.bench_function(label, |b| {
            b.iter(|| run_vertical_pair(&cfg, &vertical, rng(14), rng(15)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_runs,
    bench_horizontal_scaling,
    bench_plaintext_reference,
    bench_key_size_ablation,
    bench_region_query_index,
    bench_config_validate,
    bench_backend_vertical_e2e,
    bench_candidate_generation,
    bench_pruned_vertical_e2e
);
criterion_main!(benches);
