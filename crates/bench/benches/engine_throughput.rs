//! Engine benchmarks: batched precomputed-randomizer encryption vs the
//! baseline `encrypt`, and scheduler throughput at increasing worker
//! counts.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ppdbscan::{ProtocolConfig, SessionRequest};
use ppds_bench::rng;
use ppds_bigint::BigUint;
use ppds_dbscan::{dbscan_parallel, DbscanParams, Point};
use ppds_engine::{ClusteringJob, Engine, EngineConfig};
use ppds_paillier::{Keypair, RandomizerPool};
use rand::Rng;
use std::hint::black_box;

/// Baseline `encrypt` vs `encrypt_with_randomizer` fed from a prefilled
/// pool, per key size — the paper's hot path, amortized.
fn bench_precomputed_encryption(c: &mut Criterion) {
    for bits in [256usize, 512, 1024] {
        let keypair = Keypair::generate(bits, &mut rng(1));
        let mut r = rng(2);
        let m = BigUint::from_u64(r.random::<u32>() as u64);

        let mut group = c.benchmark_group(format!("paillier_precompute_{bits}"));
        group.sample_size(20);
        group.bench_function("encrypt_baseline", |b| {
            let mut r = rng(3);
            b.iter(|| keypair.public.encrypt(black_box(&m), &mut r).unwrap());
        });
        group.bench_function("encrypt_precomputed", |b| {
            // The randomizer is produced off the hot path (untimed setup);
            // the measured region is what a session pays in steady state.
            let mut r = rng(4);
            b.iter_batched(
                || keypair.public.precompute_randomizer(&mut r),
                |randomizer| {
                    keypair
                        .public
                        .encrypt_with_randomizer(black_box(&m), randomizer)
                        .unwrap()
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_function("encrypt_pool_hit", |b| {
            // Full pool path (lock + pop + combine), kept at a constant
            // level so every take is a hit: setup replaces what the
            // routine consumes, exactly like fillers that keep up.
            let pool = RandomizerPool::new(keypair.public.clone(), 64);
            pool.prefill(8, &mut rng(5));
            let mut fill_rng = rng(6);
            let mut r = rng(7);
            b.iter_batched(
                || pool.prefill(1, &mut fill_rng),
                |()| pool.encrypt(black_box(&m), &mut r).unwrap(),
                BatchSize::SmallInput,
            );
        });
        group.bench_function("precompute_offline_cost", |b| {
            // What the filler threads pay per randomizer, off the hot path.
            let mut r = rng(6);
            b.iter(|| keypair.public.precompute_randomizer(&mut r));
        });
        group.finish();
    }
}

fn horizontal_job(seed: u64) -> ClusteringJob {
    let mut cfg = ProtocolConfig::new(
        DbscanParams {
            eps_sq: 8,
            min_pts: 3,
        },
        10,
    );
    cfg.key_bits = 64;
    let mut r = rng(seed);
    let points = |n: usize, r: &mut rand::rngs::StdRng| -> Vec<Point> {
        (0..n)
            .map(|_| Point::new(vec![r.random_range(-10..=10), r.random_range(-10..=10)]))
            .collect()
    };
    ClusteringJob::new(
        cfg,
        SessionRequest::Horizontal {
            alice: points(8, &mut r),
            bob: points(8, &mut r),
        },
        seed,
    )
}

/// 16 identical sessions through the scheduler at growing pool widths;
/// the worker axis shows the multi-session speedup.
fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_16_jobs");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let engine = Engine::start(EngineConfig::with_workers(workers));
                    engine.submit_all((0..16).map(horizontal_job));
                    let results = engine.wait_all();
                    assert!(results.iter().all(|r| r.is_ok()));
                    engine.shutdown().completed
                });
            },
        );
    }
    group.finish();
}

/// Intra-job parallelism: sharded parallel DBSCAN vs the sequential
/// reference on a plaintext workload.
fn bench_sharded_dbscan(c: &mut Criterion) {
    let mut r = rng(7);
    let points: Vec<Point> = (0..4000)
        .map(|_| Point::new(vec![r.random_range(-500..500), r.random_range(-500..500)]))
        .collect();
    let params = DbscanParams {
        eps_sq: 100,
        min_pts: 4,
    };
    let mut group = c.benchmark_group("dbscan_4000pts");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| ppds_dbscan::dbscan(black_box(&points), params));
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded_parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| dbscan_parallel(black_box(&points), params, workers));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_precomputed_encryption,
    bench_engine_scaling,
    bench_sharded_dbscan
);
criterion_main!(benches);
