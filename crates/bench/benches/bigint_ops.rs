//! Microbenchmarks for the big-integer substrate: multiplication (including
//! the Karatsuba crossover), Montgomery exponentiation, and prime
//! generation — the primitives every protocol cost decomposes into.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppds_bigint::{modular, multi_exp, prime, random, BigUint, FixedBaseTable, MontgomeryCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_mul");
    let mut r = rng(1);
    // Around the Karatsuba threshold (24 limbs = 1536 bits) and the sizes
    // Paillier actually multiplies (n of 1024-4096 bits).
    for limbs in [8usize, 16, 24, 32, 64, 128] {
        let a = random::gen_biguint_exact_bits(&mut r, limbs * 64);
        let b = random::gen_biguint_exact_bits(&mut r, limbs * 64);
        group.bench_with_input(BenchmarkId::from_parameter(limbs), &limbs, |bench, _| {
            bench.iter(|| black_box(&a) * black_box(&b));
        });
    }
    group.finish();
}

fn bench_mod_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_mod_pow");
    group.sample_size(20);
    let mut r = rng(2);
    for bits in [256usize, 512, 1024, 2048] {
        let mut modulus = random::gen_biguint_exact_bits(&mut r, bits);
        modulus.set_bit(0, true);
        let base = random::gen_biguint_below(&mut r, &modulus);
        let exp = random::gen_biguint_exact_bits(&mut r, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| modular::mod_pow(black_box(&base), black_box(&exp), &modulus));
        });
    }
    group.finish();
}

/// Straus/Pippenger multi-exponentiation against the per-operand ladder it
/// replaces on the packed-aggregation and dot-product response legs. The
/// k sweep crosses the Straus→Pippenger cutoff (32).
fn bench_multi_exp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_multi_exp");
    group.sample_size(10);
    let mut r = rng(8);
    let mut modulus = random::gen_biguint_exact_bits(&mut r, 512);
    modulus.set_bit(0, true);
    let ctx = MontgomeryCtx::new(&modulus).unwrap();
    for k in [4usize, 16, 64, 256] {
        let operands: Vec<(BigUint, BigUint)> = (0..k)
            .map(|_| {
                (
                    random::gen_biguint_below(&mut r, &modulus),
                    random::gen_biguint_exact_bits(&mut r, 128),
                )
            })
            .collect();
        let pairs: Vec<(&BigUint, &BigUint)> = operands.iter().map(|(b, e)| (b, e)).collect();
        group.bench_with_input(BenchmarkId::new("multi_exp", k), &k, |bench, _| {
            bench.iter(|| multi_exp(&ctx, black_box(&pairs)));
        });
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |bench, _| {
            bench.iter(|| {
                operands.iter().fold(BigUint::one(), |acc, (b, e)| {
                    modular::mod_mul(&acc, &modular::mod_pow(b, e, &modulus), &modulus)
                })
            });
        });
    }
    group.finish();
}

/// Fixed-base comb (key-lifetime table, zero squarings at eval) against the
/// plain windowed ladder, at the modulus sizes the general-`g` Paillier
/// path actually exponentiates over.
fn bench_fixed_base(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_fixed_base");
    group.sample_size(20);
    let mut r = rng(9);
    for bits in [512usize, 1024, 2048] {
        let mut modulus = random::gen_biguint_exact_bits(&mut r, bits);
        modulus.set_bit(0, true);
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let base = random::gen_biguint_below(&mut r, &modulus);
        let exp = random::gen_biguint_exact_bits(&mut r, bits);
        let table = FixedBaseTable::new(&ctx, &base, 4, bits);
        group.bench_with_input(BenchmarkId::new("fixed_base", bits), &bits, |bench, _| {
            bench.iter(|| table.pow(black_box(&exp)));
        });
        group.bench_with_input(BenchmarkId::new("plain", bits), &bits, |bench, _| {
            bench.iter(|| modular::mod_pow(black_box(&base), black_box(&exp), &modulus));
        });
    }
    group.finish();
}

/// Montgomery batch inversion (one inversion + 3(k−1) multiplications)
/// against k independent `mod_inverse` calls — the CRT-unpacking and
/// batch-validation kernel.
fn bench_batch_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_batch_inverse");
    let mut r = rng(10);
    let mut modulus = random::gen_biguint_exact_bits(&mut r, 512);
    modulus.set_bit(0, true);
    let ctx = MontgomeryCtx::new(&modulus).unwrap();
    for k in [4usize, 16, 64] {
        let values: Vec<BigUint> = (0..k)
            .map(|_| random::gen_biguint_below(&mut r, &modulus))
            .collect();
        group.bench_with_input(BenchmarkId::new("batch", k), &k, |bench, _| {
            bench.iter(|| modular::batch_mod_inverse_with(&ctx, black_box(&values)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("per_element", k), &k, |bench, _| {
            bench.iter(|| {
                values
                    .iter()
                    .map(|v| modular::mod_inverse(v, &modulus).unwrap())
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

fn bench_div_rem(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_div_rem");
    let mut r = rng(3);
    for (ubits, vbits) in [(1024usize, 512usize), (2048, 1024), (4096, 2048)] {
        let u = random::gen_biguint_exact_bits(&mut r, ubits);
        let v = random::gen_biguint_exact_bits(&mut r, vbits);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ubits}div{vbits}")),
            &ubits,
            |bench, _| {
                bench.iter(|| black_box(&u).div_rem(black_box(&v)));
            },
        );
    }
    group.finish();
}

fn bench_prime_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("prime_gen");
    group.sample_size(10);
    for bits in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, &bits| {
            let mut r = rng(4);
            bench.iter(|| prime::gen_prime(&mut r, bits));
        });
    }
    group.finish();
}

fn bench_miller_rabin(c: &mut Criterion) {
    let mut group = c.benchmark_group("miller_rabin_prime_input");
    group.sample_size(20);
    let mut r = rng(5);
    for bits in [128usize, 256, 512] {
        let p = prime::gen_prime(&mut r, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            let mut r = rng(6);
            bench.iter(|| prime::is_probable_prime(black_box(&p), 16, &mut r));
        });
    }
    group.finish();
}

fn bench_decimal_io(c: &mut Criterion) {
    let mut r = rng(7);
    let x = random::gen_biguint_exact_bits(&mut r, 2048);
    let s = x.to_string();
    c.bench_function("decimal_format_2048", |b| {
        b.iter(|| black_box(&x).to_string())
    });
    c.bench_function("decimal_parse_2048", |b| {
        b.iter(|| s.parse::<BigUint>().unwrap())
    });
}

criterion_group!(
    benches,
    bench_mul,
    bench_mod_pow,
    bench_multi_exp,
    bench_fixed_base,
    bench_batch_inverse,
    bench_div_rem,
    bench_prime_gen,
    bench_miller_rabin,
    bench_decimal_io
);
criterion_main!(benches);
