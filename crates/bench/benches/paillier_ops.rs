//! Paillier cryptosystem costs by key size: key generation, encryption,
//! both decryption paths (standard vs CRT), and the homomorphic operations
//! the Multiplication Protocol is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppds_bigint::{random, BigUint};
use ppds_paillier::Keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_keygen");
    group.sample_size(10);
    for bits in [256usize, 512, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, &bits| {
            let mut r = rng(1);
            bench.iter(|| Keypair::generate(bits, &mut r));
        });
    }
    group.finish();
}

fn bench_encrypt_decrypt(c: &mut Criterion) {
    for bits in [256usize, 512, 1024] {
        let keypair = Keypair::generate(bits, &mut rng(2));
        let mut r = rng(3);
        let m = random::gen_biguint_below(&mut r, keypair.public.n());
        let ct = keypair.public.encrypt(&m, &mut r).unwrap();

        let mut group = c.benchmark_group(format!("paillier_{bits}"));
        group.sample_size(20);
        group.bench_function("encrypt", |b| {
            let mut r = rng(4);
            b.iter(|| keypair.public.encrypt(black_box(&m), &mut r).unwrap());
        });
        group.bench_function("decrypt_standard", |b| {
            b.iter(|| keypair.private.decrypt(black_box(&ct)).unwrap());
        });
        group.bench_function("decrypt_crt", |b| {
            b.iter(|| keypair.private.decrypt_crt(black_box(&ct)).unwrap());
        });
        group.finish();
    }
}

fn bench_homomorphic_ops(c: &mut Criterion) {
    let keypair = Keypair::generate(512, &mut rng(5));
    let mut r = rng(6);
    let c1 = keypair
        .public
        .encrypt(&BigUint::from_u64(1234), &mut r)
        .unwrap();
    let c2 = keypair
        .public
        .encrypt(&BigUint::from_u64(5678), &mut r)
        .unwrap();
    let scalar = BigUint::from_u64(999_983);

    let mut group = c.benchmark_group("paillier_homomorphic_512");
    group.bench_function("add", |b| {
        b.iter(|| keypair.public.add(black_box(&c1), black_box(&c2)))
    });
    group.bench_function("mul_plain", |b| {
        b.iter(|| keypair.public.mul_plain(black_box(&c1), black_box(&scalar)))
    });
    group.bench_function("negate", |b| {
        b.iter(|| keypair.public.negate(black_box(&c1)))
    });
    group.bench_function("rerandomize", |b| {
        let mut r = rng(7);
        b.iter(|| keypair.public.rerandomize(black_box(&c1), &mut r))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_keygen,
    bench_encrypt_decrypt,
    bench_homomorphic_ops
);
criterion_main!(benches);
