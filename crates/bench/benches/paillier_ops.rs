//! Paillier cryptosystem costs by key size: key generation, encryption,
//! both decryption paths (standard vs CRT), and the homomorphic operations
//! the Multiplication Protocol is built from.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ppds_bigint::{modular, random, BigUint};
use ppds_paillier::{Keypair, PublicKey, SlotLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_keygen");
    group.sample_size(10);
    for bits in [256usize, 512, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, &bits| {
            let mut r = rng(1);
            bench.iter(|| Keypair::generate(bits, &mut r));
        });
    }
    group.finish();
}

fn bench_encrypt_decrypt(c: &mut Criterion) {
    for bits in [256usize, 512, 1024] {
        let keypair = Keypair::generate(bits, &mut rng(2));
        let mut r = rng(3);
        let m = random::gen_biguint_below(&mut r, keypair.public.n());
        let ct = keypair.public.encrypt(&m, &mut r).unwrap();

        let mut group = c.benchmark_group(format!("paillier_{bits}"));
        group.sample_size(20);
        group.bench_function("encrypt", |b| {
            let mut r = rng(4);
            b.iter(|| keypair.public.encrypt(black_box(&m), &mut r).unwrap());
        });
        group.bench_function("decrypt_standard", |b| {
            b.iter(|| keypair.private.decrypt(black_box(&ct)).unwrap());
        });
        group.bench_function("decrypt_crt", |b| {
            b.iter(|| keypair.private.decrypt_crt(black_box(&ct)).unwrap());
        });
        group.finish();
    }
}

fn bench_homomorphic_ops(c: &mut Criterion) {
    let keypair = Keypair::generate(512, &mut rng(5));
    let mut r = rng(6);
    let c1 = keypair
        .public
        .encrypt(&BigUint::from_u64(1234), &mut r)
        .unwrap();
    let c2 = keypair
        .public
        .encrypt(&BigUint::from_u64(5678), &mut r)
        .unwrap();
    let scalar = BigUint::from_u64(999_983);

    let mut group = c.benchmark_group("paillier_homomorphic_512");
    group.bench_function("add", |b| {
        b.iter(|| keypair.public.add(black_box(&c1), black_box(&c2)))
    });
    group.bench_function("mul_plain", |b| {
        b.iter(|| keypair.public.mul_plain(black_box(&c1), black_box(&scalar)))
    });
    group.bench_function("negate", |b| {
        b.iter(|| keypair.public.negate(black_box(&c1)))
    });
    group.bench_function("rerandomize", |b| {
        let mut r = rng(7);
        b.iter(|| keypair.public.rerandomize(black_box(&c1), &mut r))
    });
    group.finish();
}

/// General-`g` encryption with pool-served randomizers (the protocol
/// hot-path configuration): the `g^m` leg runs through the fixed-base comb
/// when kernels are attached, through the plain windowed ladder otherwise.
fn bench_general_g_kernels(c: &mut Criterion) {
    let keypair = Keypair::generate(512, &mut rng(8));
    let n = keypair.public.n().clone();
    let nn = keypair.public.n_squared().clone();
    // (n+1)² is a valid general generator without the (1+n)^m shortcut.
    let np1 = &n + 1u64;
    let g = modular::mod_mul(&np1, &np1, &nn);
    let pk_off = PublicKey::with_generator(n.clone(), g).unwrap();
    let pk_on = pk_off.clone().with_exp_kernels();
    let m = random::gen_biguint_below(&mut rng(9), &n);

    let mut group = c.benchmark_group("paillier_general_g_512");
    group.sample_size(20);
    for (label, pk) in [
        ("encrypt_pooled_kernels_off", &pk_off),
        ("encrypt_pooled_kernels_on", &pk_on),
    ] {
        group.bench_function(label, |b| {
            let mut r = rng(10);
            b.iter_batched(
                || pk.precompute_randomizers(1, &mut r).pop().unwrap(),
                |rand| pk.encrypt_with_randomizer(black_box(&m), rand).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Unpacking k packed words: the batch-inversion validation path against
/// the former per-word validate + decrypt loop.
fn bench_unpack_words(c: &mut Criterion) {
    use rand::Rng as _;
    let kp = Keypair::generate(512, &mut rng(11));
    let layout = SlotLayout::new(kp.public.bits(), 32).unwrap();
    let mut group = c.benchmark_group("paillier_unpack_512");
    group.sample_size(10);
    for words_n in [4usize, 16] {
        let count = layout.capacity() * words_n;
        let mut r = rng(12);
        let slots: Vec<BigUint> = (0..count)
            .map(|_| BigUint::from_u64(r.random_range(0..1u64 << 32)))
            .collect();
        let words = kp.public.pack_encrypt(&layout, &slots, &mut r).unwrap();
        group.bench_with_input(
            BenchmarkId::new("batch_validate", words_n),
            &words_n,
            |bench, _| {
                bench.iter(|| {
                    kp.private
                        .unpack_decrypt(&layout, black_box(&words), count)
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_word_validate", words_n),
            &words_n,
            |bench, _| {
                bench.iter(|| {
                    words
                        .iter()
                        .flat_map(|w| {
                            let word = kp.private.decrypt_crt(w).unwrap();
                            layout.split_word(&word, layout.capacity())
                        })
                        .take(count)
                        .collect::<Vec<_>>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_keygen,
    bench_encrypt_decrypt,
    bench_homomorphic_ops,
    bench_general_g_kernels,
    bench_unpack_words
);
criterion_main!(benches);
