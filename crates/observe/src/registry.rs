//! The operator metrics registry: named counters, gauges, and per-label
//! traffic rollups for long-running components (the engine scheduler, a
//! future server front-end).
//!
//! Unlike the [`crate::SpanRecorder`] — which captures one session and is
//! then read once — the registry lives as long as the process and is read
//! while it runs. Handles ([`Counter`], [`Gauge`]) are cheap atomics the
//! hot path touches; the registry's own maps are behind mutexes but only
//! on the get-or-create and snapshot paths.

use ppds_transport::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing named count (jobs completed, errors seen).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named level that moves both ways (queue depth, jobs in flight).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A process-wide registry of named [`Counter`]s, [`Gauge`]s, and
/// per-label [`MetricsSnapshot`] traffic rollups.
///
/// Get-or-create semantics: two callers asking for the same name share the
/// same underlying atomic, so a component can re-derive its handles from
/// the registry instead of threading them through constructors.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    traffic: Mutex<BTreeMap<String, MetricsSnapshot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first request.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().expect("registry poisoned");
        let cell = counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// The gauge named `name`, created at zero on first request.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.gauges.lock().expect("registry poisoned");
        let cell = gauges
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// Folds `snapshot` into the traffic rollup under `label` (typically a
    /// protocol mode name).
    pub fn record_traffic(&self, label: &str, snapshot: MetricsSnapshot) {
        let mut traffic = self.traffic.lock().expect("registry poisoned");
        let entry = traffic.entry(label.to_owned()).or_default();
        *entry += snapshot;
    }

    /// The accumulated traffic rollup under `label`, if any was recorded.
    pub fn traffic(&self, label: &str) -> Option<MetricsSnapshot> {
        self.traffic
            .lock()
            .expect("registry poisoned")
            .get(label)
            .copied()
    }

    /// Every counter's current value, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Every gauge's current level, sorted by name.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// The whole registry as a flat `name value` text block (one metric per
    /// line, traffic rollups expanded per field) — the shape a scrape
    /// endpoint or a log line wants.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in self.gauges() {
            let _ = writeln!(out, "{name} {value}");
        }
        let traffic = self.traffic.lock().expect("registry poisoned");
        for (label, snap) in traffic.iter() {
            let _ = writeln!(
                out,
                "traffic_bytes_sent{{label=\"{label}\"}} {}",
                snap.bytes_sent
            );
            let _ = writeln!(
                out,
                "traffic_bytes_received{{label=\"{label}\"}} {}",
                snap.bytes_received
            );
            let _ = writeln!(
                out,
                "traffic_messages_sent{{label=\"{label}\"}} {}",
                snap.messages_sent
            );
            let _ = writeln!(
                out,
                "traffic_messages_received{{label=\"{label}\"}} {}",
                snap.messages_received
            );
            let _ = writeln!(
                out,
                "traffic_rounds_sent{{label=\"{label}\"}} {}",
                snap.rounds_sent
            );
            let _ = writeln!(
                out,
                "traffic_rounds_received{{label=\"{label}\"}} {}",
                snap.rounds_received
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("jobs");
        let b = registry.counter("jobs");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("jobs").get(), 3);

        let g = registry.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(registry.gauge("depth").get(), 1);
        g.set(-5);
        assert_eq!(registry.gauge("depth").get(), -5);
    }

    #[test]
    fn traffic_rollups_accumulate() {
        let registry = MetricsRegistry::new();
        let snap = MetricsSnapshot {
            bytes_sent: 10,
            messages_sent: 2,
            ..Default::default()
        };
        registry.record_traffic("vertical", snap);
        registry.record_traffic("vertical", snap);
        let total = registry.traffic("vertical").unwrap();
        assert_eq!(total.bytes_sent, 20);
        assert_eq!(total.messages_sent, 4);
        assert!(registry.traffic("horizontal").is_none());
    }

    #[test]
    fn render_text_lists_everything() {
        let registry = MetricsRegistry::new();
        registry.counter("engine_jobs_completed").add(7);
        registry.gauge("engine_queue_depth").set(3);
        registry.record_traffic(
            "enhanced",
            MetricsSnapshot {
                bytes_sent: 42,
                ..Default::default()
            },
        );
        let text = registry.render_text();
        assert!(text.contains("engine_jobs_completed 7"));
        assert!(text.contains("engine_queue_depth 3"));
        assert!(text.contains("traffic_bytes_sent{label=\"enhanced\"} 42"));
    }

    #[test]
    fn concurrent_handle_use_is_consistent() {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let counter = registry.counter("hits");
                    let gauge = registry.gauge("level");
                    for _ in 0..1000 {
                        counter.inc();
                        gauge.inc();
                        gauge.dec();
                    }
                });
            }
        });
        assert_eq!(registry.counter("hits").get(), 4000);
        assert_eq!(registry.gauge("level").get(), 0);
    }
}
