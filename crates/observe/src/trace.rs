//! The thread-local tracer: sink installation and the [`Span`] guard.
//!
//! Tracing is scoped per thread: a session installs its sink with
//! [`install`] for the duration of the run, protocol code opens spans with
//! [`span`]/[`span_with`], and fan-out layers (the `par_map` pool)
//! propagate the sink to their workers via [`current`] + [`install`]. With
//! no sink installed, every entry point here is a thread-local read and a
//! branch — labels are not formatted, metrics closures are not called,
//! nothing allocates.

use crate::sink::{SpanKind, TraceSink};
use ppds_transport::MetricsSnapshot;
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static CURRENT: RefCell<Option<Arc<dyn TraceSink>>> = const { RefCell::new(None) };
}

/// Restores the previously installed sink (if any) when dropped.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub struct SinkGuard {
    previous: Option<Arc<dyn TraceSink>>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            *current.borrow_mut() = self.previous.take();
        });
    }
}

impl std::fmt::Debug for SinkGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkGuard").finish_non_exhaustive()
    }
}

/// Installs `sink` as this thread's tracer until the returned guard drops
/// (the previous sink, if any, is restored — installs nest).
pub fn install(sink: Arc<dyn TraceSink>) -> SinkGuard {
    let previous = CURRENT.with(|current| current.borrow_mut().replace(sink));
    SinkGuard { previous }
}

/// This thread's installed sink, for propagation into spawned workers.
pub fn current() -> Option<Arc<dyn TraceSink>> {
    CURRENT.with(|current| current.borrow().clone())
}

/// `true` if a sink is installed on this thread.
pub fn enabled() -> bool {
    CURRENT.with(|current| current.borrow().is_some())
}

fn record(kind: SpanKind, label: &str, metrics: MetricsSnapshot) {
    CURRENT.with(|current| {
        if let Some(sink) = current.borrow().as_ref() {
            sink.record(kind, label, metrics);
        }
    });
}

/// An open span. Close it with [`Span::end`], passing the channel snapshot
/// at the phase boundary; if it is instead dropped (an error `?`-return
/// unwound through the phase), the span closes with its *begin* snapshot —
/// a zero traffic delta — so the trace's nesting stays well-formed on
/// every path.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    /// `None` when tracing was disabled at creation.
    open: Option<(String, MetricsSnapshot)>,
}

impl Span {
    /// Closes the span, stamping the end edge with `metrics` (not called
    /// when tracing is off).
    pub fn end<M: FnOnce() -> MetricsSnapshot>(mut self, metrics: M) {
        if let Some((label, _)) = self.open.take() {
            record(SpanKind::End, &label, metrics());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((label, begin)) = self.open.take() {
            record(SpanKind::End, &label, begin);
        }
    }
}

/// Opens a span named `label`, stamping the begin edge with `metrics()`.
/// When no sink is installed both arguments are ignored and the returned
/// span is inert.
pub fn span<M: FnOnce() -> MetricsSnapshot>(label: &str, metrics: M) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    let begin = metrics();
    record(SpanKind::Begin, label, begin);
    Span {
        open: Some((label.to_owned(), begin)),
    }
}

/// [`span`] with a lazily formatted label (`"query#3"` and friends): the
/// label closure runs only when a sink is installed, so disabled runs
/// never pay the `format!`.
pub fn span_with<L, M>(label: L, metrics: M) -> Span
where
    L: FnOnce() -> String,
    M: FnOnce() -> MetricsSnapshot,
{
    if !enabled() {
        return Span { open: None };
    }
    let label = label();
    let begin = metrics();
    record(SpanKind::Begin, &label, begin);
    Span {
        open: Some((label, begin)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{SpanRecorder, TraceEvent};

    fn snap(bytes: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_sent: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn disabled_spans_touch_nothing() {
        assert!(!enabled());
        let span = span("never", || panic!("metrics closure must not run"));
        span.end(|| panic!("end closure must not run"));
        let lazy = span_with(
            || panic!("label closure must not run"),
            || panic!("metrics closure must not run"),
        );
        drop(lazy);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = SpanRecorder::new();
        let inner = SpanRecorder::new();
        {
            let _a = install(outer.clone());
            assert!(enabled());
            {
                let _b = install(inner.clone());
                span("inner", MetricsSnapshot::default).end(MetricsSnapshot::default);
            }
            span("outer", MetricsSnapshot::default).end(MetricsSnapshot::default);
        }
        assert!(!enabled());
        let inner_labels: Vec<String> =
            inner.finish().events.into_iter().map(|e| e.label).collect();
        let outer_labels: Vec<String> =
            outer.finish().events.into_iter().map(|e| e.label).collect();
        assert_eq!(inner_labels, ["inner", "inner"]);
        assert_eq!(outer_labels, ["outer", "outer"]);
    }

    #[test]
    fn explicit_end_records_end_metrics_drop_records_begin_metrics() {
        let rec = SpanRecorder::new();
        {
            let _g = install(rec.clone());
            let s = span("ok", || snap(10));
            s.end(|| snap(25));
            let errored = span("err", || snap(25));
            drop(errored); // simulates a `?`-unwind through the phase
        }
        let events: Vec<TraceEvent> = rec.finish().events;
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].metrics, snap(25));
        assert_eq!(events[2].metrics, snap(25));
        assert_eq!(
            events[3].metrics,
            snap(25),
            "drop closes with begin snapshot"
        );
        assert_eq!(events[3].kind, SpanKind::End);
    }
}
