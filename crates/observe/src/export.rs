//! Finished traces: schema validation, per-phase rollups, Chrome export.

use crate::sink::{SpanKind, TraceEvent};
use ppds_transport::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything a [`crate::SpanRecorder`] captured for one session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionTrace {
    /// Recorded span edges, in slot-claim order (per-thread program order).
    pub events: Vec<TraceEvent>,
    /// Edges discarded because the recorder's buffer filled.
    pub dropped: u64,
}

/// A malformed span structure, found by [`SessionTrace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An end edge arrived on a thread with no span open.
    OrphanEnd {
        /// The offending end label.
        label: String,
        /// The thread it arrived on.
        thread: u64,
    },
    /// An end edge closed a different label than the innermost open span.
    MismatchedEnd {
        /// The innermost open span's label.
        expected: String,
        /// The label the end edge carried.
        got: String,
        /// The thread it arrived on.
        thread: u64,
    },
    /// A span was still open when the trace ended.
    UnclosedSpan {
        /// The unclosed span's label.
        label: String,
        /// The thread it was opened on.
        thread: u64,
    },
    /// The recorder dropped edges, so nesting cannot be verified.
    Dropped(u64),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::OrphanEnd { label, thread } => {
                write!(f, "end of \"{label}\" on thread {thread} with no span open")
            }
            TraceError::MismatchedEnd {
                expected,
                got,
                thread,
            } => write!(
                f,
                "end of \"{got}\" on thread {thread} while \"{expected}\" is innermost"
            ),
            TraceError::UnclosedSpan { label, thread } => {
                write!(f, "span \"{label}\" on thread {thread} never ended")
            }
            TraceError::Dropped(n) => write!(f, "{n} events dropped (recorder buffer full)"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One row of the flat per-phase table: every occurrence of one normalized
/// step path, aggregated.
///
/// Paths are the `/`-joined span labels from the root, with per-instance
/// `#index` suffixes stripped (`execute/query#3/cmp_batch` and
/// `execute/query#7/cmp_batch` both roll up under
/// `execute/query/cmp_batch`). A parent span's figures *include* its
/// children — the table attributes each quantity at every depth, it does
/// not partition it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRollup {
    /// Normalized step path.
    pub path: String,
    /// Spans aggregated into this row.
    pub count: u64,
    /// Summed wall time between begin and end edges, nanoseconds.
    pub wall_ns: u64,
    /// Summed traffic deltas (end snapshot minus begin snapshot).
    pub traffic: MetricsSnapshot,
}

/// `"query#3"` → `"query"`: strips one trailing `#<digits>` instance
/// index so per-query spans aggregate per step.
fn normalize(label: &str) -> &str {
    match label.rsplit_once('#') {
        Some((head, idx)) if !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) => head,
        _ => label,
    }
}

/// A span paired with its full path, produced by the replay.
struct ClosedSpan {
    /// Normalized `/`-joined path from the thread's span root.
    path: String,
    /// Depth 0 = no enclosing span on its thread.
    depth: usize,
    wall_ns: u64,
    delta: MetricsSnapshot,
}

impl SessionTrace {
    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the per-thread event sequences into closed spans, enforcing
    /// the schema along the way (every end matches the innermost begin on
    /// its thread; nothing left open; nothing dropped).
    fn replay(&self) -> Result<Vec<ClosedSpan>, TraceError> {
        if self.dropped > 0 {
            return Err(TraceError::Dropped(self.dropped));
        }
        let mut stacks: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
        let mut closed = Vec::new();
        for event in &self.events {
            let stack = stacks.entry(event.thread).or_default();
            match event.kind {
                SpanKind::Begin => stack.push(event),
                SpanKind::End => {
                    let Some(begin) = stack.pop() else {
                        return Err(TraceError::OrphanEnd {
                            label: event.label.clone(),
                            thread: event.thread,
                        });
                    };
                    if begin.label != event.label {
                        return Err(TraceError::MismatchedEnd {
                            expected: begin.label.clone(),
                            got: event.label.clone(),
                            thread: event.thread,
                        });
                    }
                    let mut path = String::new();
                    for ancestor in stack.iter() {
                        path.push_str(normalize(&ancestor.label));
                        path.push('/');
                    }
                    path.push_str(normalize(&event.label));
                    closed.push(ClosedSpan {
                        path,
                        depth: stack.len(),
                        wall_ns: event.t_ns.saturating_sub(begin.t_ns),
                        delta: begin.metrics.delta(&event.metrics),
                    });
                }
            }
        }
        for (thread, stack) in &stacks {
            if let Some(open) = stack.last() {
                return Err(TraceError::UnclosedSpan {
                    label: open.label.clone(),
                    thread: *thread,
                });
            }
        }
        Ok(closed)
    }

    /// Checks the span schema: every end edge closes the innermost open
    /// begin on its thread, no span is left open, and no edge was dropped.
    pub fn validate(&self) -> Result<(), TraceError> {
        self.replay().map(|_| ())
    }

    /// The flat per-phase table: one [`PhaseRollup`] per normalized step
    /// path, sorted by path.
    pub fn rollup(&self) -> Result<Vec<PhaseRollup>, TraceError> {
        let mut rows: BTreeMap<String, PhaseRollup> = BTreeMap::new();
        for span in self.replay()? {
            let row = rows
                .entry(span.path.clone())
                .or_insert_with(|| PhaseRollup {
                    path: span.path,
                    count: 0,
                    wall_ns: 0,
                    traffic: MetricsSnapshot::default(),
                });
            row.count += 1;
            row.wall_ns += span.wall_ns;
            row.traffic += span.delta;
        }
        Ok(rows.into_values().collect())
    }

    /// Sum of the traffic deltas of every *top-level* span (depth 0 on its
    /// thread). For a session traced by the driver dispatch — where every
    /// wire byte flows inside a top-level phase span — this equals the
    /// session's total [`MetricsSnapshot`]; the `trace_parity` integration
    /// test pins that identity.
    pub fn top_level_traffic(&self) -> Result<MetricsSnapshot, TraceError> {
        Ok(self
            .replay()?
            .into_iter()
            .filter(|span| span.depth == 0)
            .map(|span| span.delta)
            .sum())
    }

    /// This trace as a self-contained Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
    /// Perfetto. `process` names the pid-0 process (conventionally the
    /// protocol mode).
    pub fn to_chrome_json(&self, process: &str) -> String {
        chrome_trace(&[(process, self)])
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Several traces as one Chrome trace-event JSON document, one process
/// (pid) per named trace — the shape `experiments --trace` writes, with
/// every protocol mode side by side on one timeline.
pub fn chrome_trace(sessions: &[(&str, &SessionTrace)]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (pid, (name, trace)) in sessions.iter().enumerate() {
        let mut line = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\""
        );
        escape_json(name, &mut line);
        line.push_str("\"}}");
        emit(line, &mut out);
        for event in &trace.events {
            let ph = match event.kind {
                SpanKind::Begin => "B",
                SpanKind::End => "E",
            };
            let m = &event.metrics;
            let mut line = String::from("{\"name\":\"");
            escape_json(&event.label, &mut line);
            let _ = write!(
                line,
                "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\"args\":{{\
                 \"bytes_sent\":{bs},\"bytes_received\":{br},\"messages_sent\":{ms},\
                 \"messages_received\":{mr},\"rounds_sent\":{rs},\"rounds_received\":{rr}}}}}",
                tid = event.thread,
                ts = event.t_ns as f64 / 1_000.0,
                bs = m.bytes_sent,
                br = m.bytes_received,
                ms = m.messages_sent,
                mr = m.messages_received,
                rs = m.rounds_sent,
                rr = m.rounds_received,
            );
            emit(line, &mut out);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, label: &str, thread: u64, t_ns: u64, bytes: u64) -> TraceEvent {
        TraceEvent {
            kind,
            label: label.into(),
            thread,
            t_ns,
            metrics: MetricsSnapshot {
                bytes_sent: bytes,
                ..Default::default()
            },
        }
    }

    fn well_formed() -> SessionTrace {
        SessionTrace {
            events: vec![
                ev(SpanKind::Begin, "establish", 0, 0, 0),
                ev(SpanKind::End, "establish", 0, 100, 40),
                ev(SpanKind::Begin, "execute", 0, 110, 40),
                ev(SpanKind::Begin, "query#0", 0, 120, 40),
                ev(SpanKind::End, "query#0", 0, 200, 90),
                ev(SpanKind::Begin, "query#1", 0, 210, 90),
                ev(SpanKind::End, "query#1", 0, 300, 140),
                ev(SpanKind::End, "execute", 0, 310, 140),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn validates_and_rolls_up() {
        let trace = well_formed();
        trace.validate().unwrap();
        let rows = trace.rollup().unwrap();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["establish", "execute", "execute/query"]);
        let query = &rows[2];
        assert_eq!(query.count, 2, "indexes stripped, instances aggregated");
        assert_eq!(query.wall_ns, 80 + 90);
        assert_eq!(query.traffic.bytes_sent, 50 + 50);
        assert_eq!(rows[1].traffic.bytes_sent, 100, "parent includes children");
    }

    #[test]
    fn top_level_deltas_sum() {
        let total = well_formed().top_level_traffic().unwrap();
        assert_eq!(total.bytes_sent, 140);
    }

    #[test]
    fn schema_errors_are_caught() {
        let orphan = SessionTrace {
            events: vec![ev(SpanKind::End, "x", 0, 0, 0)],
            dropped: 0,
        };
        assert!(matches!(
            orphan.validate(),
            Err(TraceError::OrphanEnd { .. })
        ));

        let mismatched = SessionTrace {
            events: vec![
                ev(SpanKind::Begin, "a", 0, 0, 0),
                ev(SpanKind::End, "b", 0, 1, 0),
            ],
            dropped: 0,
        };
        assert!(matches!(
            mismatched.validate(),
            Err(TraceError::MismatchedEnd { .. })
        ));

        let unclosed = SessionTrace {
            events: vec![ev(SpanKind::Begin, "a", 0, 0, 0)],
            dropped: 0,
        };
        assert!(matches!(
            unclosed.validate(),
            Err(TraceError::UnclosedSpan { .. })
        ));

        let dropped = SessionTrace {
            events: vec![],
            dropped: 3,
        };
        assert_eq!(dropped.validate(), Err(TraceError::Dropped(3)));
    }

    #[test]
    fn threads_have_independent_stacks() {
        let trace = SessionTrace {
            events: vec![
                ev(SpanKind::Begin, "main", 0, 0, 0),
                ev(SpanKind::Begin, "worker", 1, 5, 0),
                ev(SpanKind::End, "worker", 1, 10, 0),
                ev(SpanKind::End, "main", 0, 20, 7),
            ],
            dropped: 0,
        };
        trace.validate().unwrap();
        let total = trace.top_level_traffic().unwrap();
        assert_eq!(total.bytes_sent, 7, "worker spans contribute zero deltas");
    }

    #[test]
    fn chrome_export_is_json_with_all_events() {
        let trace = well_formed();
        let json = trace.to_chrome_json("vertical");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"vertical\""));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 4);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 4);
        assert!(json.contains("\"ts\":0.120"), "ns rendered as µs");
        // Balanced braces — cheap structural sanity without a JSON parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn labels_are_escaped() {
        let trace = SessionTrace {
            events: vec![
                ev(SpanKind::Begin, "we\"ird\\label", 0, 0, 0),
                ev(SpanKind::End, "we\"ird\\label", 0, 1, 0),
            ],
            dropped: 0,
        };
        let json = trace.to_chrome_json("m");
        assert!(json.contains("we\\\"ird\\\\label"));
    }

    #[test]
    fn normalization_strips_only_numeric_suffixes() {
        assert_eq!(normalize("query#12"), "query");
        assert_eq!(normalize("query#"), "query#");
        assert_eq!(normalize("c#mp#3"), "c#mp");
        assert_eq!(normalize("plain"), "plain");
    }
}
