#![warn(missing_docs)]

//! **ppds-observe** — the protocol flight recorder.
//!
//! The protocol suite's built-in accounting ([`MetricsSnapshot`],
//! `LeakageLog`, `YaoLedger`) is a whole-session rollup: it answers "how
//! much" but never "which phase". This crate adds the missing axis — spans.
//! A span is a begin/end event pair keyed by the same step-path vocabulary
//! `ProtocolContext::narrow` already uses for randomness substreams
//! (`"establish"`, `"execute"`, `"query#3"`, `"cmp_batch"`, …), carrying a
//! wall-clock timestamp and a channel [`MetricsSnapshot`] at each edge. The
//! difference of the two snapshots scopes bytes/messages/rounds to that
//! phase; the difference of the two timestamps scopes wall time.
//!
//! The design constraints, in order:
//!
//! 1. **Inert when off.** Tracing is opt-in per thread via
//!    [`trace::install`]. With no sink installed, [`trace::span`] is one
//!    thread-local read and a branch — the label is never allocated, the
//!    metrics closure never called, and (critically) *no protocol byte,
//!    label, leakage event, or ledger entry changes either way*. The sink
//!    observes frames and clocks; it never participates in the protocol.
//!    The workspace's `trace_parity` integration test pins byte-identical
//!    wire transcripts with tracing on vs. off across all five modes.
//! 2. **Lock-free on the hot path.** [`SpanRecorder`] appends events into
//!    a pre-allocated slot buffer with one `fetch_add` — no mutex, no
//!    allocation after construction (beyond the label string), no
//!    contention between the session thread and `par_map` workers.
//! 3. **One vocabulary.** Span labels reuse the `narrow` step names, so a
//!    trace, a leakage log, and a randomness-derivation path all speak the
//!    same language.
//!
//! A finished [`SessionTrace`] exports two ways: [`SessionTrace::to_chrome_json`]
//! writes Chrome trace-event JSON (load it in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)), and [`SessionTrace::rollup`]
//! aggregates a flat per-phase table. [`MetricsRegistry`] is the
//! long-running counterpart: named counters, gauges, and per-label traffic
//! rollups that a scheduler (or a future `ppds-server`) exposes as its
//! operator health surface.

pub mod export;
pub mod registry;
pub mod sink;
pub mod trace;

pub use export::{chrome_trace, PhaseRollup, SessionTrace, TraceError};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use sink::{NoopSink, SpanKind, SpanRecorder, TraceEvent, TraceSink};
pub use trace::{span, span_with, Span};

pub use ppds_transport::MetricsSnapshot;
