//! Trace events, the sink trait, and the lock-free [`SpanRecorder`].

use crate::export::SessionTrace;
use ppds_transport::MetricsSnapshot;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Whether an event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Span begin: the snapshot is the channel state *entering* the phase.
    Begin,
    /// Span end: the snapshot is the channel state *leaving* the phase.
    End,
}

/// One recorded span edge.
///
/// Events on the same thread are strictly ordered (a thread's `record`
/// calls are sequential), so per-thread begin/end sequences replay into a
/// well-formed span tree — [`SessionTrace::validate`] checks exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin or end.
    pub kind: SpanKind,
    /// Step label, from the same vocabulary as `ProtocolContext::narrow`
    /// (`"establish"`, `"query#3"`, `"cmp_batch"`, …).
    pub label: String,
    /// Recorder-local thread id (dense, starting at 0 in stamp order — not
    /// the OS thread id).
    pub thread: u64,
    /// Nanoseconds since the recorder's epoch.
    pub t_ns: u64,
    /// Channel traffic counters at this edge. Spans opened off the session
    /// thread (e.g. `par_map` workers) have no channel and carry the
    /// default (all-zero) snapshot on both edges — a zero delta.
    pub metrics: MetricsSnapshot,
}

/// Where span edges go. Implementations must be cheap and non-blocking:
/// the sink is called from the protocol hot path (albeit per *phase*, not
/// per record) and from `par_map` worker threads concurrently.
///
/// The sink is an observer, never a participant: implementations must not
/// touch the channel, the randomness tree, or any protocol state. The
/// workspace's trace-parity tests treat any wire or output divergence
/// between sink-on and sink-off runs as a bug.
pub trait TraceSink: Send + Sync {
    /// Records one span edge. `label` is borrowed so disabled or
    /// discarding sinks never force an allocation.
    fn record(&self, kind: SpanKind, label: &str, metrics: MetricsSnapshot);
}

/// The no-op default sink: discards every event. Installing this is
/// equivalent to (but marginally more expensive than) installing nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _kind: SpanKind, _label: &str, _metrics: MetricsSnapshot) {}
}

/// Dense per-process thread numbering for trace events. `std`'s `ThreadId`
/// has no stable integer accessor, and trace viewers want small tids
/// anyway, so the recorder hands out its own: first thread to record gets
/// 0, the next 1, and so on.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's dense trace id.
pub(crate) fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// A lock-free, bounded event buffer: the [`TraceSink`] a traced session
/// records into.
///
/// Appending claims a slot with one `fetch_add` and publishes the event
/// through a [`OnceLock`] — no mutex anywhere on the record path, so the
/// session thread and any `par_map` workers never contend. The buffer is
/// bounded (capacity fixed at construction); events past the end are
/// counted in [`SpanRecorder::dropped_events`] rather than blocking or
/// reallocating. Slot order is the global event order; each thread's own
/// events are claimed in program order, which is all the span-tree replay
/// needs.
///
/// One recorder traces one session: [`SpanRecorder::finish`] snapshots the
/// buffer into a [`SessionTrace`] for export.
pub struct SpanRecorder {
    epoch: Instant,
    slots: Box<[OnceLock<TraceEvent>]>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl SpanRecorder {
    /// Default slot count — generous for any workload in this repo (a
    /// traced n = 36 session records a few thousand edges).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A recorder with [`SpanRecorder::DEFAULT_CAPACITY`] slots, ready to
    /// hand to `Participant::trace`.
    pub fn new() -> Arc<SpanRecorder> {
        SpanRecorder::with_capacity(SpanRecorder::DEFAULT_CAPACITY)
    }

    /// A recorder with exactly `capacity` event slots.
    pub fn with_capacity(capacity: usize) -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder {
            epoch: Instant::now(),
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Events recorded so far (clamped to capacity).
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.slots.len())
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that arrived after the buffer filled and were discarded.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshots the recorded events into an exportable [`SessionTrace`].
    /// Call after the traced session completes (concurrent recording is
    /// safe but still-in-flight events may be missed).
    pub fn finish(&self) -> SessionTrace {
        let events = self.slots[..self.len()]
            .iter()
            .filter_map(|slot| slot.get().cloned())
            .collect();
        SessionTrace {
            events,
            dropped: self.dropped_events(),
        }
    }
}

impl TraceSink for SpanRecorder {
    fn record(&self, kind: SpanKind, label: &str, metrics: MetricsSnapshot) {
        let slot = self.next.fetch_add(1, Ordering::AcqRel);
        let Some(cell) = self.slots.get(slot) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let event = TraceEvent {
            kind,
            label: label.to_owned(),
            thread: current_thread_id(),
            t_ns: self.epoch.elapsed().as_nanos() as u64,
            metrics,
        };
        cell.set(event).expect("slot claimed exclusively");
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.len())
            .field("dropped", &self.dropped_events())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_keeps_claim_order_and_counts_drops() {
        let rec = SpanRecorder::with_capacity(4);
        for i in 0..6u64 {
            rec.record(
                SpanKind::Begin,
                &format!("s{i}"),
                MetricsSnapshot::default(),
            );
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped_events(), 2);
        let trace = rec.finish();
        let labels: Vec<&str> = trace.events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["s0", "s1", "s2", "s3"]);
        assert_eq!(trace.dropped, 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let rec = SpanRecorder::with_capacity(1024);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..100 {
                        rec.record(
                            SpanKind::Begin,
                            &format!("t{t}.{i}"),
                            MetricsSnapshot::default(),
                        );
                        rec.record(
                            SpanKind::End,
                            &format!("t{t}.{i}"),
                            MetricsSnapshot::default(),
                        );
                    }
                });
            }
        });
        let trace = rec.finish();
        assert_eq!(trace.events.len(), 800);
        assert_eq!(trace.dropped, 0);
        // Each thread's own events stay in program order.
        for t in 0..4 {
            let thread_events: Vec<&TraceEvent> = trace
                .events
                .iter()
                .filter(|e| e.label.starts_with(&format!("t{t}.")))
                .collect();
            assert_eq!(thread_events.len(), 200);
            for pair in thread_events.chunks(2) {
                assert_eq!(pair[0].kind, SpanKind::Begin);
                assert_eq!(pair[1].kind, SpanKind::End);
                assert_eq!(pair[0].label, pair[1].label);
            }
        }
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let rec = SpanRecorder::new();
        rec.record(SpanKind::Begin, "a", MetricsSnapshot::default());
        rec.record(SpanKind::End, "a", MetricsSnapshot::default());
        let trace = rec.finish();
        assert!(trace.events[0].t_ns <= trace.events[1].t_ns);
        assert_eq!(trace.events[0].thread, trace.events[1].thread);
    }
}
