//! Property-based tests for the big integer substrate.
//!
//! Strategy: generate random byte strings, interpret them as integers, and
//! check algebraic laws plus agreement with `u128` native arithmetic on the
//! embeddable range.

use ppds_bigint::{modular, multi_exp, BigInt, BigUint, FixedBaseTable, MontgomeryCtx};
use proptest::prelude::*;

fn biguint_strategy(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..=max_bytes).prop_map(|b| BigUint::from_bytes_le(&b))
}

fn small_pair() -> impl Strategy<Value = (u128, u128)> {
    (any::<u128>(), any::<u128>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_u128((a, b) in small_pair()) {
        prop_assume!(a.checked_add(b).is_some());
        let got = &BigUint::from_u128(a) + &BigUint::from_u128(b);
        prop_assert_eq!(got, BigUint::from_u128(a + b));
    }

    #[test]
    fn sub_matches_u128((a, b) in small_pair()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let got = &BigUint::from_u128(hi) - &BigUint::from_u128(lo);
        prop_assert_eq!(got, BigUint::from_u128(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = &BigUint::from_u64(a) * &BigUint::from_u64(b);
        prop_assert_eq!(got, BigUint::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128((a, b) in small_pair()) {
        prop_assume!(b != 0);
        let (q, r) = BigUint::from_u128(a).div_rem(&BigUint::from_u128(b));
        prop_assert_eq!(q, BigUint::from_u128(a / b));
        prop_assert_eq!(r, BigUint::from_u128(a % b));
    }

    #[test]
    fn add_commutative(a in biguint_strategy(64), b in biguint_strategy(64)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in biguint_strategy(48), b in biguint_strategy(48), c in biguint_strategy(48)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in biguint_strategy(48), b in biguint_strategy(48)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in biguint_strategy(40), b in biguint_strategy(40), c in biguint_strategy(40)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn division_reconstructs(a in biguint_strategy(96), b in biguint_strategy(48)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn add_sub_roundtrip(a in biguint_strategy(64), b in biguint_strategy(64)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn shift_is_power_of_two_mul(a in biguint_strategy(32), shift in 0usize..200) {
        let two_pow = {
            let mut one = BigUint::one();
            one.set_bit(0, false);
            one.set_bit(shift, true);
            one
        };
        prop_assert_eq!(&a << shift, &a * &two_pow);
    }

    #[test]
    fn bytes_roundtrip(a in biguint_strategy(80)) {
        prop_assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le()), a.clone());
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint_strategy(40)) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint_strategy(40)) {
        let s = format!("{a:x}");
        prop_assert_eq!(BigUint::from_hex(&s).unwrap(), a);
    }

    #[test]
    fn gcd_divides_both(a in biguint_strategy(32), b in biguint_strategy(32)) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = modular::gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn gcd_lcm_product_law(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let (a, b) = (BigUint::from_u64(a), BigUint::from_u64(b));
        let g = modular::gcd(&a, &b);
        let l = modular::lcm(&a, &b);
        prop_assert_eq!(&g * &l, &a * &b);
    }

    #[test]
    fn mod_inverse_is_inverse(a in biguint_strategy(24), m in biguint_strategy(24)) {
        prop_assume!(!m.is_zero() && !m.is_one());
        if let Some(inv) = modular::mod_inverse(&a, &m) {
            prop_assert_eq!(modular::mod_mul(&(&a % &m), &inv, &m), BigUint::one());
        } else {
            prop_assert!(!modular::gcd(&(&a % &m), &m).is_one());
        }
    }

    #[test]
    fn mod_pow_product_of_exponents(
        base in 2u64..1000,
        e1 in 0u64..64,
        e2 in 0u64..64,
        m in 3u64..1_000_000,
    ) {
        // base^(e1+e2) == base^e1 * base^e2 (mod m)
        let base = BigUint::from_u64(base);
        let m = BigUint::from_u64(m | 1); // keep odd to hit Montgomery path
        let lhs = modular::mod_pow(&base, &BigUint::from_u64(e1 + e2), &m);
        let rhs = modular::mod_mul(
            &modular::mod_pow(&base, &BigUint::from_u64(e1), &m),
            &modular::mod_pow(&base, &BigUint::from_u64(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn montgomery_matches_plain_reduction(
        a in biguint_strategy(32),
        b in biguint_strategy(32),
        m in biguint_strategy(32),
    ) {
        prop_assume!(m.is_odd() && !m.is_one());
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let (a, b) = (&a % &m, &b % &m);
        let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        prop_assert_eq!(got, modular::mod_mul(&a, &b, &m));
    }

    #[test]
    fn bigint_arithmetic_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from_i64(a), BigInt::from_i64(b));
        let (a, b) = (a as i128, b as i128);
        prop_assert_eq!(&ba + &bb, BigInt::from_i128(a + b));
        prop_assert_eq!(&ba - &bb, BigInt::from_i128(a - b));
        prop_assert_eq!(&ba * &bb, BigInt::from_i128(a * b));
        if b != 0 {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q, BigInt::from_i128(a / b));
            prop_assert_eq!(r, BigInt::from_i128(a % b));
        }
    }

    #[test]
    fn bigint_rem_euclid_in_range(a in any::<i64>(), m in 1u64..1_000_000) {
        let modulus = BigUint::from_u64(m);
        let r = BigInt::from_i64(a).rem_euclid(&modulus);
        prop_assert!(r < modulus);
        // (a - r) divisible by m
        let diff = &BigInt::from_i64(a) - &BigInt::from(r);
        prop_assert_eq!(diff.rem_euclid(&modulus), BigUint::zero());
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in biguint_strategy(32), b in biguint_strategy(32)) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}

/// Odd modulus > 1, so a [`MontgomeryCtx`] always exists.
fn odd_modulus_strategy(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    biguint_strategy(max_bytes).prop_map(|mut m| {
        m.set_bit(0, true);
        if m.is_one() {
            m.set_bit(2, true); // lift 1 → 5
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `multi_exp` ≡ the naive product of per-operand `mod_pow` ladders.
    /// The pair count crosses the Straus→Pippenger cutoff (32), so both
    /// kernels are exercised by the same law.
    #[test]
    fn multi_exp_matches_naive_product(
        m in odd_modulus_strategy(24),
        operands in proptest::collection::vec(
            (biguint_strategy(24), biguint_strategy(12)),
            0..=40,
        ),
    ) {
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let pairs: Vec<(&BigUint, &BigUint)> =
            operands.iter().map(|(b, e)| (b, e)).collect();
        let got = multi_exp(&ctx, &pairs);
        let naive = operands.iter().fold(&BigUint::one() % &m, |acc, (b, e)| {
            modular::mod_mul(&acc, &modular::mod_pow(b, e, &m), &m)
        });
        prop_assert_eq!(got, naive);
    }

    /// `FixedBaseTable::pow` ≡ `mod_pow` across every window size, for
    /// exponents both inside the comb's width (table path) and beyond it
    /// (fallback path).
    #[test]
    fn fixed_base_table_matches_mod_pow(
        m in odd_modulus_strategy(24),
        base in biguint_strategy(24),
        window in 1usize..=8,
        max_exp_bits in 1usize..160,
        exp in biguint_strategy(24),
    ) {
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let table = FixedBaseTable::new(&ctx, &base, window, max_exp_bits);
        prop_assert_eq!(table.pow(&exp), modular::mod_pow(&base, &exp, &m));
        // pow_mont coverage contract: Some iff the exponent fits the comb.
        prop_assert_eq!(
            table.pow_mont(&exp).is_some(),
            exp.bit_length() <= max_exp_bits
        );
    }

    /// Batch inversion ≡ per-element `mod_inverse`: same inverses when all
    /// elements are units, `None` as soon as any element is not.
    #[test]
    fn batch_inverse_matches_per_element(
        m in odd_modulus_strategy(20),
        values in proptest::collection::vec(biguint_strategy(20), 0..=24),
    ) {
        let per_element: Option<Vec<BigUint>> =
            values.iter().map(|v| modular::mod_inverse(v, &m)).collect();
        prop_assert_eq!(modular::batch_mod_inverse(&values, &m), per_element.clone());
        let ctx = MontgomeryCtx::new(&m).unwrap();
        prop_assert_eq!(modular::batch_mod_inverse_with(&ctx, &values), per_element);
    }

    /// A single zero poisons the whole batch, wherever it sits.
    #[test]
    fn batch_inverse_rejects_zero_element(
        m in odd_modulus_strategy(20),
        values in proptest::collection::vec(biguint_strategy(20), 1..=12),
        at in any::<usize>(),
    ) {
        let mut values = values;
        let at = at % values.len();
        values[at] = BigUint::zero();
        prop_assert_eq!(modular::batch_mod_inverse(&values, &m), None);
    }
}
