//! Formatting and parsing: decimal `Display`/`FromStr`, hexadecimal
//! `LowerHex`, and `Debug` for both integer types.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a big integer from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer"),
        }
    }
}

impl std::error::Error for ParseBigIntError {}

/// 10^19 — the largest power of ten that fits in a `u64`.
const DEC_CHUNK_BASE: u64 = 10_000_000_000_000_000_000;
const DEC_CHUNK_DIGITS: usize = 19;

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel off 19 decimal digits at a time.
        let mut chunks: Vec<u64> = Vec::new();
        let chunk_base = BigUint::from_u64(DEC_CHUNK_BASE);
        let mut value = self.clone();
        while !value.is_zero() {
            let (q, r) = value.div_rem(&chunk_base);
            chunks.push(r.to_u64().expect("remainder < 10^19"));
            value = q;
        }
        let mut out = String::with_capacity(chunks.len() * DEC_CHUNK_DIGITS);
        let mut iter = chunks.iter().rev();
        if let Some(top) = iter.next() {
            out.push_str(&top.to_string());
        }
        for chunk in iter {
            out.push_str(&format!("{chunk:019}"));
        }
        f.pad_integral(true, "", &out)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut out = String::with_capacity(self.limbs.len() * 16);
        let mut iter = self.limbs.iter().rev();
        if let Some(top) = iter.next() {
            out.push_str(&format!("{top:x}"));
        }
        for limb in iter {
            out.push_str(&format!("{limb:016x}"));
        }
        f.pad_integral(true, "0x", &out)
    }
}

impl FromStr for BigUint {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigIntError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        let chunk_base = BigUint::from_u64(DEC_CHUNK_BASE);
        let bytes = s.as_bytes();
        let mut idx = 0;
        while idx < bytes.len() {
            let end = (idx + DEC_CHUNK_DIGITS).min(bytes.len());
            let chunk = &s[idx..end];
            let mut chunk_value = 0u64;
            for c in chunk.chars() {
                let digit = c.to_digit(10).ok_or(ParseBigIntError {
                    kind: ParseErrorKind::InvalidDigit(c),
                })?;
                chunk_value = chunk_value * 10 + digit as u64;
            }
            let scale = if end - idx == DEC_CHUNK_DIGITS {
                chunk_base.clone()
            } else {
                BigUint::from_u64(10u64.pow((end - idx) as u32))
            };
            acc = &(&acc * &scale) + &BigUint::from_u64(chunk_value);
            idx = end;
        }
        Ok(acc)
    }
}

impl BigUint {
    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, ParseBigIntError> {
        if s.is_empty() {
            return Err(ParseBigIntError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let digit = c.to_digit(16).ok_or(ParseBigIntError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = &(&acc << 4usize) + &BigUint::from_u64(digit as u64);
        }
        Ok(acc)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.magnitude())
        } else {
            write!(f, "{}", self.magnitude())
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            let mag: BigUint = rest.parse()?;
            Ok(BigInt::from_biguint(Sign::Negative, mag))
        } else {
            let rest = s.strip_prefix('+').unwrap_or(s);
            let mag: BigUint = rest.parse()?;
            Ok(BigInt::from_biguint(Sign::Positive, mag))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gen_biguint_bits;
    use crate::test_helpers::rng;

    #[test]
    fn display_small() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from_u64(42).to_string(), "42");
        assert_eq!(
            BigUint::from_u128(u128::MAX).to_string(),
            "340282366920938463463374607431768211455"
        );
    }

    #[test]
    fn display_chunk_boundaries() {
        // Values around 10^19 exercise the zero-padding of inner chunks.
        let v: BigUint = "10000000000000000000".parse().unwrap();
        assert_eq!(v.to_string(), "10000000000000000000");
        let v: BigUint = "10000000000000000001".parse().unwrap();
        assert_eq!(v.to_string(), "10000000000000000001");
        let v: BigUint = "100000000000000000000000000000000000001".parse().unwrap();
        assert_eq!(v.to_string(), "100000000000000000000000000000000000001");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a3".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
        assert!(" 5".parse::<BigUint>().is_err());
    }

    #[test]
    fn decimal_roundtrip_random() {
        let mut r = rng(55);
        for bits in [1usize, 63, 64, 65, 300, 2048] {
            let x = gen_biguint_bits(&mut r, bits);
            let s = x.to_string();
            let back: BigUint = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        assert_eq!(format!("{:x}", BigUint::from_u64(0xdeadbeef)), "deadbeef");
        let big = BigUint::from_limbs(vec![0x1, 0xabc]);
        assert_eq!(format!("{big:x}"), "abc0000000000000001");
        assert_eq!(BigUint::from_hex("abc0000000000000001").unwrap(), big);
        assert_eq!(BigUint::from_hex("ABC").unwrap(), BigUint::from_u64(0xabc));
        assert!(BigUint::from_hex("xyz").is_err());
        assert!(BigUint::from_hex("").is_err());
    }

    #[test]
    fn bigint_display_and_parse() {
        assert_eq!(BigInt::from_i64(-42).to_string(), "-42");
        assert_eq!(BigInt::from_i64(42).to_string(), "42");
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!("-42".parse::<BigInt>().unwrap(), BigInt::from_i64(-42));
        assert_eq!("+42".parse::<BigInt>().unwrap(), BigInt::from_i64(42));
        assert_eq!("-0".parse::<BigInt>().unwrap(), BigInt::zero());
        assert!("--1".parse::<BigInt>().is_err());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", BigUint::from_u64(7)), "BigUint(7)");
        assert_eq!(format!("{:?}", BigInt::from_i64(-7)), "BigInt(-7)");
    }
}
