//! Signed big integers as sign–magnitude pairs.
//!
//! Needed for the extended GCD, for the signed plaintext encoding used by
//! Paillier (`crates/paillier`), and for the share arithmetic inside the
//! enhanced DBSCAN protocol where masked distances may go negative.

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly below zero.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly above zero.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            magnitude: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            magnitude: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude; the sign of a zero magnitude is
    /// forced to [`Sign::Zero`].
    pub fn from_biguint(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            let sign = match sign {
                Sign::Zero => Sign::Positive,
                s => s,
            };
            BigInt { sign, magnitude }
        }
    }

    /// Builds from an `i64`.
    pub fn from_i64(value: i64) -> Self {
        match value.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => {
                BigInt::from_biguint(Sign::Positive, BigUint::from_u64(value as u64))
            }
            Ordering::Less => {
                BigInt::from_biguint(Sign::Negative, BigUint::from_u64(value.unsigned_abs()))
            }
        }
    }

    /// Builds from an `i128`.
    pub fn from_i128(value: i128) -> Self {
        match value.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => {
                BigInt::from_biguint(Sign::Positive, BigUint::from_u128(value as u128))
            }
            Ordering::Less => {
                BigInt::from_biguint(Sign::Negative, BigUint::from_u128(value.unsigned_abs()))
            }
        }
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.magnitude.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(mag).ok(),
            Sign::Negative => {
                if mag <= i64::MAX as u64 + 1 {
                    Some((mag as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(mag).ok(),
            Sign::Negative => {
                if mag <= i128::MAX as u128 + 1 {
                    Some((mag as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Borrowed magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.magnitude
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Truncated division: `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and `|remainder| < |divisor|`,
    /// remainder taking the sign of `self` (like Rust's `%` on primitives).
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        assert!(!divisor.is_zero(), "BigInt division by zero");
        let (q_mag, r_mag) = self.magnitude.div_rem(&divisor.magnitude);
        let q_sign = if self.sign == divisor.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        (
            BigInt::from_biguint(q_sign, q_mag),
            BigInt::from_biguint(self.sign, r_mag),
        )
    }

    /// Least non-negative residue `self mod modulus` as a [`BigUint`].
    ///
    /// # Panics
    /// Panics if `modulus` is zero.
    pub fn rem_euclid(&self, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "rem_euclid with zero modulus");
        let r = &self.magnitude % modulus;
        match self.sign {
            Sign::Negative if !r.is_zero() => modulus - &r,
            _ => r,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_biguint(Sign::Positive, self.magnitude.clone())
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => other.magnitude.cmp(&self.magnitude),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.magnitude.cmp(&other.magnitude),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            magnitude: self.magnitude.clone(),
        }
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_biguint(a, &self.magnitude + &rhs.magnitude),
            _ => match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_biguint(self.sign, &self.magnitude - &rhs.magnitude)
                }
                Ordering::Less => BigInt::from_biguint(rhs.sign, &rhs.magnitude - &self.magnitude),
            },
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_biguint(sign, &self.magnitude * &rhs.magnitude)
    }
}

impl From<i64> for BigInt {
    fn from(value: i64) -> Self {
        BigInt::from_i64(value)
    }
}

impl From<BigUint> for BigInt {
    fn from(value: BigUint) -> Self {
        BigInt::from_biguint(Sign::Positive, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i128) -> BigInt {
        BigInt::from_i128(v)
    }

    #[test]
    fn zero_normalization() {
        assert_eq!(
            BigInt::from_biguint(Sign::Negative, BigUint::zero()),
            BigInt::zero()
        );
        assert_eq!(i(0).sign(), Sign::Zero);
        assert!(i(0).is_zero());
        assert!(!i(0).is_negative());
        assert!(!i(0).is_positive());
    }

    #[test]
    fn i64_i128_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(BigInt::from_i64(v).to_i64(), Some(v), "{v}");
        }
        for v in [0i128, 1, -1, i128::MAX, i128::MIN] {
            assert_eq!(BigInt::from_i128(v).to_i128(), Some(v), "{v}");
        }
        // Out-of-range conversions.
        assert_eq!(i(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(i(i64::MIN as i128 - 1).to_i64(), None);
        assert_eq!(i(i64::MIN as i128).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn arithmetic_matches_i128() {
        let values = [-1000i128, -37, -1, 0, 1, 5, 999, 12345];
        for &a in &values {
            for &b in &values {
                assert_eq!(&i(a) + &i(b), i(a + b), "{a} + {b}");
                assert_eq!(&i(a) - &i(b), i(a - b), "{a} - {b}");
                assert_eq!(&i(a) * &i(b), i(a * b), "{a} * {b}");
                if b != 0 {
                    let (q, r) = i(a).div_rem(&i(b));
                    assert_eq!(q, i(a / b), "{a} / {b}");
                    assert_eq!(r, i(a % b), "{a} % {b}");
                }
            }
        }
    }

    #[test]
    fn ordering_matches_i128() {
        let values = [-50i128, -2, -1, 0, 1, 2, 50];
        for &a in &values {
            for &b in &values {
                assert_eq!(i(a).cmp(&i(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn negation() {
        assert_eq!(-&i(5), i(-5));
        assert_eq!(-&i(-5), i(5));
        assert_eq!(-&i(0), i(0));
        assert_eq!((-&i(0)).sign(), Sign::Zero);
    }

    #[test]
    fn rem_euclid_always_nonnegative() {
        let m = BigUint::from_u64(7);
        assert_eq!(i(10).rem_euclid(&m), BigUint::from_u64(3));
        assert_eq!(i(-10).rem_euclid(&m), BigUint::from_u64(4));
        assert_eq!(i(-7).rem_euclid(&m), BigUint::from_u64(0));
        assert_eq!(i(0).rem_euclid(&m), BigUint::from_u64(0));
        assert_eq!(i(-1).rem_euclid(&m), BigUint::from_u64(6));
    }

    #[test]
    fn abs() {
        assert_eq!(i(-5).abs(), i(5));
        assert_eq!(i(5).abs(), i(5));
        assert_eq!(i(0).abs(), i(0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = i(5).div_rem(&i(0));
    }
}
