#![warn(missing_docs)]

//! Arbitrary-precision integer arithmetic for the privacy-preserving DBSCAN
//! reproduction.
//!
//! The offline dependency set contains no big-integer crate, so this crate
//! implements everything the Paillier cryptosystem (and Yao's millionaires
//! protocol) needs from scratch:
//!
//! * [`BigUint`] — unsigned magnitude on little-endian `u64` limbs with
//!   schoolbook + Karatsuba multiplication and Knuth Algorithm D division,
//! * [`BigInt`] — sign–magnitude signed integers (needed for extended GCD,
//!   signed plaintext encodings, and the arithmetic inside Yao's protocol),
//! * [`MontgomeryCtx`] — CIOS Montgomery multiplication and windowed modular
//!   exponentiation for odd moduli (Paillier's `n` and `n²` are always odd),
//! * [`multiexp`] — exponentiation kernels: [`FixedBaseTable`] windowed
//!   fixed-base combs and Straus/Pippenger simultaneous [`multi_exp`],
//!   all value-equal to the naive ladders they replace,
//! * [`modular`] — GCD/LCM, modular inverse (single and
//!   [`modular::batch_mod_inverse`] Montgomery-batched), and a `mod_pow`
//!   entry point,
//! * [`prime`] — Miller–Rabin probable-prime testing and random prime
//!   generation,
//! * [`random`] — uniform sampling of big integers from any [`rand::Rng`].
//!
//! The representation invariant maintained everywhere: the limb vector never
//! has trailing zero limbs, and zero is the empty vector. All public
//! operations preserve it.

mod bigint;
mod biguint;
mod div;
mod fmt;
pub mod modular;
mod montgomery;
mod mul;
pub mod multiexp;
pub mod prime;
pub mod random;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use fmt::ParseBigIntError;
pub use montgomery::MontgomeryCtx;
pub use multiexp::{multi_exp, FixedBaseTable, KERNEL_DISCIPLINE};

#[cfg(test)]
mod test_helpers {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG for unit tests.
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}
