//! Uniform random sampling of big integers from any [`rand::Rng`].
//!
//! All library code takes the RNG as a parameter; nothing touches a global
//! generator, so protocol transcripts are reproducible under seeded RNGs.

use crate::biguint::BigUint;
use rand::Rng;

/// Samples a uniform integer with at most `bits` bits (i.e. in `[0, 2^bits)`).
pub fn gen_biguint_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut out = Vec::with_capacity(limbs);
    for _ in 0..limbs {
        out.push(rng.random::<u64>());
    }
    let extra = limbs * 64 - bits;
    if extra > 0 {
        let last = out.last_mut().expect("limbs >= 1");
        *last &= u64::MAX >> extra;
    }
    BigUint::from_limbs(out)
}

/// Samples a uniform integer with *exactly* `bits` bits (top bit set).
///
/// # Panics
/// Panics if `bits == 0`.
pub fn gen_biguint_exact_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(
        bits > 0,
        "cannot sample a 0-bit integer with its top bit set"
    );
    let mut value = gen_biguint_bits(rng, bits);
    value.set_bit(bits - 1, true);
    value
}

/// Samples a uniform integer in `[0, bound)` by rejection.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn gen_biguint_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "empty sampling range [0, 0)");
    let bits = bound.bit_length();
    loop {
        let candidate = gen_biguint_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
        // Rejection probability < 1/2 per round since bound has `bits` bits.
    }
}

/// Samples a uniform integer in `[low, high)`.
///
/// # Panics
/// Panics if `low >= high`.
pub fn gen_biguint_range<R: Rng + ?Sized>(rng: &mut R, low: &BigUint, high: &BigUint) -> BigUint {
    assert!(low < high, "empty sampling range");
    let width = high - low;
    &gen_biguint_below(rng, &width) + low
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::rng;

    #[test]
    fn bits_bound_respected() {
        let mut r = rng(1);
        for bits in [0usize, 1, 7, 64, 65, 130, 1024] {
            for _ in 0..20 {
                let x = gen_biguint_bits(&mut r, bits);
                assert!(x.bit_length() <= bits, "{bits}");
            }
        }
    }

    #[test]
    fn exact_bits_sets_top_bit() {
        let mut r = rng(2);
        for bits in [1usize, 2, 63, 64, 65, 512] {
            for _ in 0..10 {
                let x = gen_biguint_exact_bits(&mut r, bits);
                assert_eq!(x.bit_length(), bits);
            }
        }
    }

    #[test]
    #[should_panic(expected = "0-bit")]
    fn exact_bits_zero_panics() {
        let mut r = rng(3);
        let _ = gen_biguint_exact_bits(&mut r, 0);
    }

    #[test]
    fn below_always_in_range() {
        let mut r = rng(4);
        for bound in [1u128, 2, 3, 100, u64::MAX as u128 + 5] {
            let bound = BigUint::from_u128(bound);
            for _ in 0..50 {
                assert!(gen_biguint_below(&mut r, &bound) < bound);
            }
        }
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut r = rng(5);
        for _ in 0..10 {
            assert!(gen_biguint_below(&mut r, &BigUint::one()).is_zero());
        }
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn below_zero_panics() {
        let mut r = rng(6);
        let _ = gen_biguint_below(&mut r, &BigUint::zero());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = rng(7);
        let low = BigUint::from_u64(1000);
        let high = BigUint::from_u64(1010);
        let mut seen_low = false;
        for _ in 0..500 {
            let x = gen_biguint_range(&mut r, &low, &high);
            assert!(x >= low && x < high);
            if x == low {
                seen_low = true;
            }
        }
        assert!(seen_low, "lower endpoint should be reachable");
    }

    #[test]
    fn rough_uniformity_smoke() {
        // Not a statistical test — just catches catastrophic bias such as
        // always-zero high bits.
        let mut r = rng(8);
        let bound = BigUint::from_u64(100);
        let mut buckets = [0usize; 4];
        for _ in 0..4000 {
            let x = gen_biguint_below(&mut r, &bound).to_u64().unwrap();
            buckets[(x / 25) as usize] += 1;
        }
        for &count in &buckets {
            assert!(count > 700, "bucket badly under-filled: {buckets:?}");
        }
    }
}
