//! The unsigned big integer type and its core (non-multiplicative) operations:
//! construction, conversion, comparison, addition, subtraction, shifts and
//! bit access.

use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Shl, Shr, Sub, SubAssign};

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with the invariant that the highest
/// limb is non-zero; zero is represented by an empty limb vector. All
/// constructors and operations normalize their results.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub const fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(value: u64) -> Self {
        if value == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![value] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(value: u128) -> Self {
        let lo = value as u64;
        let hi = (value >> 64) as u64;
        if hi != 0 {
            BigUint {
                limbs: vec![lo, hi],
            }
        } else {
            Self::from_u64(lo)
        }
    }

    /// Builds a value from little-endian limbs, dropping trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Builds a value from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut limb = [0u8; 8];
            limb[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(limb));
        }
        Self::from_limbs(limbs)
    }

    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut le: Vec<u8> = bytes.to_vec();
        le.reverse();
        Self::from_bytes_le(&le)
    }

    /// Serializes to little-endian bytes without trailing zero bytes
    /// (zero serializes to an empty vector).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut bytes: Vec<u8> = Vec::with_capacity(self.limbs.len() * 8);
        for limb in &self.limbs {
            bytes.extend_from_slice(&limb.to_le_bytes());
        }
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        bytes
    }

    /// Serializes to big-endian bytes without leading zero bytes.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut bytes = self.to_bytes_le();
        bytes.reverse();
        bytes
    }

    /// The little-endian limb slice (no trailing zero limbs).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of bits in the minimal binary representation (`0` for zero).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (bit 0 is the least significant). Out-of-range bits
    /// read as `false`.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            Some(l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Sets bit `i` to `value`, growing the representation as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / 64;
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1u64 << (i % 64);
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1u64 << (i % 64));
            self.normalize();
        }
    }

    /// Number of trailing zero bits, or `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return Some(i * 64 + limb.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Converts to `f64` (may lose precision; saturates to infinity for
    /// astronomically large values). Used only for reporting, never for
    /// protocol arithmetic.
    pub fn to_f64_lossy(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }

    /// Drops trailing zero limbs to restore the representation invariant.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        sub_in_place(&mut limbs, &other.limbs);
        Some(BigUint::from_limbs(limbs))
    }

    /// `(self + other) mod modulus`, assuming both inputs are `< modulus`.
    pub fn add_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        debug_assert!(self < modulus && other < modulus);
        let sum = self + other;
        if &sum >= modulus {
            sum.checked_sub(modulus).expect("sum >= modulus")
        } else {
            sum
        }
    }

    /// `(self - other) mod modulus`, assuming both inputs are `< modulus`.
    pub fn sub_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        debug_assert!(self < modulus && other < modulus);
        if self >= other {
            self.checked_sub(other).expect("self >= other")
        } else {
            (self + modulus).checked_sub(other).expect("lifted")
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_limbs(&self.limbs, &other.limbs)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic-from-the-top comparison of normalized limb slices.
pub(crate) fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `acc += rhs` on raw limb vectors, growing `acc` as needed.
pub(crate) fn add_in_place(acc: &mut Vec<u64>, rhs: &[u64]) {
    if acc.len() < rhs.len() {
        acc.resize(rhs.len(), 0);
    }
    let mut carry = 0u64;
    for (i, &r) in rhs.iter().enumerate() {
        let sum = acc[i] as u128 + r as u128 + carry as u128;
        acc[i] = sum as u64;
        carry = (sum >> 64) as u64;
    }
    let mut i = rhs.len();
    while carry != 0 {
        if i == acc.len() {
            acc.push(carry);
            break;
        }
        let sum = acc[i] as u128 + carry as u128;
        acc[i] = sum as u64;
        carry = (sum >> 64) as u64;
        i += 1;
    }
}

/// `acc -= rhs` on raw limb vectors; the caller guarantees `acc >= rhs`.
#[allow(clippy::needless_range_loop)] // early-exit borrow propagation needs the index
pub(crate) fn sub_in_place(acc: &mut [u64], rhs: &[u64]) {
    debug_assert!(cmp_limbs_prefix(acc, rhs) != Ordering::Less);
    let mut borrow = 0u64;
    for i in 0..acc.len() {
        let r = rhs.get(i).copied().unwrap_or(0);
        let (d, b1) = acc[i].overflowing_sub(r);
        let (d, b2) = d.overflowing_sub(borrow);
        acc[i] = d;
        borrow = (b1 as u64) + (b2 as u64);
        if borrow == 0 && i >= rhs.len() {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

fn cmp_limbs_prefix(a: &[u64], b: &[u64]) -> Ordering {
    // Like cmp_limbs but tolerates non-normalized slices.
    let alen = a.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1);
    let blen = b.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1);
    cmp_limbs(&a[..alen], &b[..blen])
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut limbs = self.limbs.clone();
        add_in_place(&mut limbs, &rhs.limbs);
        BigUint::from_limbs(limbs)
    }
}

impl Add<u64> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: u64) -> BigUint {
        let mut limbs = self.limbs.clone();
        add_in_place(&mut limbs, &[rhs]);
        BigUint::from_limbs(limbs)
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        add_in_place(&mut self.limbs, &rhs.limbs);
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// Panics if the result would be negative; use [`BigUint::checked_sub`]
    /// when underflow is possible.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        assert!(&*self >= rhs, "BigUint subtraction underflow");
        sub_in_place(&mut self.limbs, &rhs.limbs);
        self.normalize();
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for (i, &l) in src.iter().enumerate() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((l >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl From<u64> for BigUint {
    fn from(value: u64) -> Self {
        Self::from_u64(value)
    }
}

impl From<u128> for BigUint {
    fn from(value: u128) -> Self {
        Self::from_u128(value)
    }
}

impl From<u32> for BigUint {
    fn from(value: u32) -> Self {
        Self::from_u64(value as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_is_normalized_empty() {
        assert!(BigUint::zero().limbs.is_empty());
        assert!(BigUint::from_u64(0).limbs.is_empty());
        assert!(BigUint::from_limbs(vec![0, 0, 0]).limbs.is_empty());
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::zero().is_odd());
    }

    #[test]
    fn from_limbs_drops_trailing_zeros() {
        let x = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(x.limbs(), &[5]);
    }

    #[test]
    fn add_with_carry_propagation() {
        let x = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let y = BigUint::one();
        let sum = &x + &y;
        assert_eq!(sum.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn add_u64_scalar() {
        assert_eq!(&b(41) + 1, b(42));
        let x = BigUint::from_limbs(vec![u64::MAX]);
        assert_eq!((&x + 1).limbs(), &[0, 1]);
    }

    #[test]
    fn sub_basics_and_underflow() {
        assert_eq!(&b(100) - &b(58), b(42));
        assert_eq!(&b(7) - &b(7), BigUint::zero());
        assert!(b(3).checked_sub(&b(4)).is_none());
        let x = BigUint::from_limbs(vec![0, 1]); // 2^64
        assert_eq!(&x - &b(1), b(u64::MAX as u128));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = &b(1) - &b(2);
    }

    #[test]
    fn comparison_ordering() {
        assert!(b(0) < b(1));
        assert!(b(u64::MAX as u128) < b(u64::MAX as u128 + 1));
        assert_eq!(b(12345), b(12345));
        let big = BigUint::from_limbs(vec![0, 0, 1]);
        let small = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        assert!(big > small);
    }

    #[test]
    fn bit_length_and_bits() {
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(b(1).bit_length(), 1);
        assert_eq!(b(255).bit_length(), 8);
        assert_eq!(b(256).bit_length(), 9);
        assert_eq!(b(1 << 70).bit_length(), 71);
        assert!(b(5).bit(0));
        assert!(!b(5).bit(1));
        assert!(b(5).bit(2));
        assert!(!b(5).bit(200));
    }

    #[test]
    fn set_bit_grows_and_shrinks() {
        let mut x = BigUint::zero();
        x.set_bit(130, true);
        assert_eq!(x.bit_length(), 131);
        x.set_bit(130, false);
        assert!(x.is_zero());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(b(1).trailing_zeros(), Some(0));
        assert_eq!(b(8).trailing_zeros(), Some(3));
        assert_eq!((&b(1) << 130usize).trailing_zeros(), Some(130));
    }

    #[test]
    fn shifts_roundtrip() {
        let x = b(0xDEAD_BEEF_CAFE_BABE);
        for shift in [0usize, 1, 13, 63, 64, 65, 127, 128, 200] {
            let up = &x << shift;
            assert_eq!(&up >> shift, x, "shift {shift}");
        }
        assert_eq!(&b(1) << 64usize, BigUint::from_limbs(vec![0, 1]));
        assert_eq!(&b(3) >> 1usize, b(1));
        assert_eq!(&b(3) >> 200usize, BigUint::zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let cases = [
            vec![],
            vec![1],
            vec![0xff; 9],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        ];
        for case in cases {
            let x = BigUint::from_bytes_le(&case);
            let mut expect = case.clone();
            while expect.last() == Some(&0) {
                expect.pop();
            }
            assert_eq!(x.to_bytes_le(), expect);
        }
        let be = BigUint::from_bytes_be(&[0x12, 0x34]);
        assert_eq!(be, b(0x1234));
        assert_eq!(be.to_bytes_be(), vec![0x12, 0x34]);
    }

    #[test]
    fn u128_roundtrip() {
        for v in [0u128, 1, u64::MAX as u128, u64::MAX as u128 + 1, u128::MAX] {
            assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
        }
        let too_big = BigUint::from_limbs(vec![0, 0, 1]);
        assert_eq!(too_big.to_u128(), None);
        assert_eq!(too_big.to_u64(), None);
    }

    #[test]
    fn add_mod_sub_mod() {
        let m = b(97);
        assert_eq!(b(50).add_mod(&b(60), &m), b(13));
        assert_eq!(b(50).add_mod(&b(40), &m), b(90));
        assert_eq!(b(10).sub_mod(&b(20), &m), b(87));
        assert_eq!(b(20).sub_mod(&b(10), &m), b(10));
    }

    #[test]
    fn to_f64_lossy_small_values_exact() {
        assert_eq!(b(0).to_f64_lossy(), 0.0);
        assert_eq!(b(42).to_f64_lossy(), 42.0);
        assert_eq!(b(1 << 52).to_f64_lossy(), (1u64 << 52) as f64);
    }
}
