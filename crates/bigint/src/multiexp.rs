//! Exponentiation kernels: fixed-base comb tables and simultaneous
//! multi-exponentiation (Straus / Pippenger).
//!
//! Every kernel here is *value-equal* to the naive formulation it replaces
//! — `FixedBaseTable::pow` returns exactly `MontgomeryCtx::pow_mod`'s
//! canonical residue and `multi_exp` returns exactly `Π bᵢ^eᵢ mod m` — so
//! swapping a kernel into a protocol hot path can never change a wire
//! byte. The win is arithmetic shape, not semantics:
//!
//! * a comb table trades one-off precomputation for exponentiations with
//!   **zero squarings** (one table multiply per window digit), which pays
//!   off once a base is reused a handful of times (a Paillier generator, a
//!   reused dot-product ciphertext);
//! * Straus/Pippenger share **one squaring pass** across all `k` operands
//!   of a product of powers, where the naive loop pays a full
//!   square-and-multiply ladder per operand.

use crate::biguint::BigUint;
use crate::montgomery::MontgomeryCtx;

/// Version stamp for the exponentiation-kernel layer, carried into bench
/// trajectory JSON so regressions to naive ladders are visible in data.
pub const KERNEL_DISCIPLINE: &str = "expkernels-v1";

/// Pair count at and above which [`multi_exp`] switches from Straus'
/// interleaved scan to Pippenger's bucket method. Below the cutoff the
/// per-base window tables amortize; above it bucket accumulation does
/// (see `DESIGN.md` §12 for the cost model).
pub const PIPPENGER_CUTOFF: usize = 32;

/// Extracts window digit `i` (little-endian digit order, `w` bits wide)
/// of `exp`.
fn window_digit(exp: &BigUint, bits: usize, w: usize, i: usize) -> usize {
    let mut d = 0usize;
    for b in 0..w {
        let pos = i * w + b;
        if pos < bits && exp.bit(pos) {
            d |= 1 << b;
        }
    }
    d
}

/// Windowed fixed-base exponentiation table (BGMW comb) over a Montgomery
/// context, precomputed once per key lifetime.
///
/// Level `i` stores `base^(j · 2^{w·i})` for every digit value
/// `j ∈ 0..2^w`, all in Montgomery form, so `base^e` is the product of one
/// table entry per window digit of `e` — **no squarings at all**. Against
/// [`MontgomeryCtx::pow_mod`]'s fixed 4-bit ladder (≈ `bits` squarings +
/// `bits/4` multiplies) a `w = 4` comb does `bits/4` multiplies total,
/// ≈ 5× fewer Montgomery products per call.
///
/// Precomputation costs `levels · (w + 2^w − 2)` products for
/// `levels = ⌈max_exp_bits / w⌉`; it amortizes after roughly 4 calls.
/// Exponents wider than `max_exp_bits` fall back to `pow_mod`
/// transparently (same canonical result, ladder cost).
#[derive(Clone)]
pub struct FixedBaseTable {
    ctx: MontgomeryCtx,
    window: usize,
    max_exp_bits: usize,
    /// Reduced base, kept for the wide-exponent fallback path.
    base: BigUint,
    /// `levels[i][j] = base^(j · 2^{window·i})` in Montgomery form.
    levels: Vec<Vec<BigUint>>,
}

impl FixedBaseTable {
    /// Builds the comb for `base` (reduced mod the context modulus) with
    /// `window`-bit digits covering exponents up to `max_exp_bits` bits.
    ///
    /// # Panics
    /// Panics unless `1 ≤ window ≤ 8` (tables are `2^window` entries per
    /// level; wider windows would be megabytes per level).
    pub fn new(ctx: &MontgomeryCtx, base: &BigUint, window: usize, max_exp_bits: usize) -> Self {
        assert!(
            (1..=8).contains(&window),
            "comb window must be in 1..=8, got {window}"
        );
        let base = ctx.reduce(base);
        let base_mont = ctx.to_mont(&base);
        let levels_len = max_exp_bits.div_ceil(window).max(1);
        let mut levels = Vec::with_capacity(levels_len);
        // Level 0: base^0 ..= base^(2^w - 1).
        levels.push(ctx.window_table(&base_mont, (1 << window) - 1));
        for i in 1..levels_len {
            // The next level's unit step is the previous step raised to
            // 2^w: square the previous level's j = 1 entry w times.
            let mut step = levels[i - 1][1].clone();
            for _ in 0..window {
                step = ctx.mont_mul(&step, &step);
            }
            levels.push(ctx.window_table(&step, (1 << window) - 1));
        }
        FixedBaseTable {
            ctx: ctx.clone(),
            window,
            max_exp_bits,
            base,
            levels,
        }
    }

    /// The digit width `w` this comb was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Widest exponent (in bits) the precomputed levels cover.
    pub fn max_exp_bits(&self) -> usize {
        self.max_exp_bits
    }

    /// `base^exp` in Montgomery form, or `None` when `exp` is wider than
    /// the precomputed levels (callers then take the `pow_mod` fallback).
    ///
    /// Exposed so product accumulators (dot-product response legs) can
    /// stay in the Montgomery domain across many factors and convert out
    /// once.
    pub fn pow_mont(&self, exp: &BigUint) -> Option<BigUint> {
        let bits = exp.bit_length();
        if bits > self.max_exp_bits {
            return None;
        }
        let mut acc = self.ctx.one_mont().clone();
        for (i, level) in self.levels.iter().enumerate() {
            if i * self.window >= bits {
                break;
            }
            let d = window_digit(exp, bits, self.window, i);
            if d != 0 {
                acc = self.ctx.mont_mul(&acc, &level[d]);
            }
        }
        Some(acc)
    }

    /// `base^exp mod m` — limb-identical to
    /// `MontgomeryCtx::pow_mod(base, exp)` for every exponent (comb scan
    /// when the levels cover it, transparent ladder fallback when not).
    pub fn pow(&self, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return &BigUint::one() % self.ctx.modulus();
        }
        match self.pow_mont(exp) {
            Some(acc) => self.ctx.from_mont(&acc),
            None => self.ctx.pow_mod(&self.base, exp),
        }
    }
}

/// `Π bases[i]^exps[i] mod m` by whichever simultaneous method fits the
/// operand count: Straus below [`PIPPENGER_CUTOFF`], Pippenger at or
/// above it. Both return the canonical residue, so the selection is
/// invisible to callers.
pub fn multi_exp(ctx: &MontgomeryCtx, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
    if pairs.len() >= PIPPENGER_CUTOFF {
        multi_exp_pippenger(ctx, pairs)
    } else {
        multi_exp_straus(ctx, pairs)
    }
}

/// Straus' interleaved multi-exponentiation (4-bit windows).
///
/// One shared MSB-first squaring pass; at each window position every base
/// contributes at most one table multiply. Per-base tables are sized to
/// the **largest digit that base's exponent actually uses** — a
/// power-of-two exponent (packing slot shifts) costs a 2-entry table and
/// a single multiply, not a 16-entry table.
pub fn multi_exp_straus(ctx: &MontgomeryCtx, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
    // Per base: its digit sequence (MSB-first) and a table up to the
    // largest digit used.
    let mut prepped = Vec::with_capacity(pairs.len());
    let mut windows = 0usize;
    for (base, exp) in pairs {
        let digits = MontgomeryCtx::exp_windows4(exp);
        let max_digit = digits.iter().copied().max().unwrap_or(0) as usize;
        if max_digit == 0 {
            continue; // exp = 0 contributes a factor of 1
        }
        let base_mont = ctx.to_mont(&ctx.reduce(base));
        let table = ctx.window_table(&base_mont, max_digit);
        windows = windows.max(digits.len());
        prepped.push((table, digits));
    }

    let mut acc = ctx.one_mont().clone();
    for pos in 0..windows {
        if pos > 0 {
            for _ in 0..4 {
                acc = ctx.mont_mul(&acc, &acc);
            }
        }
        for (table, digits) in &prepped {
            // Digit sequences are MSB-first and right-aligned: a shorter
            // exponent's digits sit in the low window positions.
            let skip = windows - digits.len();
            if pos < skip {
                continue;
            }
            let d = digits[pos - skip] as usize;
            if d != 0 {
                acc = ctx.mont_mul(&acc, &table[d]);
            }
        }
    }
    ctx.from_mont(&acc)
}

/// Pippenger's bucket multi-exponentiation.
///
/// No per-base tables: at each window position every base is multiplied
/// into the bucket of its digit value, and `Π_d bucket[d]^d` is folded
/// with the suffix-product trick (≤ `2 · 2^w` multiplies per window,
/// independent of `k`). The window widens with the operand count so
/// bucket-fold overhead amortizes across more bases.
pub fn multi_exp_pippenger(ctx: &MontgomeryCtx, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
    let w = match pairs.len() {
        0..=63 => 4usize,
        64..=255 => 5,
        _ => 6,
    };
    let mut max_bits = 0usize;
    let prepped: Vec<(BigUint, &BigUint)> = pairs
        .iter()
        .filter(|(_, exp)| !exp.is_zero())
        .map(|(base, exp)| {
            max_bits = max_bits.max(exp.bit_length());
            (ctx.to_mont(&ctx.reduce(base)), *exp)
        })
        .collect();

    let nwin = max_bits.div_ceil(w);
    let mut acc = ctx.one_mont().clone();
    let mut first = true;
    for win in (0..nwin).rev() {
        if !first {
            for _ in 0..w {
                acc = ctx.mont_mul(&acc, &acc);
            }
        }
        let mut buckets: Vec<Option<BigUint>> = vec![None; 1 << w];
        for (base_mont, exp) in &prepped {
            let d = window_digit(exp, exp.bit_length(), w, win);
            if d != 0 {
                buckets[d] = Some(match buckets[d].take() {
                    Some(cur) => ctx.mont_mul(&cur, base_mont),
                    None => base_mont.clone(),
                });
            }
        }
        // Fold Π_d bucket[d]^d: running suffix product enters `total`
        // once per digit value, contributing bucket[d] exactly d times.
        let mut running: Option<BigUint> = None;
        let mut total: Option<BigUint> = None;
        for bucket in buckets.iter().skip(1).rev() {
            if let Some(b) = bucket {
                running = Some(match running.take() {
                    Some(r) => ctx.mont_mul(&r, b),
                    None => b.clone(),
                });
            }
            if let Some(r) = &running {
                total = Some(match total.take() {
                    Some(t) => ctx.mont_mul(&t, r),
                    None => r.clone(),
                });
            }
        }
        // An all-zero window after a contributing one needs no multiply:
        // the squarings at the top of the loop already advanced `acc`.
        if let Some(t) = total {
            acc = ctx.mont_mul(&acc, &t);
            first = false;
        }
    }
    ctx.from_mont(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gen_biguint_below, gen_biguint_bits};
    use crate::test_helpers::rng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    fn naive_multi_exp(ctx: &MontgomeryCtx, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        let m = ctx.modulus();
        let mut acc = &BigUint::one() % m;
        for (base, exp) in pairs {
            acc = &(&acc * &ctx.pow_mod(base, exp)) % m;
        }
        acc
    }

    #[test]
    fn fixed_base_matches_pow_mod_small() {
        let m = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let table = FixedBaseTable::new(&ctx, &b(3), 4, 64);
        for e in [0u128, 1, 2, 15, 16, 17, 255, 1 << 40, (1 << 63) + 12345] {
            assert_eq!(table.pow(&b(e)), ctx.pow_mod(&b(3), &b(e)), "e = {e}");
        }
    }

    #[test]
    fn fixed_base_falls_back_beyond_max_bits() {
        let m = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let table = FixedBaseTable::new(&ctx, &b(7), 4, 16);
        let wide = b(u128::MAX);
        assert_eq!(table.pow(&wide), ctx.pow_mod(&b(7), &wide));
    }

    #[test]
    fn fixed_base_reduces_large_base() {
        let m = b(97);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let table = FixedBaseTable::new(&ctx, &b(1000), 3, 32);
        assert_eq!(table.pow(&b(3)), ctx.pow_mod(&b(1000), &b(3)));
    }

    #[test]
    fn fixed_base_random_windows_and_sizes() {
        let mut r = rng(91);
        for bits in [64usize, 256, 512] {
            let mut m = gen_biguint_bits(&mut r, bits);
            m.set_bit(0, true);
            m.set_bit(bits - 1, true);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for window in [1usize, 2, 4, 5, 8] {
                let base = gen_biguint_below(&mut r, &m);
                let table = FixedBaseTable::new(&ctx, &base, window, bits);
                for _ in 0..4 {
                    let exp = gen_biguint_bits(&mut r, bits);
                    assert_eq!(
                        table.pow(&exp),
                        ctx.pow_mod(&base, &exp),
                        "{bits} bits, w = {window}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_exp_empty_and_zero_exponents() {
        let m = b(101);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(multi_exp(&ctx, &[]), b(1));
        let (base, zero) = (b(5), b(0));
        assert_eq!(multi_exp_straus(&ctx, &[(&base, &zero)]), b(1));
        assert_eq!(multi_exp_pippenger(&ctx, &[(&base, &zero)]), b(1));
    }

    #[test]
    fn straus_and_pippenger_match_naive_random() {
        let mut r = rng(92);
        for bits in [64usize, 256] {
            let mut m = gen_biguint_bits(&mut r, bits);
            m.set_bit(0, true);
            m.set_bit(bits - 1, true);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for k in [1usize, 2, 5, 33] {
                let bases: Vec<BigUint> = (0..k).map(|_| gen_biguint_below(&mut r, &m)).collect();
                let exps: Vec<BigUint> = (0..k).map(|_| gen_biguint_bits(&mut r, bits)).collect();
                let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(exps.iter()).collect();
                let want = naive_multi_exp(&ctx, &pairs);
                assert_eq!(multi_exp_straus(&ctx, &pairs), want, "straus k={k}");
                assert_eq!(multi_exp_pippenger(&ctx, &pairs), want, "pippenger k={k}");
                assert_eq!(multi_exp(&ctx, &pairs), want, "auto k={k}");
            }
        }
    }

    #[test]
    fn multi_exp_power_of_two_exponents() {
        // The packing slot-shift shape: every exponent is a single bit.
        let mut r = rng(93);
        let mut m = gen_biguint_bits(&mut r, 256);
        m.set_bit(0, true);
        m.set_bit(255, true);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let bases: Vec<BigUint> = (0..10).map(|_| gen_biguint_below(&mut r, &m)).collect();
        let exps: Vec<BigUint> = (0..10).map(|i| &BigUint::one() << (24 * i)).collect();
        let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(exps.iter()).collect();
        let want = naive_multi_exp(&ctx, &pairs);
        assert_eq!(multi_exp_straus(&ctx, &pairs), want);
        assert_eq!(multi_exp_pippenger(&ctx, &pairs), want);
    }
}
