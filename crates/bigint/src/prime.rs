//! Probabilistic primality testing and random prime generation.
//!
//! Paillier key generation needs large random primes `p`, `q`; Yao's
//! millionaires protocol (Algorithm 1 of the paper) additionally draws fresh
//! `N/2`-bit primes inside every protocol execution, so prime generation is a
//! hot path, not just a setup cost.

use crate::biguint::BigUint;
use crate::modular::mod_pow;
use crate::random::{gen_biguint_exact_bits, gen_biguint_range};
use rand::Rng;

/// Primes below 1000, used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 168] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Number of Miller–Rabin rounds used by default. For random (non-adversarial)
/// candidates this gives a false-positive probability far below 4^-64.
pub const DEFAULT_MILLER_RABIN_ROUNDS: usize = 32;

/// Returns `true` if `n` is (probably) prime.
///
/// Runs trial division by a table of primes below 1000 and then `rounds` Miller–Rabin
/// iterations with uniformly random bases drawn from `rng`.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if let Some(small) = n.to_u64() {
        if small < 2 {
            return false;
        }
        if SMALL_PRIMES.binary_search(&small).is_ok() {
            return true;
        }
    }
    for &p in &SMALL_PRIMES {
        if n.rem_u64(p) == 0 {
            // Divisible by a small prime; prime only if n == p, which the
            // branch above already handled.
            return false;
        }
    }
    miller_rabin(n, rounds, rng)
}

/// Miller–Rabin with random bases. `n` must be odd and `> 3` here (callers go
/// through [`is_probable_prime`], which screens smaller values).
fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    debug_assert!(n.is_odd());
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n - &one;
    let n_minus_2 = n - &two;

    // n - 1 = 2^s * d with d odd
    let s = n_minus_1.trailing_zeros().expect("n > 1 so n-1 > 0");
    let d = &n_minus_1 >> s;

    'witness: for _ in 0..rounds {
        let a = gen_biguint_range(rng, &two, &n_minus_2);
        let mut x = mod_pow(&a, &d, n);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = &x.square() % n;
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false; // a is a witness of compositeness
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
/// Panics if `bits < 2` (there is no 1-bit prime).
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = gen_biguint_exact_bits(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_probable_prime(&candidate, DEFAULT_MILLER_RABIN_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Generates two distinct probable primes of `bits` bits each whose product
/// has exactly `2 * bits` bits, suitable as Paillier key factors.
///
/// Each prime has its top *two* bits set (so `p, q ≥ 1.5 · 2^(bits-1)` and
/// `p·q ≥ 1.125 · 2^(2·bits-1)`, guaranteeing a full-size modulus).
///
/// # Panics
/// Panics if `bits < 3` (need room for two forced top bits plus the odd bit).
pub fn gen_prime_pair<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> (BigUint, BigUint) {
    assert!(bits >= 3, "prime pair factors need at least 3 bits");
    let gen_one = |rng: &mut R| loop {
        let mut candidate = gen_biguint_exact_bits(rng, bits);
        candidate.set_bit(bits - 2, true);
        candidate.set_bit(0, true);
        if is_probable_prime(&candidate, DEFAULT_MILLER_RABIN_ROUNDS, rng) {
            return candidate;
        }
    };
    let p = gen_one(rng);
    loop {
        let q = gen_one(rng);
        if q != p {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::rng;

    fn is_prime_u64(n: &BigUint, r: &mut impl Rng) -> bool {
        is_probable_prime(n, DEFAULT_MILLER_RABIN_ROUNDS, r)
    }

    #[test]
    fn small_values_classified_exactly() {
        let mut r = rng(1);
        let primes: Vec<u64> = SMALL_PRIMES.to_vec();
        for n in 0u64..1000 {
            let expect = primes.binary_search(&n).is_ok();
            assert_eq!(
                is_prime_u64(&BigUint::from_u64(n), &mut r),
                expect,
                "n = {n}"
            );
        }
    }

    #[test]
    fn known_large_primes_accepted() {
        let mut r = rng(2);
        // Mersenne primes 2^61-1, 2^89-1, 2^107-1 and a few NIST-ish values.
        for s in [
            "2305843009213693951",
            "618970019642690137449562111",
            "162259276829213363391578010288127",
            "170141183460469231731687303715884105727", // 2^127 - 1
        ] {
            let p: BigUint = s.parse().unwrap();
            assert!(is_prime_u64(&p, &mut r), "{s}");
        }
    }

    #[test]
    fn known_composites_rejected() {
        let mut r = rng(3);
        // Carmichael numbers defeat Fermat tests but not Miller–Rabin.
        for s in [
            "561", "1105", "1729", "2465", "2821", "6601", "8911", "41041", "825265",
        ] {
            let n: BigUint = s.parse().unwrap();
            assert!(!is_prime_u64(&n, &mut r), "{s} is a Carmichael number");
        }
        // Products of two close primes (RSA-style worst case for trial division).
        let p: BigUint = "2305843009213693951".parse().unwrap();
        let product = &p * &p;
        assert!(!is_prime_u64(&product, &mut r));
    }

    #[test]
    fn prime_squares_of_small_primes_rejected() {
        let mut r = rng(4);
        for &p in &SMALL_PRIMES[..20] {
            let sq = BigUint::from_u64(p * p);
            assert!(!is_prime_u64(&sq, &mut r), "{p}^2");
        }
    }

    #[test]
    fn gen_prime_has_requested_size_and_is_odd() {
        let mut r = rng(5);
        for bits in [2usize, 3, 8, 16, 32, 64, 128] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bit_length(), bits, "{bits} bits");
            assert!(bits < 3 || p.is_odd());
            assert!(is_prime_u64(&p, &mut r));
        }
    }

    #[test]
    fn gen_prime_256_bits() {
        let mut r = rng(6);
        let p = gen_prime(&mut r, 256);
        assert_eq!(p.bit_length(), 256);
        assert!(is_probable_prime(&p, 16, &mut r));
    }

    #[test]
    fn gen_prime_pair_distinct_and_full_product_size() {
        let mut r = rng(7);
        let (p, q) = gen_prime_pair(&mut r, 64);
        assert_ne!(p, q);
        assert_eq!((&p * &q).bit_length(), 128);
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn one_bit_prime_panics() {
        let mut r = rng(8);
        let _ = gen_prime(&mut r, 1);
    }

    #[test]
    fn two_bit_primes_are_2_or_3() {
        let mut r = rng(9);
        for _ in 0..10 {
            let p = gen_prime(&mut r, 2).to_u64().unwrap();
            assert!(p == 2 || p == 3, "{p}");
        }
    }

    #[test]
    fn small_primes_table_is_sorted_and_prime() {
        for w in SMALL_PRIMES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &p in &SMALL_PRIMES {
            for d in 2..p {
                if d * d > p {
                    break;
                }
                assert!(p % d != 0, "{p} divisible by {d}");
            }
        }
    }
}
