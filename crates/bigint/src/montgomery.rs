//! Montgomery-form modular arithmetic for odd moduli.
//!
//! Paillier works modulo `n` and `n²`, both odd, so every hot modular
//! exponentiation in the workspace goes through this context. The multiplier
//! is the word-level CIOS (coarsely integrated operand scanning) algorithm;
//! exponentiation uses a fixed 4-bit window.

use crate::biguint::BigUint;

/// Precomputed state for repeated multiplication modulo a fixed odd modulus.
#[derive(Clone)]
pub struct MontgomeryCtx {
    /// The modulus `m` (odd, > 1).
    modulus: BigUint,
    /// Limb count `k`; R = 2^(64k).
    k: usize,
    /// `-m^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R² mod m`, used to convert into Montgomery form.
    r2: BigUint,
    /// `R mod m` — the unit element of the Montgomery domain
    /// (`to_mont(1 mod m)`), kept so every exponentiation and every
    /// multi-exponentiation kernel starts without a conversion multiply.
    one_mont: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for odd `modulus > 1`; returns `None` otherwise.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let k = modulus.limbs().len();
        let n0_inv = neg_inv_u64(modulus.limbs()[0]);
        // R² mod m computed by repeated doubling: start from R mod m
        // (obtained by shifting) and double 64k times.
        let r_mod_m = &(&BigUint::one() << (64 * k)) % modulus;
        let mut r2 = r_mod_m.clone();
        for _ in 0..64 * k {
            r2 = r2.add_mod(&r2.clone(), modulus);
        }
        Some(MontgomeryCtx {
            modulus: modulus.clone(),
            k,
            n0_inv,
            r2,
            one_mont: r_mod_m,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Converts `x < m` into Montgomery form `x·R mod m`.
    pub fn to_mont(&self, x: &BigUint) -> BigUint {
        debug_assert!(x < &self.modulus);
        self.mont_mul(x, &self.r2)
    }

    /// Converts out of Montgomery form: `x̄ · R^{-1} mod m`.
    pub fn from_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &BigUint::one())
    }

    /// Montgomery product `a·b·R^{-1} mod m` (CIOS).
    #[allow(clippy::needless_range_loop)] // index form mirrors the CIOS recurrence
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.modulus && b < &self.modulus);
        let k = self.k;
        let m = self.modulus.limbs();
        let a_limbs = a.limbs();
        let b_limbs = b.limbs();

        // t holds k+1 limbs plus a one-bit overflow in t[k+1].
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a_limbs.get(i).copied().unwrap_or(0);

            // t += ai * b
            let mut carry = 0u64;
            for j in 0..k {
                let bj = b_limbs.get(j).copied().unwrap_or(0);
                let sum = t[j] as u128 + ai as u128 * bj as u128 + carry as u128;
                t[j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[k] as u128 + carry as u128;
            t[k] = sum as u64;
            t[k + 1] += (sum >> 64) as u64; // ≤ 1

            // u = t[0] * (-m^{-1}) mod 2^64; t += u*m; t >>= 64
            let u = t[0].wrapping_mul(self.n0_inv);
            let first = t[0] as u128 + u as u128 * m[0] as u128;
            debug_assert_eq!(first as u64, 0);
            let mut carry = (first >> 64) as u64;
            for j in 1..k {
                let sum = t[j] as u128 + u as u128 * m[j] as u128 + carry as u128;
                t[j - 1] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[k] as u128 + carry as u128;
            t[k - 1] = sum as u64;
            let c2 = (sum >> 64) as u64;
            t[k] = t[k + 1] + c2; // both ≤ 1, no overflow
            t[k + 1] = 0;
        }

        let mut result = BigUint::from_limbs(t[..=k].to_vec());
        if result >= self.modulus {
            result = result.checked_sub(&self.modulus).expect("CIOS result < 2m");
        }
        debug_assert!(result < self.modulus);
        result
    }

    /// `R mod m` — the multiplicative identity of the Montgomery domain.
    ///
    /// Equal to `to_mont(1 mod m)`; exposed so exponentiation kernels can
    /// seed their accumulators without a conversion multiply.
    pub fn one_mont(&self) -> &BigUint {
        &self.one_mont
    }

    /// Reduces `base` below the modulus (no-op clone when already reduced).
    pub(crate) fn reduce(&self, base: &BigUint) -> BigUint {
        if base >= &self.modulus {
            base % &self.modulus
        } else {
            base.clone()
        }
    }

    /// Odd powers are not enough for interleaved window scans, so the
    /// window tables hold every power `base^0 ..= base^max_index` in
    /// Montgomery form (`table[j] = base^j · R mod m`).
    pub(crate) fn window_table(&self, base_mont: &BigUint, max_index: usize) -> Vec<BigUint> {
        let mut table = Vec::with_capacity(max_index + 1);
        table.push(self.one_mont.clone());
        if max_index >= 1 {
            table.push(base_mont.clone());
        }
        for i in 2..=max_index {
            table.push(self.mont_mul(&table[i - 1], base_mont));
        }
        table
    }

    /// MSB-first 4-bit digits of `exp` (no leading zero digit for
    /// `exp > 0`; empty for `exp = 0`).
    pub(crate) fn exp_windows4(exp: &BigUint) -> Vec<u8> {
        let bits = exp.bit_length();
        let windows = bits.div_ceil(4);
        let mut digits = Vec::with_capacity(windows);
        for w in (0..windows).rev() {
            let mut idx = 0u8;
            for bit in 0..4 {
                let pos = w * 4 + bit;
                if pos < bits && exp.bit(pos) {
                    idx |= 1 << bit;
                }
            }
            digits.push(idx);
        }
        digits
    }

    /// Square-and-multiply over precomputed 4-bit window digits; the
    /// shared inner loop of [`Self::pow_mod`] and [`Self::pow_many`].
    fn pow_windows(&self, table: &[BigUint], digits: &[u8]) -> BigUint {
        let mut acc = self.one_mont.clone();
        for (i, &d) in digits.iter().enumerate() {
            if i > 0 {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            if d != 0 {
                acc = self.mont_mul(&acc, &table[d as usize]);
            }
        }
        self.from_mont(&acc)
    }

    /// `base^exp mod m` using a 4-bit fixed window.
    ///
    /// `base` may be ≥ m; it is reduced first.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return &BigUint::one() % &self.modulus;
        }
        let base_mont = self.to_mont(&self.reduce(base));
        let table = self.window_table(&base_mont, 15);
        self.pow_windows(&table, &Self::exp_windows4(exp))
    }

    /// Raises many bases to one shared exponent: `[b^exp mod m; bases]`.
    ///
    /// The exponent's window decomposition is computed once and the
    /// Montgomery context (R², one) is shared, so a batch costs strictly
    /// less than independent [`Self::pow_mod`] calls while producing
    /// limb-identical results. This is the randomizer-pool refill kernel:
    /// every pooled `r^n mod n²` rides one decomposition of `n`.
    pub fn pow_many(&self, bases: &[BigUint], exp: &BigUint) -> Vec<BigUint> {
        if exp.is_zero() {
            let one = &BigUint::one() % &self.modulus;
            return vec![one; bases.len()];
        }
        let digits = Self::exp_windows4(exp);
        bases
            .iter()
            .map(|base| {
                let base_mont = self.to_mont(&self.reduce(base));
                let table = self.window_table(&base_mont, 15);
                self.pow_windows(&table, &digits)
            })
            .collect()
    }
}

/// `-m0^{-1} mod 2^64` for odd `m0`, by Newton–Hensel lifting
/// (doubles correct bits each step: 5 iterations ≥ 64 bits).
fn neg_inv_u64(m0: u64) -> u64 {
    debug_assert!(m0 & 1 == 1);
    let mut inv = m0; // correct to 3 bits for odd m0 (x ≡ x^{-1} mod 8)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
    }
    debug_assert_eq!(m0.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gen_biguint_below, gen_biguint_bits};
    use crate::test_helpers::rng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&b(100)).is_none());
        assert!(MontgomeryCtx::new(&b(101)).is_some());
    }

    #[test]
    fn neg_inv_property() {
        for m0 in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let ninv = neg_inv_u64(m0);
            assert_eq!(m0.wrapping_mul(ninv), 1u64.wrapping_neg());
        }
    }

    #[test]
    fn roundtrip_mont_form() {
        let m = b(0xFFFF_FFFF_FFFF_FFC5); // large 64-bit prime
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for v in [0u128, 1, 2, 0xDEAD_BEEF, 0xFFFF_FFFF_FFFF_FFC4] {
            let x = b(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mont_mul_matches_naive() {
        let mut r = rng(21);
        for bits in [64usize, 128, 512, 1024] {
            let mut m = gen_biguint_bits(&mut r, bits);
            m.set_bit(0, true); // make odd
            m.set_bit(bits - 1, true);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..8 {
                let a = gen_biguint_below(&mut r, &m);
                let bv = gen_biguint_below(&mut r, &m);
                let am = ctx.to_mont(&a);
                let bm = ctx.to_mont(&bv);
                let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
                let want = &(&a * &bv) % &m;
                assert_eq!(got, want, "{bits} bits");
            }
        }
    }

    #[test]
    fn pow_mod_small_cases() {
        let m = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow_mod(&b(2), &b(10)), b(1024));
        assert_eq!(ctx.pow_mod(&b(2), &b(0)), b(1));
        assert_eq!(ctx.pow_mod(&b(0), &b(5)), b(0));
        assert_eq!(ctx.pow_mod(&b(5), &b(1)), b(5));
        // Fermat: a^(p-1) = 1 mod p
        assert_eq!(ctx.pow_mod(&b(123456), &b(1_000_000_006)), b(1));
    }

    #[test]
    fn pow_mod_reduces_large_base() {
        let m = b(97);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow_mod(&b(1000), &b(3)), b(1000u128.pow(3) % 97));
    }

    #[test]
    fn pow_mod_matches_naive_square_multiply() {
        let mut r = rng(77);
        let mut m = gen_biguint_bits(&mut r, 256);
        m.set_bit(0, true);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for _ in 0..4 {
            let base = gen_biguint_below(&mut r, &m);
            let exp = gen_biguint_bits(&mut r, 96);
            // naive square-and-multiply with plain div_rem reduction
            let mut acc = BigUint::one();
            for i in (0..exp.bit_length()).rev() {
                acc = &acc.square() % &m;
                if exp.bit(i) {
                    acc = &(&acc * &base) % &m;
                }
            }
            assert_eq!(ctx.pow_mod(&base, &exp), acc);
        }
    }

    #[test]
    fn pow_many_matches_individual_pow_mod() {
        let mut r = rng(78);
        let mut m = gen_biguint_bits(&mut r, 512);
        m.set_bit(0, true);
        m.set_bit(511, true);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let exp = gen_biguint_bits(&mut r, 256);
        let bases: Vec<BigUint> = (0..5).map(|_| gen_biguint_below(&mut r, &m)).collect();
        let got = ctx.pow_many(&bases, &exp);
        for (base, g) in bases.iter().zip(&got) {
            assert_eq!(g, &ctx.pow_mod(base, &exp));
        }
        // Zero exponent: everything is 1 mod m.
        assert_eq!(
            ctx.pow_many(&bases, &BigUint::zero()),
            vec![BigUint::one(); 5]
        );
    }

    #[test]
    fn one_mont_is_montgomery_unit() {
        let m = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.one_mont(), &ctx.to_mont(&BigUint::one()));
        let x = ctx.to_mont(&b(12345));
        assert_eq!(ctx.mont_mul(&x, ctx.one_mont()), x);
    }

    #[test]
    fn modulus_one_limb_edge() {
        // Smallest usable odd modulus.
        let m = b(3);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow_mod(&b(2), &b(2)), b(1));
        assert_eq!(ctx.pow_mod(&b(2), &b(3)), b(2));
    }
}
