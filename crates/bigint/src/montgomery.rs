//! Montgomery-form modular arithmetic for odd moduli.
//!
//! Paillier works modulo `n` and `n²`, both odd, so every hot modular
//! exponentiation in the workspace goes through this context. The multiplier
//! is the word-level CIOS (coarsely integrated operand scanning) algorithm;
//! exponentiation uses a fixed 4-bit window.

use crate::biguint::BigUint;

/// Precomputed state for repeated multiplication modulo a fixed odd modulus.
#[derive(Clone)]
pub struct MontgomeryCtx {
    /// The modulus `m` (odd, > 1).
    modulus: BigUint,
    /// Limb count `k`; R = 2^(64k).
    k: usize,
    /// `-m^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R² mod m`, used to convert into Montgomery form.
    r2: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for odd `modulus > 1`; returns `None` otherwise.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let k = modulus.limbs().len();
        let n0_inv = neg_inv_u64(modulus.limbs()[0]);
        // R² mod m computed by repeated doubling: start from R mod m
        // (obtained by shifting) and double 64k times.
        let r_mod_m = &(&BigUint::one() << (64 * k)) % modulus;
        let mut r2 = r_mod_m;
        for _ in 0..64 * k {
            r2 = r2.add_mod(&r2.clone(), modulus);
        }
        Some(MontgomeryCtx {
            modulus: modulus.clone(),
            k,
            n0_inv,
            r2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Converts `x < m` into Montgomery form `x·R mod m`.
    pub fn to_mont(&self, x: &BigUint) -> BigUint {
        debug_assert!(x < &self.modulus);
        self.mont_mul(x, &self.r2)
    }

    /// Converts out of Montgomery form: `x̄ · R^{-1} mod m`.
    pub fn from_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &BigUint::one())
    }

    /// Montgomery product `a·b·R^{-1} mod m` (CIOS).
    #[allow(clippy::needless_range_loop)] // index form mirrors the CIOS recurrence
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.modulus && b < &self.modulus);
        let k = self.k;
        let m = self.modulus.limbs();
        let a_limbs = a.limbs();
        let b_limbs = b.limbs();

        // t holds k+1 limbs plus a one-bit overflow in t[k+1].
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a_limbs.get(i).copied().unwrap_or(0);

            // t += ai * b
            let mut carry = 0u64;
            for j in 0..k {
                let bj = b_limbs.get(j).copied().unwrap_or(0);
                let sum = t[j] as u128 + ai as u128 * bj as u128 + carry as u128;
                t[j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[k] as u128 + carry as u128;
            t[k] = sum as u64;
            t[k + 1] += (sum >> 64) as u64; // ≤ 1

            // u = t[0] * (-m^{-1}) mod 2^64; t += u*m; t >>= 64
            let u = t[0].wrapping_mul(self.n0_inv);
            let first = t[0] as u128 + u as u128 * m[0] as u128;
            debug_assert_eq!(first as u64, 0);
            let mut carry = (first >> 64) as u64;
            for j in 1..k {
                let sum = t[j] as u128 + u as u128 * m[j] as u128 + carry as u128;
                t[j - 1] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[k] as u128 + carry as u128;
            t[k - 1] = sum as u64;
            let c2 = (sum >> 64) as u64;
            t[k] = t[k + 1] + c2; // both ≤ 1, no overflow
            t[k + 1] = 0;
        }

        let mut result = BigUint::from_limbs(t[..=k].to_vec());
        if result >= self.modulus {
            result = result.checked_sub(&self.modulus).expect("CIOS result < 2m");
        }
        debug_assert!(result < self.modulus);
        result
    }

    /// `base^exp mod m` using a 4-bit fixed window.
    ///
    /// `base` may be ≥ m; it is reduced first.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return &BigUint::one() % &self.modulus;
        }
        let base = if base >= &self.modulus {
            base % &self.modulus
        } else {
            base.clone()
        };

        let one_mont = self.to_mont(&(&BigUint::one() % &self.modulus));
        let base_mont = self.to_mont(&base);

        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(one_mont.clone());
        for i in 1..16 {
            table.push(self.mont_mul(&table[i - 1], &base_mont));
        }

        let bits = exp.bit_length();
        let windows = bits.div_ceil(4);
        let mut acc = one_mont;
        for w in (0..windows).rev() {
            if w + 1 < windows {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut idx = 0usize;
            for bit in 0..4 {
                let pos = w * 4 + bit;
                if pos < bits && exp.bit(pos) {
                    idx |= 1 << bit;
                }
            }
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
            }
        }
        self.from_mont(&acc)
    }
}

/// `-m0^{-1} mod 2^64` for odd `m0`, by Newton–Hensel lifting
/// (doubles correct bits each step: 5 iterations ≥ 64 bits).
fn neg_inv_u64(m0: u64) -> u64 {
    debug_assert!(m0 & 1 == 1);
    let mut inv = m0; // correct to 3 bits for odd m0 (x ≡ x^{-1} mod 8)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
    }
    debug_assert_eq!(m0.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gen_biguint_below, gen_biguint_bits};
    use crate::test_helpers::rng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&b(100)).is_none());
        assert!(MontgomeryCtx::new(&b(101)).is_some());
    }

    #[test]
    fn neg_inv_property() {
        for m0 in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let ninv = neg_inv_u64(m0);
            assert_eq!(m0.wrapping_mul(ninv), 1u64.wrapping_neg());
        }
    }

    #[test]
    fn roundtrip_mont_form() {
        let m = b(0xFFFF_FFFF_FFFF_FFC5); // large 64-bit prime
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for v in [0u128, 1, 2, 0xDEAD_BEEF, 0xFFFF_FFFF_FFFF_FFC4] {
            let x = b(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mont_mul_matches_naive() {
        let mut r = rng(21);
        for bits in [64usize, 128, 512, 1024] {
            let mut m = gen_biguint_bits(&mut r, bits);
            m.set_bit(0, true); // make odd
            m.set_bit(bits - 1, true);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..8 {
                let a = gen_biguint_below(&mut r, &m);
                let bv = gen_biguint_below(&mut r, &m);
                let am = ctx.to_mont(&a);
                let bm = ctx.to_mont(&bv);
                let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
                let want = &(&a * &bv) % &m;
                assert_eq!(got, want, "{bits} bits");
            }
        }
    }

    #[test]
    fn pow_mod_small_cases() {
        let m = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow_mod(&b(2), &b(10)), b(1024));
        assert_eq!(ctx.pow_mod(&b(2), &b(0)), b(1));
        assert_eq!(ctx.pow_mod(&b(0), &b(5)), b(0));
        assert_eq!(ctx.pow_mod(&b(5), &b(1)), b(5));
        // Fermat: a^(p-1) = 1 mod p
        assert_eq!(ctx.pow_mod(&b(123456), &b(1_000_000_006)), b(1));
    }

    #[test]
    fn pow_mod_reduces_large_base() {
        let m = b(97);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow_mod(&b(1000), &b(3)), b(1000u128.pow(3) % 97));
    }

    #[test]
    fn pow_mod_matches_naive_square_multiply() {
        let mut r = rng(77);
        let mut m = gen_biguint_bits(&mut r, 256);
        m.set_bit(0, true);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for _ in 0..4 {
            let base = gen_biguint_below(&mut r, &m);
            let exp = gen_biguint_bits(&mut r, 96);
            // naive square-and-multiply with plain div_rem reduction
            let mut acc = BigUint::one();
            for i in (0..exp.bit_length()).rev() {
                acc = &acc.square() % &m;
                if exp.bit(i) {
                    acc = &(&acc * &base) % &m;
                }
            }
            assert_eq!(ctx.pow_mod(&base, &exp), acc);
        }
    }

    #[test]
    fn modulus_one_limb_edge() {
        // Smallest usable odd modulus.
        let m = b(3);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow_mod(&b(2), &b(2)), b(1));
        assert_eq!(ctx.pow_mod(&b(2), &b(3)), b(2));
    }
}
