//! Multiplication: schoolbook for small operands, Karatsuba above a
//! limb-count threshold. Paillier key generation multiplies 1024-bit primes
//! and squares 2048-bit moduli, where Karatsuba already pays off.

use crate::biguint::{add_in_place, sub_in_place, BigUint};
use std::ops::{Mul, MulAssign};

/// Operands with at least this many limbs on both sides go through Karatsuba.
/// Below it, schoolbook's cache behaviour wins. Chosen by the `bigint_mul`
/// bench in `ppds-bench`: on the reference machine schoolbook and Karatsuba
/// break even around 32 limbs (2048 bits) and Karatsuba wins ~20% at 128
/// limbs.
const KARATSUBA_THRESHOLD: usize = 32;

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul<u64> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: u64) -> BigUint {
        if self.is_zero() || rhs == 0 {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let p = l as u128 * rhs as u128 + carry as u128;
            out.push(p as u64);
            carry = (p >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        let result = &*self * rhs;
        *self = result;
    }
}

impl BigUint {
    /// `self * self`. (Dedicated entry point; squaring inside Montgomery
    /// exponentiation dominates Paillier cost, and keeping the call explicit
    /// makes the hot path visible in profiles.)
    pub fn square(&self) -> BigUint {
        self * self
    }

    /// `self^exp` by binary exponentiation. Intended for small exponents
    /// (e.g. `10^19` chunks in decimal formatting); use
    /// [`modular::mod_pow`](crate::modular::mod_pow) for cryptographic sizes.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.square();
            }
        }
        acc
    }
}

/// Dispatches between schoolbook and Karatsuba.
pub(crate) fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        mul_schoolbook(a, b)
    } else {
        mul_karatsuba(a, b)
    }
}

/// O(n·m) schoolbook multiplication.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let p = out[i + j] as u128 + ai as u128 * bj as u128 + carry as u128;
            out[i + j] = p as u64;
            carry = (p >> 64) as u64;
        }
        out[i + b.len()] = carry;
    }
    out
}

/// Karatsuba: splits both operands at `h = min(len)/2` limbs and recurses.
///
/// With `a = a1·B^h + a0` and `b = b1·B^h + b0`:
/// `a·b = z2·B^{2h} + (z1 - z2 - z0)·B^h + z0` where `z0 = a0·b0`,
/// `z2 = a1·b1`, `z1 = (a0+a1)·(b0+b1)`.
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let h = a.len().min(b.len()) / 2;
    debug_assert!(h >= 1);
    let (a0, a1) = a.split_at(h);
    let (b0, b1) = b.split_at(h);

    let z0 = mul_limbs(trim(a0), trim(b0));
    let z2 = mul_limbs(trim(a1), trim(b1));

    let mut asum = a0.to_vec();
    add_in_place(&mut asum, a1);
    let mut bsum = b0.to_vec();
    add_in_place(&mut bsum, b1);
    let mut z1 = mul_limbs(trim(&asum), trim(&bsum));
    // z1 >= z0 + z2 always holds, so these in-place subtractions are safe.
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    let mut out = vec![0u64; a.len() + b.len()];
    add_shifted(&mut out, &z0, 0);
    add_shifted(&mut out, &z1, h);
    add_shifted(&mut out, &z2, 2 * h);
    out
}

/// Drops trailing zero limbs from a borrowed slice.
fn trim(limbs: &[u64]) -> &[u64] {
    let len = limbs.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1);
    &limbs[..len]
}

/// `out += value << (64 * limb_offset)`; `out` must be long enough.
fn add_shifted(out: &mut [u64], value: &[u64], limb_offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < value.len() || carry != 0 {
        let v = value.get(i).copied().unwrap_or(0);
        let idx = limb_offset + i;
        debug_assert!(idx < out.len() || (v == 0 && carry == 0));
        if idx >= out.len() {
            break;
        }
        let sum = out[idx] as u128 + v as u128 + carry as u128;
        out[idx] = sum as u64;
        carry = (sum >> 64) as u64;
        i += 1;
    }
    debug_assert_eq!(carry, 0, "add_shifted overflow");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gen_biguint_bits;
    use crate::test_helpers::rng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn small_products() {
        assert_eq!(&b(6) * &b(7), b(42));
        assert_eq!(&b(0) * &b(7), b(0));
        assert_eq!(&b(1) * &b(7), b(7));
        assert_eq!(
            &b(u64::MAX as u128) * &b(u64::MAX as u128),
            b((u64::MAX as u128) * (u64::MAX as u128))
        );
    }

    #[test]
    #[allow(clippy::erasing_op)] // zero-scalar behaviour is the point
    fn scalar_mul() {
        assert_eq!(&b(1 << 100) * 3u64, b(3 << 100));
        assert_eq!(&b(5) * 0u64, b(0));
        let x = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let got = &x * u64::MAX;
        let want = &x * &b(u64::MAX as u128);
        assert_eq!(got, want);
    }

    #[test]
    fn pow_small() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(10).pow(0), b(1));
        assert_eq!(b(0).pow(5), b(0));
        assert_eq!(b(0).pow(0), b(1)); // convention: 0^0 = 1
        assert_eq!(b(3).pow(40), b(3u128.pow(40)));
    }

    #[test]
    fn square_matches_mul() {
        let mut r = rng(7);
        for bits in [1usize, 64, 65, 500, 1500, 3000] {
            let x = gen_biguint_bits(&mut r, bits);
            assert_eq!(x.square(), &x * &x);
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut r = rng(42);
        for (abits, bbits) in [
            (64 * 30, 64 * 30),   // both above threshold, balanced
            (64 * 48, 64 * 25),   // unbalanced
            (64 * 100, 64 * 100), // deep recursion
            (64 * 32, 64 * 32),   // exactly at threshold
        ] {
            let a = gen_biguint_bits(&mut r, abits);
            let b = gen_biguint_bits(&mut r, bbits);
            let fast = BigUint::from_limbs(mul_limbs(a.limbs(), b.limbs()));
            let slow = BigUint::from_limbs(mul_schoolbook(a.limbs(), b.limbs()));
            assert_eq!(fast, slow, "{abits} x {bbits} bits");
        }
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let mut r = rng(3);
        let a = gen_biguint_bits(&mut r, 700);
        let b2 = gen_biguint_bits(&mut r, 1900);
        let c = gen_biguint_bits(&mut r, 130);
        assert_eq!(&a * &b2, &b2 * &a);
        let lhs = &a * &(&b2 + &c);
        let rhs = &(&a * &b2) + &(&a * &c);
        assert_eq!(lhs, rhs);
    }
}
