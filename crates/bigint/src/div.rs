//! Division and remainder: single-limb fast path plus Knuth's Algorithm D
//! (TAOCP vol. 2, §4.3.1) for multi-limb divisors.

use crate::biguint::BigUint;
use std::ops::{Div, Rem};

impl BigUint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = div_rem_single(&self.limbs, divisor.limbs[0]);
            return (BigUint::from_limbs(q), BigUint::from_u64(r));
        }
        div_rem_knuth(self, divisor)
    }

    /// `self % divisor` as a `u64` for a single-limb divisor (fast path used
    /// by trial division in primality testing).
    pub fn rem_u64(&self, divisor: u64) -> u64 {
        assert!(divisor != 0, "BigUint division by zero");
        let mut rem = 0u64;
        for &limb in self.limbs.iter().rev() {
            let acc = ((rem as u128) << 64) | limb as u128;
            rem = (acc % divisor as u128) as u64;
        }
        rem
    }
}

/// Divides a limb vector by a single limb, returning quotient limbs and the
/// remainder.
fn div_rem_single(limbs: &[u64], divisor: u64) -> (Vec<u64>, u64) {
    let mut quotient = vec![0u64; limbs.len()];
    let mut rem = 0u64;
    for i in (0..limbs.len()).rev() {
        let acc = ((rem as u128) << 64) | limbs[i] as u128;
        quotient[i] = (acc / divisor as u128) as u64;
        rem = (acc % divisor as u128) as u64;
    }
    (quotient, rem)
}

/// Knuth Algorithm D for divisors of at least two limbs.
fn div_rem_knuth(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    let n = v.limbs.len();
    debug_assert!(n >= 2);
    debug_assert!(u >= v);

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs[n - 1].leading_zeros() as usize;
    let vn = (v << shift).limbs;
    debug_assert_eq!(vn.len(), n);
    let mut un = (u << shift).limbs;
    un.push(0); // always keep one extra high limb for the subtraction step
    let m = un.len() - 1 - n; // quotient has m + 1 limbs
    let mut q = vec![0u64; m + 1];

    let v_top = vn[n - 1] as u128;
    let v_next = vn[n - 2] as u128;

    // D2–D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two limbs of the current remainder.
        let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = numerator / v_top;
        let mut rhat = numerator % v_top;
        while qhat >= 1u128 << 64 || qhat * v_next > ((rhat << 64) | un[j + n - 2] as u128) {
            qhat -= 1;
            rhat += v_top;
            if rhat >= 1u128 << 64 {
                break;
            }
        }

        // D4: multiply-and-subtract un[j..=j+n] -= q̂ · v.
        let mut mul_carry = 0u128;
        let mut borrow = 0u64;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + mul_carry;
            mul_carry = p >> 64;
            let (d, b1) = un[i + j].overflowing_sub(p as u64);
            let (d, b2) = d.overflowing_sub(borrow);
            un[i + j] = d;
            borrow = b1 as u64 + b2 as u64;
        }
        let (d, b1) = un[j + n].overflowing_sub(mul_carry as u64);
        let (d, b2) = d.overflowing_sub(borrow);
        un[j + n] = d;

        // D5/D6: q̂ was one too large at most once (Knuth Thm. 4.3.1B);
        // detect the underflow and add the divisor back.
        if b1 || b2 {
            debug_assert!(!(b1 && b2), "double borrow cannot occur");
            qhat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let sum = un[i + j] as u128 + vn[i] as u128 + carry as u128;
                un[i + j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            un[j + n] = un[j + n].wrapping_add(carry);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let rem = BigUint::from_limbs(un[..n].to_vec());
    (BigUint::from_limbs(q), &rem >> shift)
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gen_biguint_bits;
    use crate::test_helpers::rng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn small_division() {
        assert_eq!(b(42).div_rem(&b(7)), (b(6), b(0)));
        assert_eq!(b(43).div_rem(&b(7)), (b(6), b(1)));
        assert_eq!(b(6).div_rem(&b(7)), (b(0), b(6)));
        assert_eq!(b(0).div_rem(&b(7)), (b(0), b(0)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = b(1).div_rem(&BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn rem_u64_by_zero_panics() {
        let _ = b(1).rem_u64(0);
    }

    #[test]
    fn u128_cases_match_native() {
        let cases = [
            (u128::MAX, 3u128),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, u64::MAX as u128 + 1),
            (u128::MAX - 1, u128::MAX),
            (1 << 127, (1 << 64) + 12345),
            (0xDEAD_BEEF_0000_0000_0000_0001, 0xFFFF_FFFF_FFFF),
        ];
        for (x, y) in cases {
            let (q, r) = b(x).div_rem(&b(y));
            assert_eq!(q, b(x / y), "{x} / {y}");
            assert_eq!(r, b(x % y), "{x} % {y}");
        }
    }

    #[test]
    fn rem_u64_matches_div_rem() {
        let mut r = rng(11);
        for bits in [1usize, 64, 190, 1024] {
            let x = gen_biguint_bits(&mut r, bits);
            for d in [1u64, 2, 3, 10, 97, u64::MAX] {
                assert_eq!(x.rem_u64(d), (&x % &BigUint::from_u64(d)).to_u64().unwrap());
            }
        }
    }

    #[test]
    fn knuth_reconstruction_random() {
        let mut r = rng(99);
        for (ubits, vbits) in [
            (512usize, 128usize),
            (2048, 1024),
            (300, 299),
            (1024, 1024),
            (4096, 130),
        ] {
            for _ in 0..10 {
                let u = gen_biguint_bits(&mut r, ubits);
                let v = gen_biguint_bits(&mut r, vbits);
                if v.is_zero() {
                    continue;
                }
                let (q, rem) = u.div_rem(&v);
                assert!(rem < v, "remainder must be < divisor");
                assert_eq!(&(&q * &v) + &rem, u, "u = q*v + r");
            }
        }
    }

    #[test]
    fn division_triggering_add_back() {
        // Exercises the rare D6 add-back: u chosen so the first q̂ estimate
        // overshoots. Classic adversarial pattern: v = B^2/2 + 1 style values.
        let v = BigUint::from_limbs(vec![1, 1u64 << 63]);
        let u = BigUint::from_limbs(vec![0, 0, 1u64 << 63]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn exact_division_of_products() {
        let mut r = rng(5);
        for _ in 0..20 {
            let a = gen_biguint_bits(&mut r, 600);
            let d = gen_biguint_bits(&mut r, 300);
            if d.is_zero() {
                continue;
            }
            let product = &a * &d;
            let (q, rem) = product.div_rem(&d);
            assert_eq!(q, a);
            assert!(rem.is_zero());
        }
    }
}
