//! Modular arithmetic helpers: exponentiation, inverse, GCD and LCM.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use crate::montgomery::MontgomeryCtx;

/// `base^exp mod modulus`.
///
/// Uses Montgomery exponentiation for odd moduli (the only case the
/// Paillier hot path needs — `n` and `n²` are always odd) and falls back
/// to square-and-multiply with a shared Barrett reduction for even moduli
/// so the function is total. The fallback triggers only outside the
/// ciphertext pipeline: power-of-two moduli in tests, DGK-style `u`
/// values, and other even-modulus callers. It precomputes
/// `μ = ⌊2^{2k}/m⌋` once and reduces each step with two multiplies and at
/// most two correction subtractions instead of a full long division, so
/// even-modulus exponentiation costs the same per-step work shape as the
/// Montgomery path.
///
/// # Panics
/// Panics if `modulus` is zero.
pub fn mod_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "mod_pow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if let Some(ctx) = MontgomeryCtx::new(modulus) {
        return ctx.pow_mod(base, exp);
    }
    // Even modulus fallback: Barrett square-and-multiply.
    let barrett = BarrettCtx::new(modulus);
    let mut acc = BigUint::one();
    let base = base % modulus;
    for i in (0..exp.bit_length()).rev() {
        acc = barrett.reduce(&acc.square());
        if exp.bit(i) {
            acc = barrett.reduce(&(&acc * &base));
        }
    }
    acc
}

/// Barrett reduction state for a fixed modulus of any parity.
///
/// Montgomery form needs an odd modulus; Barrett does not, which makes it
/// the right reduction for `mod_pow`'s even-modulus fallback. With
/// `k = bit_length(m)` and `μ = ⌊2^{2k}/m⌋` precomputed once,
/// `reduce(x)` for `x < m²` estimates the quotient as
/// `q̂ = ⌊⌊x/2^{k−1}⌋ · μ / 2^{k+1}⌋ ≤ ⌊x/m⌋`, subtracts `q̂·m`, and
/// corrects with at most two conditional subtractions — two big
/// multiplies per reduction in place of a full division.
struct BarrettCtx {
    modulus: BigUint,
    /// `bit_length(modulus)`.
    k: usize,
    /// `⌊2^{2k} / modulus⌋`.
    mu: BigUint,
}

impl BarrettCtx {
    /// Precomputes `μ` for `modulus > 1`.
    fn new(modulus: &BigUint) -> Self {
        debug_assert!(!modulus.is_zero() && !modulus.is_one());
        let k = modulus.bit_length();
        let mu = &(&BigUint::one() << (2 * k)) / modulus;
        BarrettCtx {
            modulus: modulus.clone(),
            k,
            mu,
        }
    }

    /// `x mod modulus` for `x < modulus²` (hence `x < 2^{2k}`).
    fn reduce(&self, x: &BigUint) -> BigUint {
        debug_assert!(x.bit_length() <= 2 * self.k);
        let q_hat = &(&(x >> (self.k - 1)) * &self.mu) >> (self.k + 1);
        let mut r = x
            .checked_sub(&(&q_hat * &self.modulus))
            .expect("Barrett quotient estimate never exceeds the true quotient");
        while r >= self.modulus {
            r = r
                .checked_sub(&self.modulus)
                .expect("r >= modulus just checked");
        }
        debug_assert_eq!(&r, &(x % &self.modulus));
        r
    }
}

/// Greatest common divisor (binary GCD).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let shift_a = a.trailing_zeros().expect("a nonzero");
    let shift_b = b.trailing_zeros().expect("b nonzero");
    let common = shift_a.min(shift_b);
    a = &a >> shift_a;
    b = &b >> shift_b;
    // Both odd now.
    loop {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= &a; // b >= a, result even or zero
        if b.is_zero() {
            return &a << common;
        }
        b = &b >> b.trailing_zeros().expect("b nonzero");
    }
}

/// Least common multiple; `lcm(0, x) = 0`.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`.
pub fn extended_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut old_r = BigInt::from_biguint(Sign::Positive, a.clone());
    let mut r = BigInt::from_biguint(Sign::Positive, b.clone());
    let mut old_s = BigInt::one();
    let mut s = BigInt::zero();
    let mut old_t = BigInt::zero();
    let mut t = BigInt::one();

    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let new_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, new_t);
    }
    (old_r.into_magnitude(), old_s, old_t)
}

/// `a^{-1} mod modulus`, or `None` when `gcd(a, modulus) != 1`.
///
/// # Panics
/// Panics if `modulus` is zero.
pub fn mod_inverse(a: &BigUint, modulus: &BigUint) -> Option<BigUint> {
    assert!(!modulus.is_zero(), "mod_inverse with zero modulus");
    if modulus.is_one() {
        return Some(BigUint::zero());
    }
    let a = a % modulus;
    if a.is_zero() {
        return None;
    }
    let (g, x, _) = extended_gcd(&a, modulus);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(modulus))
}

/// `(a * b) mod modulus` without intermediate growth beyond one product.
pub fn mod_mul(a: &BigUint, b: &BigUint, modulus: &BigUint) -> BigUint {
    &(a * b) % modulus
}

/// Montgomery's batch-inversion trick: inverts every element of `values`
/// modulo `modulus` with **one** extended-GCD inversion plus `3(k−1)`
/// modular multiplications, instead of `k` extended GCDs.
///
/// Prefix products `p_i = v_0·…·v_i` are built left to right, the single
/// inverse `(p_{k-1})^{-1}` is computed, and each `v_i^{-1}` is recovered
/// by back-substitution (`v_i^{-1} = p_{k-1}^{-1}·…` running product).
/// For odd moduli the multiplications run in the Montgomery domain, so a
/// batch of `k` costs ≈ `4k` Montgomery products + one inversion.
///
/// Returns `None` when **any** element is zero or shares a factor with
/// the modulus — exactly the elements for which [`mod_inverse`] returns
/// `None` — because a single non-unit poisons the chained product. Each
/// returned inverse is the canonical residue [`mod_inverse`] produces.
///
/// # Panics
/// Panics if `modulus` is zero.
pub fn batch_mod_inverse(values: &[BigUint], modulus: &BigUint) -> Option<Vec<BigUint>> {
    assert!(!modulus.is_zero(), "batch_mod_inverse with zero modulus");
    if modulus.is_one() {
        return Some(vec![BigUint::zero(); values.len()]);
    }
    if values.is_empty() {
        return Some(Vec::new());
    }
    if let Some(ctx) = MontgomeryCtx::new(modulus) {
        batch_mod_inverse_with(&ctx, values)
    } else {
        // Even modulus: same chain with plain reductions.
        let vals: Vec<BigUint> = values.iter().map(|v| v % modulus).collect();
        let mut prefix = Vec::with_capacity(vals.len());
        prefix.push(vals[0].clone());
        for v in &vals[1..] {
            let next = mod_mul(prefix.last().expect("nonempty"), v, modulus);
            prefix.push(next);
        }
        let inv_total = mod_inverse(prefix.last().expect("nonempty"), modulus)?;
        let mut inv_running = inv_total;
        let mut out = vec![BigUint::zero(); vals.len()];
        for i in (1..vals.len()).rev() {
            out[i] = mod_mul(&inv_running, &prefix[i - 1], modulus);
            inv_running = mod_mul(&inv_running, &vals[i], modulus);
        }
        out[0] = inv_running;
        Some(out)
    }
}

/// [`batch_mod_inverse`] against a caller-held [`MontgomeryCtx`], so
/// repeat batches under one fixed odd modulus (a Paillier key's `n`)
/// skip rebuilding the context's `R²` table on every call.
pub fn batch_mod_inverse_with(ctx: &MontgomeryCtx, values: &[BigUint]) -> Option<Vec<BigUint>> {
    let modulus = ctx.modulus();
    if values.is_empty() {
        return Some(Vec::new());
    }
    // Montgomery chain: to_mont each value once, multiply in-domain.
    let vals: Vec<BigUint> = values.iter().map(|v| ctx.to_mont(&(v % modulus))).collect();
    let mut prefix = Vec::with_capacity(vals.len());
    prefix.push(vals[0].clone());
    for v in &vals[1..] {
        let next = ctx.mont_mul(prefix.last().expect("nonempty"), v);
        prefix.push(next);
    }
    let total = ctx.from_mont(prefix.last().expect("nonempty"));
    let inv_total = mod_inverse(&total, modulus)?;
    let mut inv_running = ctx.to_mont(&inv_total);
    let mut out = vec![BigUint::zero(); vals.len()];
    for i in (1..vals.len()).rev() {
        out[i] = ctx.from_mont(&ctx.mont_mul(&inv_running, &prefix[i - 1]));
        inv_running = ctx.mont_mul(&inv_running, &vals[i]);
    }
    out[0] = ctx.from_mont(&inv_running);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gen_biguint_below, gen_biguint_bits};
    use crate::test_helpers::rng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn mod_pow_basic() {
        assert_eq!(mod_pow(&b(2), &b(10), &b(1000)), b(24));
        assert_eq!(mod_pow(&b(2), &b(10), &b(1)), b(0));
        assert_eq!(mod_pow(&b(0), &b(0), &b(7)), b(1)); // 0^0 = 1 convention
        assert_eq!(mod_pow(&b(5), &b(0), &b(7)), b(1));
    }

    #[test]
    fn mod_pow_even_modulus_fallback() {
        assert_eq!(mod_pow(&b(3), &b(4), &b(100)), b(81));
        assert_eq!(
            mod_pow(&b(7), &b(13), &b(1 << 40)),
            b(7u128.pow(13) % (1 << 40))
        );
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(&b(0), &b(5)), b(5));
        assert_eq!(gcd(&b(5), &b(0)), b(5));
        assert_eq!(gcd(&b(0), &b(0)), b(0));
        assert_eq!(gcd(&b(12), &b(18)), b(6));
        assert_eq!(gcd(&b(17), &b(13)), b(1));
        assert_eq!(gcd(&b(1 << 30), &b(1 << 20)), b(1 << 20));
        assert_eq!(gcd(&b(2 * 3 * 5 * 7), &b(3 * 7 * 11)), b(21));
    }

    #[test]
    fn gcd_matches_euclid_random() {
        let mut r = rng(31);
        for _ in 0..25 {
            let a = gen_biguint_bits(&mut r, 256);
            let bb = gen_biguint_bits(&mut r, 200);
            let g = gcd(&a, &bb);
            if !a.is_zero() && !bb.is_zero() {
                assert!((&a % &g).is_zero());
                assert!((&bb % &g).is_zero());
            }
            // Classical Euclid cross-check.
            let mut x = a.clone();
            let mut y = bb.clone();
            while !y.is_zero() {
                let rem = &x % &y;
                x = std::mem::replace(&mut y, rem);
            }
            assert_eq!(g, x);
        }
    }

    #[test]
    fn lcm_cases() {
        assert_eq!(lcm(&b(4), &b(6)), b(12));
        assert_eq!(lcm(&b(0), &b(6)), b(0));
        assert_eq!(lcm(&b(7), &b(13)), b(91));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let mut r = rng(32);
        for _ in 0..20 {
            let a = gen_biguint_bits(&mut r, 192);
            let bb = gen_biguint_bits(&mut r, 160);
            let (g, x, y) = extended_gcd(&a, &bb);
            let lhs = &(&BigInt::from_biguint(Sign::Positive, a.clone()) * &x)
                + &(&BigInt::from_biguint(Sign::Positive, bb.clone()) * &y);
            assert_eq!(lhs, BigInt::from_biguint(Sign::Positive, g));
        }
    }

    #[test]
    fn mod_inverse_round_trips() {
        let m = b(1_000_000_007);
        for v in [1u128, 2, 3, 999, 1_000_000_006] {
            let inv = mod_inverse(&b(v), &m).expect("prime modulus");
            assert_eq!(&(&b(v) * &inv) % &m, b(1), "v = {v}");
        }
    }

    #[test]
    fn mod_inverse_nonexistent() {
        assert_eq!(mod_inverse(&b(6), &b(9)), None);
        assert_eq!(mod_inverse(&b(0), &b(9)), None);
        assert_eq!(mod_inverse(&b(9), &b(9)), None);
    }

    #[test]
    fn mod_inverse_modulus_one() {
        assert_eq!(mod_inverse(&b(5), &b(1)), Some(b(0)));
    }

    #[test]
    fn mod_inverse_random_odd_moduli() {
        let mut r = rng(33);
        for _ in 0..15 {
            let mut m = gen_biguint_bits(&mut r, 384);
            m.set_bit(0, true);
            if m.is_one() {
                continue;
            }
            let a = gen_biguint_below(&mut r, &m);
            match mod_inverse(&a, &m) {
                Some(inv) => {
                    assert!(inv < m);
                    assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
                }
                None => assert!(!gcd(&a, &m).is_one()),
            }
        }
    }

    #[test]
    fn mod_pow_even_modulus_matches_plain_reduction() {
        // The Barrett fallback must be value-identical to full division.
        let mut r = rng(35);
        for bits in [16usize, 64, 256] {
            let mut m = gen_biguint_bits(&mut r, bits);
            m.set_bit(0, false); // force even
            if m.is_zero() || m.is_one() {
                continue;
            }
            for _ in 0..6 {
                let base = gen_biguint_bits(&mut r, bits + 8);
                let exp = gen_biguint_bits(&mut r, 48);
                let got = mod_pow(&base, &exp, &m);
                let mut want = BigUint::one();
                for i in (0..exp.bit_length()).rev() {
                    want = &want.square() % &m;
                    if exp.bit(i) {
                        want = &(&want * &base) % &m;
                    }
                }
                assert_eq!(got, want, "{bits}-bit even modulus");
            }
        }
    }

    #[test]
    fn barrett_reduce_matches_division() {
        let mut r = rng(36);
        for bits in [8usize, 64, 300] {
            let mut m = gen_biguint_bits(&mut r, bits);
            m.set_bit(bits - 1, true);
            if m.is_one() {
                continue;
            }
            let ctx = BarrettCtx::new(&m);
            for _ in 0..20 {
                let x = &gen_biguint_below(&mut r, &m) * &gen_biguint_below(&mut r, &m);
                assert_eq!(ctx.reduce(&x), &x % &m);
            }
            // Boundary cases.
            assert_eq!(ctx.reduce(&BigUint::zero()), BigUint::zero());
            assert_eq!(ctx.reduce(&(&m - &BigUint::one())), &m - &BigUint::one());
        }
    }

    #[test]
    fn batch_mod_inverse_matches_per_element() {
        let mut r = rng(37);
        for (bits, odd) in [(256usize, true), (128, false)] {
            let mut m = gen_biguint_bits(&mut r, bits);
            m.set_bit(0, odd);
            m.set_bit(bits - 1, true);
            for k in [1usize, 2, 7, 33] {
                let values: Vec<BigUint> = (0..k).map(|_| gen_biguint_below(&mut r, &m)).collect();
                let per: Option<Vec<BigUint>> = values.iter().map(|v| mod_inverse(v, &m)).collect();
                assert_eq!(batch_mod_inverse(&values, &m), per, "{bits} bits, k={k}");
            }
        }
    }

    #[test]
    fn batch_mod_inverse_rejects_zero_and_shared_factor() {
        let m = b(1_000_000_007);
        let good = [b(2), b(3), b(5)];
        assert!(batch_mod_inverse(&good, &m).is_some());
        let with_zero = [b(2), b(0), b(5)];
        assert_eq!(batch_mod_inverse(&with_zero, &m), None);
        let composite = b(91); // 7 · 13
        let shared = [b(2), b(26), b(5)]; // gcd(26, 91) = 13
        assert_eq!(batch_mod_inverse(&shared, &composite), None);
    }

    #[test]
    fn batch_mod_inverse_edges() {
        let m = b(101);
        assert_eq!(batch_mod_inverse(&[], &m), Some(vec![]));
        assert_eq!(batch_mod_inverse(&[b(7)], &b(1)), Some(vec![b(0)]));
        let single = batch_mod_inverse(&[b(7)], &m).unwrap();
        assert_eq!(single, vec![mod_inverse(&b(7), &m).unwrap()]);
    }

    #[test]
    fn fermat_little_theorem_via_mod_pow() {
        // 2^61 - 1 is a Mersenne prime.
        let p = b((1u128 << 61) - 1);
        let mut r = rng(34);
        for _ in 0..5 {
            let a = gen_biguint_below(&mut r, &p);
            if a.is_zero() {
                continue;
            }
            assert_eq!(mod_pow(&a, &(&p - &b(1)), &p), BigUint::one());
        }
    }
}
