//! Modular arithmetic helpers: exponentiation, inverse, GCD and LCM.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use crate::montgomery::MontgomeryCtx;

/// `base^exp mod modulus`.
///
/// Uses Montgomery exponentiation for odd moduli (the only case Paillier
/// needs) and falls back to square-and-multiply with plain reduction for
/// even moduli so the function is total.
///
/// # Panics
/// Panics if `modulus` is zero.
pub fn mod_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "mod_pow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if let Some(ctx) = MontgomeryCtx::new(modulus) {
        return ctx.pow_mod(base, exp);
    }
    // Even modulus fallback.
    let mut acc = BigUint::one();
    let base = base % modulus;
    for i in (0..exp.bit_length()).rev() {
        acc = &acc.square() % modulus;
        if exp.bit(i) {
            acc = &(&acc * &base) % modulus;
        }
    }
    acc
}

/// Greatest common divisor (binary GCD).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let shift_a = a.trailing_zeros().expect("a nonzero");
    let shift_b = b.trailing_zeros().expect("b nonzero");
    let common = shift_a.min(shift_b);
    a = &a >> shift_a;
    b = &b >> shift_b;
    // Both odd now.
    loop {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= &a; // b >= a, result even or zero
        if b.is_zero() {
            return &a << common;
        }
        b = &b >> b.trailing_zeros().expect("b nonzero");
    }
}

/// Least common multiple; `lcm(0, x) = 0`.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`.
pub fn extended_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut old_r = BigInt::from_biguint(Sign::Positive, a.clone());
    let mut r = BigInt::from_biguint(Sign::Positive, b.clone());
    let mut old_s = BigInt::one();
    let mut s = BigInt::zero();
    let mut old_t = BigInt::zero();
    let mut t = BigInt::one();

    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let new_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, new_t);
    }
    (old_r.into_magnitude(), old_s, old_t)
}

/// `a^{-1} mod modulus`, or `None` when `gcd(a, modulus) != 1`.
///
/// # Panics
/// Panics if `modulus` is zero.
pub fn mod_inverse(a: &BigUint, modulus: &BigUint) -> Option<BigUint> {
    assert!(!modulus.is_zero(), "mod_inverse with zero modulus");
    if modulus.is_one() {
        return Some(BigUint::zero());
    }
    let a = a % modulus;
    if a.is_zero() {
        return None;
    }
    let (g, x, _) = extended_gcd(&a, modulus);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(modulus))
}

/// `(a * b) mod modulus` without intermediate growth beyond one product.
pub fn mod_mul(a: &BigUint, b: &BigUint, modulus: &BigUint) -> BigUint {
    &(a * b) % modulus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gen_biguint_below, gen_biguint_bits};
    use crate::test_helpers::rng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn mod_pow_basic() {
        assert_eq!(mod_pow(&b(2), &b(10), &b(1000)), b(24));
        assert_eq!(mod_pow(&b(2), &b(10), &b(1)), b(0));
        assert_eq!(mod_pow(&b(0), &b(0), &b(7)), b(1)); // 0^0 = 1 convention
        assert_eq!(mod_pow(&b(5), &b(0), &b(7)), b(1));
    }

    #[test]
    fn mod_pow_even_modulus_fallback() {
        assert_eq!(mod_pow(&b(3), &b(4), &b(100)), b(81));
        assert_eq!(
            mod_pow(&b(7), &b(13), &b(1 << 40)),
            b(7u128.pow(13) % (1 << 40))
        );
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(&b(0), &b(5)), b(5));
        assert_eq!(gcd(&b(5), &b(0)), b(5));
        assert_eq!(gcd(&b(0), &b(0)), b(0));
        assert_eq!(gcd(&b(12), &b(18)), b(6));
        assert_eq!(gcd(&b(17), &b(13)), b(1));
        assert_eq!(gcd(&b(1 << 30), &b(1 << 20)), b(1 << 20));
        assert_eq!(gcd(&b(2 * 3 * 5 * 7), &b(3 * 7 * 11)), b(21));
    }

    #[test]
    fn gcd_matches_euclid_random() {
        let mut r = rng(31);
        for _ in 0..25 {
            let a = gen_biguint_bits(&mut r, 256);
            let bb = gen_biguint_bits(&mut r, 200);
            let g = gcd(&a, &bb);
            if !a.is_zero() && !bb.is_zero() {
                assert!((&a % &g).is_zero());
                assert!((&bb % &g).is_zero());
            }
            // Classical Euclid cross-check.
            let mut x = a.clone();
            let mut y = bb.clone();
            while !y.is_zero() {
                let rem = &x % &y;
                x = std::mem::replace(&mut y, rem);
            }
            assert_eq!(g, x);
        }
    }

    #[test]
    fn lcm_cases() {
        assert_eq!(lcm(&b(4), &b(6)), b(12));
        assert_eq!(lcm(&b(0), &b(6)), b(0));
        assert_eq!(lcm(&b(7), &b(13)), b(91));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let mut r = rng(32);
        for _ in 0..20 {
            let a = gen_biguint_bits(&mut r, 192);
            let bb = gen_biguint_bits(&mut r, 160);
            let (g, x, y) = extended_gcd(&a, &bb);
            let lhs = &(&BigInt::from_biguint(Sign::Positive, a.clone()) * &x)
                + &(&BigInt::from_biguint(Sign::Positive, bb.clone()) * &y);
            assert_eq!(lhs, BigInt::from_biguint(Sign::Positive, g));
        }
    }

    #[test]
    fn mod_inverse_round_trips() {
        let m = b(1_000_000_007);
        for v in [1u128, 2, 3, 999, 1_000_000_006] {
            let inv = mod_inverse(&b(v), &m).expect("prime modulus");
            assert_eq!(&(&b(v) * &inv) % &m, b(1), "v = {v}");
        }
    }

    #[test]
    fn mod_inverse_nonexistent() {
        assert_eq!(mod_inverse(&b(6), &b(9)), None);
        assert_eq!(mod_inverse(&b(0), &b(9)), None);
        assert_eq!(mod_inverse(&b(9), &b(9)), None);
    }

    #[test]
    fn mod_inverse_modulus_one() {
        assert_eq!(mod_inverse(&b(5), &b(1)), Some(b(0)));
    }

    #[test]
    fn mod_inverse_random_odd_moduli() {
        let mut r = rng(33);
        for _ in 0..15 {
            let mut m = gen_biguint_bits(&mut r, 384);
            m.set_bit(0, true);
            if m.is_one() {
                continue;
            }
            let a = gen_biguint_below(&mut r, &m);
            match mod_inverse(&a, &m) {
                Some(inv) => {
                    assert!(inv < m);
                    assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
                }
                None => assert!(!gcd(&a, &m).is_one()),
            }
        }
    }

    #[test]
    fn fermat_little_theorem_via_mod_pow() {
        // 2^61 - 1 is a Mersenne prime.
        let p = b((1u128 << 61) - 1);
        let mut r = rng(34);
        for _ in 0..5 {
            let a = gen_biguint_below(&mut r, &p);
            if a.is_zero() {
                continue;
            }
            assert_eq!(mod_pow(&a, &(&p - &b(1)), &p), BigUint::one());
        }
    }
}
