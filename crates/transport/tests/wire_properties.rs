//! Property tests for the framing invariant: every encodable value must
//! round-trip through the wire codec exactly, and the two transports must
//! charge byte-identical traffic for the same message sequence.

use ppds_bigint::{BigInt, BigUint, Sign};
use ppds_transport::tcp::TcpChannel;
use ppds_transport::{duplex, Channel, MetricsSnapshot, WireDecode, WireEncode};
use proptest::prelude::*;
use std::net::TcpListener;

fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: &T) -> bool {
    let bytes = value.encode_to_vec();
    match T::decode_exact(&bytes) {
        Ok(back) => back == *value,
        Err(_) => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn u64_roundtrips(v in any::<u64>()) {
        prop_assert!(roundtrip(&v));
    }

    #[test]
    fn i64_roundtrips(v in any::<i64>()) {
        prop_assert!(roundtrip(&v));
    }

    #[test]
    fn bool_and_u32_roundtrip(b in any::<bool>(), v in any::<u32>()) {
        prop_assert!(roundtrip(&b));
        prop_assert!(roundtrip(&v));
    }

    #[test]
    fn biguint_roundtrips(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let value = BigUint::from_bytes_le(&bytes);
        prop_assert!(roundtrip(&value));
    }

    #[test]
    fn bigint_roundtrips(magnitude in proptest::collection::vec(any::<u8>(), 0..48), negative in any::<bool>()) {
        let magnitude = BigUint::from_bytes_le(&magnitude);
        let sign = if magnitude.is_zero() {
            Sign::Zero
        } else if negative {
            Sign::Negative
        } else {
            Sign::Positive
        };
        let value = BigInt::from_biguint(sign, magnitude);
        prop_assert!(roundtrip(&value));
    }

    #[test]
    fn vectors_and_tuples_roundtrip(
        xs in proptest::collection::vec(any::<u64>(), 0..20),
        pair in (any::<u64>(), any::<i64>()),
    ) {
        prop_assert!(roundtrip(&xs));
        prop_assert!(roundtrip(&pair));
    }

    #[test]
    fn truncation_never_decodes(v in any::<u64>(), cut in 1usize..8) {
        let bytes = v.encode_to_vec();
        prop_assert!(u64::decode_exact(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn trailing_bytes_always_rejected(v in any::<u64>(), junk in 1u8..=255) {
        let mut bytes = v.encode_to_vec();
        bytes.push(junk);
        prop_assert!(u64::decode_exact(&bytes).is_err());
    }

    #[test]
    fn biguint_encoding_is_canonical(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
        // Encoding is minimal: re-encoding a decoded value reproduces the
        // same bytes (no redundant leading zeros survive a round-trip).
        let value = BigUint::from_bytes_le(&bytes);
        let encoded = value.encode_to_vec();
        let again = BigUint::decode_exact(&encoded).unwrap().encode_to_vec();
        prop_assert_eq!(encoded, again);
    }
}

/// Drives the same message sequence over an in-memory pair and over real
/// TCP sockets; both transports must report byte-identical
/// [`MetricsSnapshot`]s (payload + framing) on each endpoint.
#[test]
fn memory_and_tcp_charge_identical_traffic() {
    let payloads: Vec<Vec<u8>> = vec![
        vec![],
        vec![1],
        vec![0xAB; 7],
        vec![0xCD; 1024],
        (0..=255).collect(),
    ];

    // In-memory endpoints.
    let (mut mem_a, mut mem_b) = duplex();
    for p in &payloads {
        mem_a.send_bytes(p).unwrap();
        let got = mem_b.recv_bytes().unwrap();
        assert_eq!(&got, p);
    }
    mem_b.send_bytes(&[9, 9, 9]).unwrap();
    let _ = mem_a.recv_bytes().unwrap();

    // The same sequence over real sockets.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let payloads_clone = payloads.clone();
    let server = std::thread::spawn(move || {
        let mut chan = TcpChannel::accept(&listener).unwrap();
        for p in &payloads_clone {
            let got = chan.recv_bytes().unwrap();
            assert_eq!(&got, p);
        }
        chan.send_bytes(&[9, 9, 9]).unwrap();
        chan.metrics()
    });
    let mut tcp_a = TcpChannel::connect(addr).unwrap();
    for p in &payloads {
        tcp_a.send_bytes(p).unwrap();
    }
    let _ = tcp_a.recv_bytes().unwrap();
    let tcp_b_metrics: MetricsSnapshot = server.join().unwrap();

    assert_eq!(mem_a.metrics(), tcp_a.metrics(), "sender-side parity");
    assert_eq!(mem_b.metrics(), tcp_b_metrics, "receiver-side parity");
    // And the invariant that makes the accounting trustworthy at all:
    assert_eq!(mem_a.metrics().bytes_sent, mem_b.metrics().bytes_received);
}
