//! In-process channel pair backed by crossbeam MPSC queues.
//!
//! This is the default substrate for running the two protocol parties on two
//! threads of one process: same framing and byte accounting as TCP, zero
//! setup. See DESIGN.md — the semi-honest model cares about transcripts, not
//! physical separation, so measured traffic here equals measured traffic on
//! sockets.

use crate::channel::{Channel, MAX_FRAME_BYTES};
use crate::error::TransportError;
use crate::metrics::{ChannelMetrics, MetricsSnapshot};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// One endpoint of an in-memory duplex channel.
pub struct MemoryChannel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    metrics: Arc<ChannelMetrics>,
}

impl MemoryChannel {
    /// Shared handle to this endpoint's counters (usable from the spawning
    /// thread while the endpoint itself has moved into a worker thread).
    pub fn metrics_handle(&self) -> Arc<ChannelMetrics> {
        Arc::clone(&self.metrics)
    }
}

/// Creates a connected pair of in-memory endpoints.
///
/// Everything endpoint A sends, endpoint B receives, and vice versa. Each
/// endpoint has independent metrics; by symmetry
/// `a.bytes_sent == b.bytes_received` at every quiescent point.
pub fn duplex() -> (MemoryChannel, MemoryChannel) {
    let (a_to_b_tx, a_to_b_rx) = unbounded();
    let (b_to_a_tx, b_to_a_rx) = unbounded();
    let a = MemoryChannel {
        tx: a_to_b_tx,
        rx: b_to_a_rx,
        metrics: ChannelMetrics::new_shared(),
    };
    let b = MemoryChannel {
        tx: b_to_a_tx,
        rx: a_to_b_rx,
        metrics: ChannelMetrics::new_shared(),
    };
    (a, b)
}

impl Channel for MemoryChannel {
    fn send_bytes(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        if payload.len() as u64 > MAX_FRAME_BYTES {
            return Err(TransportError::FrameTooLarge {
                announced: payload.len() as u64,
                limit: MAX_FRAME_BYTES,
            });
        }
        self.tx
            .send(payload.to_vec())
            .map_err(|_| TransportError::Disconnected)?;
        self.metrics.record_send(payload.len() as u64);
        Ok(())
    }

    fn recv_bytes(&mut self) -> Result<Vec<u8>, TransportError> {
        let payload = self.rx.recv().map_err(|_| TransportError::Disconnected)?;
        self.metrics.record_recv(payload.len() as u64);
        Ok(payload)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn note_batch_sent(&mut self, items: u64) {
        self.metrics.note_batch_send(items);
    }

    fn note_batch_received(&mut self, items: u64) {
        self.metrics.note_batch_recv(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireEncode;
    use crate::FRAME_OVERHEAD_BYTES;
    use ppds_bigint::BigUint;

    #[test]
    fn ping_pong() {
        let (mut a, mut b) = duplex();
        a.send(&42u64).unwrap();
        assert_eq!(b.recv::<u64>().unwrap(), 42);
        b.send(&BigUint::from_u64(7)).unwrap();
        assert_eq!(a.recv::<BigUint>().unwrap(), BigUint::from_u64(7));
    }

    #[test]
    fn metrics_are_symmetric() {
        let (mut a, mut b) = duplex();
        a.send(&vec![1u64, 2, 3]).unwrap();
        let _ = b.recv::<Vec<u64>>().unwrap();
        let (ma, mb) = (a.metrics(), b.metrics());
        assert_eq!(ma.bytes_sent, mb.bytes_received);
        assert_eq!(ma.messages_sent, 1);
        assert_eq!(mb.messages_received, 1);
        assert_eq!(ma.bytes_received, 0);
    }

    #[test]
    fn byte_accounting_exact() {
        let (mut a, mut b) = duplex();
        let payload = 5u64.encode_to_vec();
        a.send_bytes(&payload).unwrap();
        let _ = b.recv_bytes().unwrap();
        assert_eq!(a.metrics().bytes_sent, 8 + FRAME_OVERHEAD_BYTES);
    }

    #[test]
    fn disconnect_reported() {
        let (mut a, b) = duplex();
        drop(b);
        assert!(matches!(a.send(&1u64), Err(TransportError::Disconnected)));
        assert!(matches!(a.recv::<u64>(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn messages_are_ordered_and_buffered() {
        let (mut a, mut b) = duplex();
        for i in 0..100u64 {
            a.send(&i).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(b.recv::<u64>().unwrap(), i);
        }
    }

    #[test]
    fn threads_can_run_both_ends() {
        let (mut a, mut b) = duplex();
        let handle = std::thread::spawn(move || {
            let x: u64 = b.recv().unwrap();
            b.send(&(x + 1)).unwrap();
            b.metrics()
        });
        a.send(&41u64).unwrap();
        assert_eq!(a.recv::<u64>().unwrap(), 42);
        let mb = handle.join().unwrap();
        assert_eq!(mb.messages_sent, 1);
        assert_eq!(mb.messages_received, 1);
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut a, _b) = duplex();
        let huge = vec![0u8; (MAX_FRAME_BYTES + 1) as usize];
        assert!(matches!(
            a.send_bytes(&huge),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn wrong_type_decode_fails_cleanly() {
        let (mut a, mut b) = duplex();
        a.send(&7u32).unwrap();
        assert!(b.recv::<u64>().is_err());
    }

    #[test]
    fn batch_is_one_round_many_messages() {
        let (mut a, mut b) = duplex();
        let items: Vec<u64> = (0..50).collect();
        a.send_batch(&items).unwrap();
        let got: Vec<u64> = b.recv_batch().unwrap();
        assert_eq!(got, items);
        let (ma, mb) = (a.metrics(), b.metrics());
        assert_eq!(ma.messages_sent, 50);
        assert_eq!(ma.rounds_sent, 1);
        assert_eq!(mb.messages_received, 50);
        assert_eq!(mb.rounds_received, 1);
        assert_eq!(ma.bytes_sent, mb.bytes_received);
        // The batch payload equals the Vec encoding: 4-byte count + items.
        assert_eq!(ma.bytes_sent, 4 + 50 * 8 + FRAME_OVERHEAD_BYTES);
    }

    #[test]
    fn unbatched_sends_keep_messages_equal_to_rounds() {
        let (mut a, mut b) = duplex();
        for i in 0..5u64 {
            a.send(&i).unwrap();
            let _ = b.recv::<u64>().unwrap();
        }
        assert_eq!(a.metrics().messages_sent, a.metrics().rounds_sent);
        assert_eq!(b.metrics().messages_received, b.metrics().rounds_received);
    }
}
