//! TCP transport: the same framed protocol over real sockets.
//!
//! Lets the two parties run as separate processes (see
//! `examples/hospitals_horizontal.rs --mode tcp`). Framing is a `u32`
//! little-endian payload length followed by the payload, matching the bytes
//! charged by [`crate::metrics::ChannelMetrics`] on the in-memory transport.

use crate::channel::{Channel, MAX_FRAME_BYTES};
use crate::error::TransportError;
use crate::metrics::{ChannelMetrics, MetricsSnapshot};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// One endpoint of a framed TCP connection.
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    metrics: Arc<ChannelMetrics>,
}

impl TcpChannel {
    /// Connects to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpChannel, TransportError> {
        let stream = TcpStream::connect(addr)?;
        TcpChannel::from_stream(stream)
    }

    /// Accepts one inbound connection from `listener`.
    pub fn accept(listener: &TcpListener) -> Result<TcpChannel, TransportError> {
        let (stream, _peer) = listener.accept()?;
        TcpChannel::from_stream(stream)
    }

    /// Wraps an established stream.
    pub fn from_stream(stream: TcpStream) -> Result<TcpChannel, TransportError> {
        stream.set_nodelay(true)?; // ping-pong protocols: don't batch
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(TcpChannel {
            reader,
            writer,
            metrics: ChannelMetrics::new_shared(),
        })
    }

    /// Shared handle to this endpoint's counters.
    pub fn metrics_handle(&self) -> Arc<ChannelMetrics> {
        Arc::clone(&self.metrics)
    }
}

impl Channel for TcpChannel {
    fn send_bytes(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        if payload.len() as u64 > MAX_FRAME_BYTES {
            return Err(TransportError::FrameTooLarge {
                announced: payload.len() as u64,
                limit: MAX_FRAME_BYTES,
            });
        }
        let len = payload.len() as u32;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.writer.flush()?;
        self.metrics.record_send(payload.len() as u64);
        Ok(())
    }

    fn recv_bytes(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut len_bytes = [0u8; 4];
        if let Err(e) = self.reader.read_exact(&mut len_bytes) {
            return Err(match e.kind() {
                std::io::ErrorKind::UnexpectedEof => TransportError::Disconnected,
                _ => TransportError::Io(e),
            });
        }
        let len = u32::from_le_bytes(len_bytes) as u64;
        if len > MAX_FRAME_BYTES {
            return Err(TransportError::FrameTooLarge {
                announced: len,
                limit: MAX_FRAME_BYTES,
            });
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload)?;
        self.metrics.record_recv(len);
        Ok(payload)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn note_batch_sent(&mut self, items: u64) {
        self.metrics.note_batch_send(items);
    }

    fn note_batch_received(&mut self, items: u64) {
        self.metrics.note_batch_recv(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppds_bigint::BigUint;

    fn loopback_pair() -> (TcpChannel, TcpChannel) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client_thread = std::thread::spawn(move || TcpChannel::connect(addr).expect("connect"));
        let server = TcpChannel::accept(&listener).expect("accept");
        let client = client_thread.join().expect("join");
        (server, client)
    }

    #[test]
    fn ping_pong_over_loopback() {
        let (mut server, mut client) = loopback_pair();
        client.send(&BigUint::from_u128(1 << 100)).unwrap();
        let got: BigUint = server.recv().unwrap();
        assert_eq!(got, BigUint::from_u128(1 << 100));
        server.send(&99u64).unwrap();
        assert_eq!(client.recv::<u64>().unwrap(), 99);
    }

    #[test]
    fn traffic_matches_memory_transport() {
        // Same payloads must be charged identically on both transports.
        let (mut ms, mut mc) = crate::memory::duplex();
        let (mut ts, mut tc) = loopback_pair();
        let payloads: Vec<Vec<u8>> = vec![vec![1; 10], vec![2; 1000], vec![]];
        for p in &payloads {
            mc.send_bytes(p).unwrap();
            ms.recv_bytes().unwrap();
            tc.send_bytes(p).unwrap();
            ts.recv_bytes().unwrap();
        }
        assert_eq!(mc.metrics().bytes_sent, tc.metrics().bytes_sent);
        assert_eq!(ms.metrics().bytes_received, ts.metrics().bytes_received);
    }

    #[test]
    fn disconnect_detected() {
        let (mut server, client) = loopback_pair();
        drop(client);
        assert!(matches!(
            server.recv_bytes(),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let (mut server, mut client) = loopback_pair();
        client.send_bytes(&[]).unwrap();
        assert_eq!(server.recv_bytes().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_payload_roundtrip() {
        let (mut server, mut client) = loopback_pair();
        let big = vec![0xCD; 1 << 20];
        client.send_bytes(&big).unwrap();
        assert_eq!(server.recv_bytes().unwrap(), big);
    }

    #[test]
    fn batch_accounting_matches_memory_transport() {
        let (mut ms, mut mc) = crate::memory::duplex();
        let (mut ts, mut tc) = loopback_pair();
        let items: Vec<u64> = (0..32).collect();
        mc.send_batch(&items).unwrap();
        let _: Vec<u64> = ms.recv_batch().unwrap();
        tc.send_batch(&items).unwrap();
        let _: Vec<u64> = ts.recv_batch().unwrap();
        assert_eq!(mc.metrics(), tc.metrics(), "sender batch parity");
        assert_eq!(ms.metrics(), ts.metrics(), "receiver batch parity");
        assert_eq!(tc.metrics().rounds_sent, 1);
        assert_eq!(tc.metrics().messages_sent, 32);
    }
}
