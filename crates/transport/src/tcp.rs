//! TCP transport: the same framed protocol over real sockets.
//!
//! Lets the two parties run as separate processes (see
//! `examples/hospitals_horizontal.rs --mode tcp`). Framing is a `u32`
//! little-endian payload length followed by the payload, matching the bytes
//! charged by [`crate::metrics::ChannelMetrics`] on the in-memory transport.

use crate::channel::{Channel, MAX_FRAME_BYTES};
use crate::error::TransportError;
use crate::metrics::{ChannelMetrics, MetricsSnapshot};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// One endpoint of a framed TCP connection.
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    metrics: Arc<ChannelMetrics>,
}

impl TcpChannel {
    /// Connects to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpChannel, TransportError> {
        let stream = TcpStream::connect(addr)?;
        TcpChannel::from_stream(stream)
    }

    /// Connects to a listening peer, giving up with
    /// [`TransportError::Timeout`] after `timeout` instead of waiting for
    /// the OS connect deadline (minutes on a black-holed route).
    pub fn connect_timeout(
        addr: &SocketAddr,
        timeout: Duration,
    ) -> Result<TcpChannel, TransportError> {
        let stream = TcpStream::connect_timeout(addr, timeout).map_err(map_io_timeout)?;
        TcpChannel::from_stream(stream)
    }

    /// Accepts one inbound connection from `listener`.
    pub fn accept(listener: &TcpListener) -> Result<TcpChannel, TransportError> {
        let (stream, _peer) = listener.accept()?;
        TcpChannel::from_stream(stream)
    }

    /// Wraps an established stream.
    pub fn from_stream(stream: TcpStream) -> Result<TcpChannel, TransportError> {
        stream.set_nodelay(true)?; // ping-pong protocols: don't batch
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(TcpChannel {
            reader,
            writer,
            metrics: ChannelMetrics::new_shared(),
        })
    }

    /// Bounds every subsequent blocking read: once no byte arrives for
    /// `timeout`, [`Channel::recv_bytes`] returns
    /// [`TransportError::Timeout`] instead of hanging forever on a dead or
    /// stalled peer. `None` restores unbounded blocking reads.
    ///
    /// A fired timeout is **connection-fatal** — it may strike mid-frame,
    /// after part of a payload was consumed, so the stream position is no
    /// longer trustworthy. Callers must drop the channel; the server's
    /// handshake and session legs do exactly that.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// The remote endpoint's address.
    pub fn peer_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.reader.get_ref().peer_addr()?)
    }

    /// Shared handle to this endpoint's counters.
    pub fn metrics_handle(&self) -> Arc<ChannelMetrics> {
        Arc::clone(&self.metrics)
    }
}

/// Maps the two io error kinds the platforms use for expired read/connect
/// deadlines onto the typed [`TransportError::Timeout`].
fn map_io_timeout(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => TransportError::Timeout,
        _ => TransportError::Io(e),
    }
}

impl Channel for TcpChannel {
    fn send_bytes(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        if payload.len() as u64 > MAX_FRAME_BYTES {
            return Err(TransportError::FrameTooLarge {
                announced: payload.len() as u64,
                limit: MAX_FRAME_BYTES,
            });
        }
        let len = payload.len() as u32;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.writer.flush()?;
        self.metrics.record_send(payload.len() as u64);
        Ok(())
    }

    fn recv_bytes(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut len_bytes = [0u8; 4];
        if let Err(e) = self.reader.read_exact(&mut len_bytes) {
            return Err(match e.kind() {
                std::io::ErrorKind::UnexpectedEof => TransportError::Disconnected,
                _ => map_io_timeout(e),
            });
        }
        let len = u32::from_le_bytes(len_bytes) as u64;
        if len > MAX_FRAME_BYTES {
            return Err(TransportError::FrameTooLarge {
                announced: len,
                limit: MAX_FRAME_BYTES,
            });
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TransportError::Disconnected
            } else {
                map_io_timeout(e)
            }
        })?;
        self.metrics.record_recv(len);
        Ok(payload)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn note_batch_sent(&mut self, items: u64) {
        self.metrics.note_batch_send(items);
    }

    fn note_batch_received(&mut self, items: u64) {
        self.metrics.note_batch_recv(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppds_bigint::BigUint;

    fn loopback_pair() -> (TcpChannel, TcpChannel) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client_thread = std::thread::spawn(move || TcpChannel::connect(addr).expect("connect"));
        let server = TcpChannel::accept(&listener).expect("accept");
        let client = client_thread.join().expect("join");
        (server, client)
    }

    #[test]
    fn ping_pong_over_loopback() {
        let (mut server, mut client) = loopback_pair();
        client.send(&BigUint::from_u128(1 << 100)).unwrap();
        let got: BigUint = server.recv().unwrap();
        assert_eq!(got, BigUint::from_u128(1 << 100));
        server.send(&99u64).unwrap();
        assert_eq!(client.recv::<u64>().unwrap(), 99);
    }

    #[test]
    fn traffic_matches_memory_transport() {
        // Same payloads must be charged identically on both transports.
        let (mut ms, mut mc) = crate::memory::duplex();
        let (mut ts, mut tc) = loopback_pair();
        let payloads: Vec<Vec<u8>> = vec![vec![1; 10], vec![2; 1000], vec![]];
        for p in &payloads {
            mc.send_bytes(p).unwrap();
            ms.recv_bytes().unwrap();
            tc.send_bytes(p).unwrap();
            ts.recv_bytes().unwrap();
        }
        assert_eq!(mc.metrics().bytes_sent, tc.metrics().bytes_sent);
        assert_eq!(ms.metrics().bytes_received, ts.metrics().bytes_received);
    }

    #[test]
    fn disconnect_detected() {
        let (mut server, client) = loopback_pair();
        drop(client);
        assert!(matches!(
            server.recv_bytes(),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let (mut server, mut client) = loopback_pair();
        client.send_bytes(&[]).unwrap();
        assert_eq!(server.recv_bytes().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_payload_roundtrip() {
        let (mut server, mut client) = loopback_pair();
        let big = vec![0xCD; 1 << 20];
        client.send_bytes(&big).unwrap();
        assert_eq!(server.recv_bytes().unwrap(), big);
    }

    #[test]
    fn silent_peer_times_out_with_typed_error() {
        let (mut server, client) = loopback_pair();
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(60)))
            .unwrap();
        let start = std::time::Instant::now();
        assert!(matches!(server.recv_bytes(), Err(TransportError::Timeout)));
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        // A live peer after clearing the deadline still gets through.
        server.set_read_timeout(None).unwrap();
        let mut client = client;
        client.send(&7u64).unwrap();
        assert_eq!(server.recv::<u64>().unwrap(), 7);
    }

    #[test]
    fn timeout_mid_frame_is_detected() {
        let (mut server, mut client) = loopback_pair();
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(60)))
            .unwrap();
        // Send only the length header: the payload read must time out, not
        // hang and not report a clean disconnect.
        client.writer.write_all(&8u32.to_le_bytes()).unwrap();
        client.writer.flush().unwrap();
        assert!(matches!(server.recv_bytes(), Err(TransportError::Timeout)));
    }

    #[test]
    fn connect_timeout_reaches_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client_thread = std::thread::spawn(move || {
            TcpChannel::connect_timeout(&addr, std::time::Duration::from_secs(5)).expect("connect")
        });
        let mut server = TcpChannel::accept(&listener).expect("accept");
        let mut client = client_thread.join().expect("join");
        assert_eq!(client.peer_addr().unwrap(), addr);
        client.send(&1u64).unwrap();
        assert_eq!(server.recv::<u64>().unwrap(), 1);
    }

    #[test]
    fn batch_accounting_matches_memory_transport() {
        let (mut ms, mut mc) = crate::memory::duplex();
        let (mut ts, mut tc) = loopback_pair();
        let items: Vec<u64> = (0..32).collect();
        mc.send_batch(&items).unwrap();
        let _: Vec<u64> = ms.recv_batch().unwrap();
        tc.send_batch(&items).unwrap();
        let _: Vec<u64> = ts.recv_batch().unwrap();
        assert_eq!(mc.metrics(), tc.metrics(), "sender batch parity");
        assert_eq!(ms.metrics(), ts.metrics(), "receiver batch parity");
        assert_eq!(tc.metrics().rounds_sent, 1);
        assert_eq!(tc.metrics().messages_sent, 32);
    }
}
