//! The blocking channel interface protocols are written against.

use crate::error::TransportError;
use crate::metrics::MetricsSnapshot;
use crate::wire::{WireDecode, WireEncode};

/// A reliable, ordered, bidirectional message channel to the peer party.
///
/// Protocols are written as straight-line blocking code over this trait, so
/// the same protocol implementation runs over an in-memory pair
/// ([`crate::memory::duplex`]) for tests/benches and over TCP
/// ([`crate::tcp`]) for genuine two-process deployments.
pub trait Channel {
    /// Sends one framed message.
    fn send_bytes(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Blocks until the next framed message arrives.
    fn recv_bytes(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Traffic counters for this endpoint.
    fn metrics(&self) -> MetricsSnapshot;

    /// Sends a typed value using the [`crate::wire`] codec.
    fn send<T: WireEncode>(&mut self, value: &T) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        self.send_bytes(&value.encode_to_vec())
    }

    /// Receives a typed value; the payload must be exactly one `T`.
    fn recv<T: WireDecode>(&mut self) -> Result<T, TransportError>
    where
        Self: Sized,
    {
        let payload = self.recv_bytes()?;
        T::decode_exact(&payload)
    }
}

/// Hard cap on a single frame. Large enough for any ciphertext batch the
/// protocols send (a full 96-point × 4096-bit ciphertext vector is ~50 KiB),
/// small enough to catch stream corruption immediately.
pub const MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;
