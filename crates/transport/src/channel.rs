//! The blocking channel interface protocols are written against.

use crate::error::TransportError;
use crate::metrics::MetricsSnapshot;
use crate::wire::{self, Batch, WireDecode, WireEncode};

/// A reliable, ordered, bidirectional message channel to the peer party.
///
/// Protocols are written as straight-line blocking code over this trait, so
/// the same protocol implementation runs over an in-memory pair
/// ([`crate::memory::duplex`]) for tests/benches and over TCP
/// ([`crate::tcp`]) for genuine two-process deployments.
pub trait Channel {
    /// Sends one framed message.
    fn send_bytes(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Blocks until the next framed message arrives.
    fn recv_bytes(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Traffic counters for this endpoint.
    fn metrics(&self) -> MetricsSnapshot;

    /// Sends a typed value using the [`crate::wire`] codec.
    fn send<T: WireEncode>(&mut self, value: &T) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        self.send_bytes(&value.encode_to_vec())
    }

    /// Receives a typed value; the payload must be exactly one `T`.
    fn recv<T: WireDecode>(&mut self) -> Result<T, TransportError>
    where
        Self: Sized,
    {
        let payload = self.recv_bytes()?;
        T::decode_exact(&payload)
    }

    /// Sends `items` as one [`Batch`] wire frame: a single round on the
    /// link, charged as `items.len()` logical messages in the metrics.
    ///
    /// This is the round-batching primitive: a neighborhood query packs all
    /// of its candidate payloads into one frame instead of paying one
    /// round-trip per candidate.
    fn send_batch<T: WireEncode>(&mut self, items: &[T]) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        let mut payload = Vec::new();
        wire::encode_batch_items(items, &mut payload);
        self.send_bytes(&payload)?;
        self.note_batch_sent(items.len() as u64);
        Ok(())
    }

    /// Receives one [`Batch`] frame; the payload must be exactly one batch
    /// of `T`s. Charged as one round and `len` logical messages.
    fn recv_batch<T: WireDecode>(&mut self) -> Result<Vec<T>, TransportError>
    where
        Self: Sized,
    {
        let payload = self.recv_bytes()?;
        let batch = Batch::<T>::decode_exact(&payload)?;
        self.note_batch_received(batch.len() as u64);
        Ok(batch.into_inner())
    }

    /// Metrics hook: reclassifies the most recent send as a batch of
    /// `items` logical messages. Implementations with counters override
    /// this; the default is a no-op so metric-less channels stay valid.
    fn note_batch_sent(&mut self, _items: u64) {}

    /// Receive-side counterpart of [`Channel::note_batch_sent`].
    fn note_batch_received(&mut self, _items: u64) {}
}

/// Hard cap on a single frame. Large enough for any ciphertext batch the
/// protocols send (a full 96-point × 4096-bit ciphertext vector is ~50 KiB),
/// small enough to catch stream corruption immediately.
pub const MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;
