#![warn(missing_docs)]

//! Two-party message transport for the SMC protocols.
//!
//! Every protocol in the paper is evaluated by its *communication
//! complexity* (§4.2.2, §4.3.2, §5.1), so this crate treats the wire as a
//! first-class measured object:
//!
//! * [`Channel`] — the blocking send/recv interface all protocols are
//!   written against, with typed helpers built on the [`wire`] codec and
//!   round-batching primitives ([`Channel::send_batch`] /
//!   [`Channel::recv_batch`]) that ship many logical messages as one
//!   latency-paying wire frame ([`Batch`]),
//! * [`memory::duplex`] — an in-process channel pair (crossbeam-backed) used
//!   to run Alice and Bob on two threads,
//! * [`tcp`] — the same framing over real sockets, for running the two
//!   parties as separate processes,
//! * [`ChannelMetrics`] — lock-free per-direction byte, message, and
//!   **round** counters (a batch frame is many messages but one round); the
//!   experiment harness reads these to regenerate the paper's complexity
//!   tables with measured constants,
//! * [`CostModel`] — turns counted bytes/rounds into modeled wall-clock
//!   time for a given latency/bandwidth, so experiments can report network
//!   cost independently of where they actually ran.
//!
//! Framing: every message is a `u32` little-endian length followed by the
//! payload. The 4 header bytes are charged to the metrics on both
//! transports, so in-memory and TCP runs report identical traffic.

pub mod channel;
pub mod error;
pub mod memory;
pub mod metrics;
pub mod tcp;
pub mod wire;

pub use channel::Channel;
pub use error::TransportError;
pub use memory::{duplex, MemoryChannel};
pub use metrics::{ChannelMetrics, CostModel, MetricsSnapshot};
pub use wire::{Batch, Reader, WireDecode, WireEncode};

/// Bytes charged per message for framing (u32 length prefix).
pub const FRAME_OVERHEAD_BYTES: u64 = 4;
