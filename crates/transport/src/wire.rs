//! Minimal wire codec for protocol values.
//!
//! Hand-rolled rather than serde-based so that every byte on the wire is
//! visible and attributable: the experiment harness reports measured message
//! sizes against the paper's `c1`/`c2` bit-width parameters, which requires
//! an encoding with no hidden framing. All integers are little-endian;
//! variable-length values carry a `u32` length prefix.

use crate::error::TransportError;
use ppds_bigint::{BigInt, BigUint, Sign};

/// Types that can be serialized into a wire payload.
pub trait WireEncode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Encodes into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can be deserialized from a wire payload.
pub trait WireDecode: Sized {
    /// Reads one value from the reader, advancing it.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError>;

    /// Decodes a value that must consume the whole payload.
    fn decode_exact(payload: &[u8]) -> Result<Self, TransportError> {
        let mut reader = Reader::new(payload);
        let value = Self::decode(&mut reader)?;
        if !reader.is_empty() {
            return Err(TransportError::decode(
                std::any::type_name::<Self>(),
                format!("{} trailing bytes", reader.remaining()),
            ));
        }
        Ok(value)
    }
}

/// Cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        if self.remaining() < n {
            return Err(TransportError::decode(
                "bytes",
                format!("wanted {n}, have {}", self.remaining()),
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32_le(&mut self) -> Result<u32, TransportError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("len 4")))
    }

    fn u64_le(&mut self) -> Result<u64, TransportError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("len 8")))
    }
}

impl WireEncode for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
}

impl WireDecode for () {
    fn decode(_reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        Ok(())
    }
}

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl WireDecode for bool {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        match reader.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(TransportError::decode("bool", format!("byte {other}"))),
        }
    }
}

impl WireEncode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl WireDecode for u8 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        Ok(reader.take(1)?[0])
    }
}

impl WireEncode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for u32 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        reader.u32_le()
    }
}

impl WireEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for u64 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        reader.u64_le()
    }
}

impl WireEncode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for i64 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        Ok(reader.u64_le()? as i64)
    }
}

impl WireEncode for u128 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for u128 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let bytes = reader.take(16)?;
        Ok(u128::from_le_bytes(bytes.try_into().expect("len 16")))
    }
}

impl WireEncode for i128 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for i128 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let bytes = reader.take(16)?;
        Ok(i128::from_le_bytes(bytes.try_into().expect("len 16")))
    }
}

impl WireEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl WireDecode for usize {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let v = reader.u64_le()?;
        usize::try_from(v)
            .map_err(|_| TransportError::decode("usize", format!("{v} overflows usize")))
    }
}

impl WireEncode for BigUint {
    fn encode(&self, out: &mut Vec<u8>) {
        let bytes = self.to_bytes_le();
        (bytes.len() as u32).encode(out);
        out.extend_from_slice(&bytes);
    }
}

impl WireDecode for BigUint {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let len = reader.u32_le()? as usize;
        let bytes = reader.take(len)?;
        Ok(BigUint::from_bytes_le(bytes))
    }
}

impl WireEncode for BigInt {
    fn encode(&self, out: &mut Vec<u8>) {
        let sign_byte = match self.sign() {
            Sign::Negative => 2u8,
            Sign::Zero => 0,
            Sign::Positive => 1,
        };
        out.push(sign_byte);
        self.magnitude().encode(out);
    }
}

impl WireDecode for BigInt {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let sign = match reader.take(1)?[0] {
            0 => Sign::Zero,
            1 => Sign::Positive,
            2 => Sign::Negative,
            other => {
                return Err(TransportError::decode(
                    "BigInt sign",
                    format!("byte {other}"),
                ))
            }
        };
        let magnitude = BigUint::decode(reader)?;
        if sign == Sign::Zero && !magnitude.is_zero() {
            return Err(TransportError::decode(
                "BigInt",
                "zero sign with nonzero magnitude",
            ));
        }
        Ok(BigInt::from_biguint(sign, magnitude))
    }
}

/// A round-batched wire frame: a length-prefixed vector of payloads shipped
/// as **one** framed message.
///
/// The encoding is identical to `Vec<T>` (`u32` item count followed by the
/// items), so the batch adds only the 4-byte count on top of the payloads it
/// carries. What distinguishes a `Batch` is the accounting contract:
/// [`crate::Channel::send_batch`]/[`crate::Channel::recv_batch`] charge it as
/// `items.len()` logical messages but a **single wire round**, which is how
/// the protocol stack turns `O(candidates)` ping-pong round-trips per
/// neighborhood query into `O(1)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch<T>(pub Vec<T>);

impl<T> Batch<T> {
    /// Number of payloads in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the batch carries no payloads.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes the batch, yielding its payloads.
    pub fn into_inner(self) -> Vec<T> {
        self.0
    }
}

impl<T> From<Vec<T>> for Batch<T> {
    fn from(items: Vec<T>) -> Self {
        Batch(items)
    }
}

impl<T: WireEncode> WireEncode for Batch<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_batch_items(&self.0, out);
    }
}

impl<T: WireDecode> WireDecode for Batch<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        Ok(Batch(Vec::<T>::decode(reader)?))
    }
}

/// Encodes a slice in the `Batch`/`Vec` wire format (`u32` count + items).
pub(crate) fn encode_batch_items<T: WireEncode>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u32).encode(out);
    for item in items {
        item.encode(out);
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let len = reader.u32_le()? as usize;
        // Guard against hostile lengths: each element needs ≥ 1 byte.
        if len > reader.remaining() {
            return Err(TransportError::decode(
                "Vec",
                format!(
                    "announced {len} items with {} bytes left",
                    reader.remaining()
                ),
            ));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(reader)?);
        }
        Ok(items)
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        Ok((A::decode(reader)?, B::decode(reader)?))
    }
}

impl<A: WireEncode, B: WireEncode, C: WireEncode> WireEncode for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}

impl<A: WireDecode, B: WireDecode, C: WireDecode> WireDecode for (A, B, C) {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        Ok((A::decode(reader)?, B::decode(reader)?, C::decode(reader)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode_to_vec();
        let back = T::decode_exact(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(i64::MIN);
        roundtrip(12345usize);
        roundtrip(u128::MAX);
        roundtrip(0u128);
        roundtrip(i128::MIN);
        roundtrip(-7i128);
    }

    #[test]
    fn wide_integers_are_fixed_width() {
        // Field-element frames rely on a fixed 16-byte encoding with no
        // length prefix — a k-element vector is exactly 4 + 16k bytes.
        assert_eq!(1u128.encode_to_vec().len(), 16);
        assert_eq!((-1i128).encode_to_vec().len(), 16);
        assert_eq!(vec![1u128; 8].encode_to_vec().len(), 4 + 16 * 8);
    }

    #[test]
    fn biguint_roundtrips() {
        roundtrip(BigUint::zero());
        roundtrip(BigUint::from_u64(1));
        roundtrip(BigUint::from_u128(u128::MAX));
        roundtrip(BigUint::from_bytes_le(&[0xAB; 100]));
    }

    #[test]
    fn bigint_roundtrips() {
        roundtrip(BigInt::zero());
        roundtrip(BigInt::from_i64(-1));
        roundtrip(BigInt::from_i64(i64::MAX));
        roundtrip(BigInt::from_i128(i128::MIN + 1));
    }

    #[test]
    fn collections_and_tuples() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![BigUint::from_u64(9); 4]);
        roundtrip((5u64, BigUint::from_u64(7)));
        roundtrip((true, -9i64, BigUint::from_u64(1)));
    }

    #[test]
    fn batch_roundtrips_and_matches_vec_encoding() {
        roundtrip(Batch(vec![1u64, 2, 3]));
        roundtrip(Batch::<u64>(Vec::new()));
        roundtrip(Batch(vec![vec![BigUint::from_u64(7); 3]; 2]));
        // A batch frame is byte-identical to the equivalent Vec payload, so
        // the codec adds zero overhead beyond the 4-byte count.
        let items = vec![(true, 9u64), (false, 0)];
        assert_eq!(Batch(items.clone()).encode_to_vec(), items.encode_to_vec());
        let batch = Batch::from(items);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.into_inner().len(), 2);
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = 7u64.encode_to_vec();
        bytes.push(0);
        assert!(u64::decode_exact(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let bytes = BigUint::from_u64(u64::MAX).encode_to_vec();
        assert!(BigUint::decode_exact(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn rejects_bad_bool_and_sign() {
        assert!(bool::decode_exact(&[7]).is_err());
        assert!(BigInt::decode_exact(&[9, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn rejects_hostile_vec_length() {
        // Announces u32::MAX items with an empty body.
        let bytes = u32::MAX.encode_to_vec();
        assert!(Vec::<u64>::decode_exact(&bytes).is_err());
    }

    #[test]
    fn zero_sign_with_nonzero_magnitude_rejected() {
        let mut bytes = vec![0u8]; // Sign::Zero
        BigUint::from_u64(5).encode(&mut bytes);
        assert!(BigInt::decode_exact(&bytes).is_err());
    }

    #[test]
    fn encoding_is_minimal_for_biguint() {
        // Length prefix (4) + minimal LE bytes: 1-byte value -> 5 bytes total.
        assert_eq!(BigUint::from_u64(200).encode_to_vec().len(), 5);
        assert_eq!(BigUint::zero().encode_to_vec().len(), 4);
    }
}
