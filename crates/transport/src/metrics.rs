//! Per-channel traffic accounting and modeled network cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lock-free counters shared by a channel endpoint and whoever wants to read
/// its traffic. Bytes include the 4-byte frame header per message.
#[derive(Debug, Default)]
pub struct ChannelMetrics {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
}

impl ChannelMetrics {
    /// Fresh shared counters.
    pub fn new_shared() -> Arc<ChannelMetrics> {
        Arc::new(ChannelMetrics::default())
    }

    /// Records an outbound message of `payload_bytes` payload.
    pub fn record_send(&self, payload_bytes: u64) {
        self.bytes_sent.fetch_add(
            payload_bytes + crate::FRAME_OVERHEAD_BYTES,
            Ordering::Relaxed,
        );
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an inbound message of `payload_bytes` payload.
    pub fn record_recv(&self, payload_bytes: u64) {
        self.bytes_received.fetch_add(
            payload_bytes + crate::FRAME_OVERHEAD_BYTES,
            Ordering::Relaxed,
        );
        self.messages_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (used between experiment repetitions).
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of a channel's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Bytes sent by this endpoint (payload + framing).
    pub bytes_sent: u64,
    /// Bytes received by this endpoint.
    pub bytes_received: u64,
    /// Messages sent by this endpoint.
    pub messages_sent: u64,
    /// Messages received by this endpoint.
    pub messages_received: u64,
}

impl MetricsSnapshot {
    /// Total traffic in both directions, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Total message count in both directions.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent + self.messages_received
    }

    /// Difference between two snapshots of the same counters
    /// (`later - self`), for scoping traffic to a protocol phase.
    pub fn delta(&self, later: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_sent: later.bytes_sent - self.bytes_sent,
            bytes_received: later.bytes_received - self.bytes_received,
            messages_sent: later.messages_sent - self.messages_sent,
            messages_received: later.messages_received - self.messages_received,
        }
    }

    /// Componentwise sum with another snapshot: the aggregation the engine
    /// uses to roll one job's (or one fleet's) sessions into a single
    /// traffic figure.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            messages_sent: self.messages_sent + other.messages_sent,
            messages_received: self.messages_received + other.messages_received,
        }
    }
}

impl std::ops::Add for MetricsSnapshot {
    type Output = MetricsSnapshot;

    fn add(self, other: MetricsSnapshot) -> MetricsSnapshot {
        self.merged(&other)
    }
}

impl std::ops::AddAssign for MetricsSnapshot {
    fn add_assign(&mut self, other: MetricsSnapshot) {
        *self = self.merged(&other);
    }
}

impl std::iter::Sum for MetricsSnapshot {
    fn sum<I: Iterator<Item = MetricsSnapshot>>(iter: I) -> MetricsSnapshot {
        iter.fold(MetricsSnapshot::default(), |acc, s| acc.merged(&s))
    }
}

impl<'a> std::iter::Sum<&'a MetricsSnapshot> for MetricsSnapshot {
    fn sum<I: Iterator<Item = &'a MetricsSnapshot>>(iter: I) -> MetricsSnapshot {
        iter.fold(MetricsSnapshot::default(), |acc, s| acc.merged(s))
    }
}

/// Models the wall-clock cost of a transcript on a given link.
///
/// Each message pays one latency hit (the protocols here are strictly
/// ping-pong, so messages never pipeline); payload pays bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl CostModel {
    /// A 1 Gbit/s LAN with 0.2 ms one-way latency.
    pub fn lan() -> CostModel {
        CostModel {
            latency: Duration::from_micros(200),
            bandwidth_bytes_per_sec: 125_000_000,
        }
    }

    /// A 100 Mbit/s WAN with 20 ms one-way latency (two hospitals on the
    /// public internet — the paper's motivating deployment).
    pub fn wan() -> CostModel {
        CostModel {
            latency: Duration::from_millis(20),
            bandwidth_bytes_per_sec: 12_500_000,
        }
    }

    /// Modeled transfer time for a transcript.
    pub fn estimate(&self, snapshot: &MetricsSnapshot) -> Duration {
        let latency_total = self.latency * snapshot.total_messages() as u32;
        let transfer_secs = snapshot.total_bytes() as f64 / self.bandwidth_bytes_per_sec as f64;
        latency_total + Duration::from_secs_f64(transfer_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_with_frame_overhead() {
        let m = ChannelMetrics::new_shared();
        m.record_send(100);
        m.record_send(50);
        m.record_recv(10);
        let s = m.snapshot();
        assert_eq!(s.bytes_sent, 150 + 2 * crate::FRAME_OVERHEAD_BYTES);
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.bytes_received, 10 + crate::FRAME_OVERHEAD_BYTES);
        assert_eq!(s.messages_received, 1);
        assert_eq!(s.total_bytes(), s.bytes_sent + s.bytes_received);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn reset_zeroes_counters() {
        let m = ChannelMetrics::new_shared();
        m.record_send(5);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn delta_scopes_a_phase() {
        let m = ChannelMetrics::new_shared();
        m.record_send(10);
        let before = m.snapshot();
        m.record_send(20);
        m.record_recv(30);
        let after = m.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.messages_sent, 1);
        assert_eq!(d.bytes_sent, 20 + crate::FRAME_OVERHEAD_BYTES);
        assert_eq!(d.messages_received, 1);
    }

    #[test]
    fn snapshots_aggregate_componentwise() {
        let a = MetricsSnapshot {
            bytes_sent: 10,
            bytes_received: 20,
            messages_sent: 1,
            messages_received: 2,
        };
        let b = MetricsSnapshot {
            bytes_sent: 5,
            bytes_received: 7,
            messages_sent: 3,
            messages_received: 4,
        };
        let sum = a + b;
        assert_eq!(sum.bytes_sent, 15);
        assert_eq!(sum.bytes_received, 27);
        assert_eq!(sum.messages_sent, 4);
        assert_eq!(sum.messages_received, 6);

        let mut acc = MetricsSnapshot::default();
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
        assert_eq!([a, b].iter().sum::<MetricsSnapshot>(), sum);
        assert_eq!(vec![a, b].into_iter().sum::<MetricsSnapshot>(), sum);
    }

    #[test]
    fn cost_model_estimates() {
        let snapshot = MetricsSnapshot {
            bytes_sent: 1_000_000,
            bytes_received: 1_000_000,
            messages_sent: 5,
            messages_received: 5,
        };
        let lan = CostModel::lan().estimate(&snapshot);
        let wan = CostModel::wan().estimate(&snapshot);
        assert!(wan > lan);
        // WAN: 10 msgs * 20ms = 200ms latency + 2MB / 12.5MB/s = 160ms
        let expect = Duration::from_millis(200) + Duration::from_millis(160);
        let diff = wan.abs_diff(expect);
        assert!(diff < Duration::from_millis(1), "wan = {wan:?}");
    }
}
