//! Per-channel traffic accounting and modeled network cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lock-free counters shared by a channel endpoint and whoever wants to read
/// its traffic. Bytes include the 4-byte frame header per message.
///
/// Two message-shaped quantities are tracked per direction:
///
/// * **messages** — logical protocol payloads. A plain send is one message;
///   a batch frame of `k` payloads counts `k` messages, so the figure is
///   comparable between batched and unbatched runs of the same protocol.
/// * **rounds** — wire frames, i.e. latency-paying network hops. A plain
///   send is one round; a batch frame of any size is one round. This is the
///   quantity the [`CostModel`] charges latency on, and the one round
///   batching collapses from `O(candidates)` to `O(1)` per query.
///
/// For unbatched traffic the two coincide (`messages == rounds`).
#[derive(Debug, Default)]
pub struct ChannelMetrics {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    rounds_sent: AtomicU64,
    rounds_received: AtomicU64,
}

impl ChannelMetrics {
    /// Fresh shared counters.
    pub fn new_shared() -> Arc<ChannelMetrics> {
        Arc::new(ChannelMetrics::default())
    }

    /// Records an outbound message of `payload_bytes` payload.
    pub fn record_send(&self, payload_bytes: u64) {
        self.bytes_sent.fetch_add(
            payload_bytes + crate::FRAME_OVERHEAD_BYTES,
            Ordering::Relaxed,
        );
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.rounds_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an inbound message of `payload_bytes` payload.
    pub fn record_recv(&self, payload_bytes: u64) {
        self.bytes_received.fetch_add(
            payload_bytes + crate::FRAME_OVERHEAD_BYTES,
            Ordering::Relaxed,
        );
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.rounds_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Reclassifies the most recent recorded send as a batch frame carrying
    /// `items` logical messages: the round count stays at one, the logical
    /// message count becomes `max(items, 1)`.
    pub fn note_batch_send(&self, items: u64) {
        self.messages_sent
            .fetch_add(items.saturating_sub(1), Ordering::Relaxed);
    }

    /// Receive-side counterpart of [`ChannelMetrics::note_batch_send`].
    pub fn note_batch_recv(&self, items: u64) {
        self.messages_received
            .fetch_add(items.saturating_sub(1), Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            rounds_sent: self.rounds_sent.load(Ordering::Relaxed),
            rounds_received: self.rounds_received.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (used between experiment repetitions).
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.rounds_sent.store(0, Ordering::Relaxed);
        self.rounds_received.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of a channel's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Bytes sent by this endpoint (payload + framing).
    pub bytes_sent: u64,
    /// Bytes received by this endpoint.
    pub bytes_received: u64,
    /// Logical messages sent by this endpoint (batch items count singly).
    pub messages_sent: u64,
    /// Logical messages received by this endpoint.
    pub messages_received: u64,
    /// Wire frames sent by this endpoint (a batch frame is one round).
    pub rounds_sent: u64,
    /// Wire frames received by this endpoint.
    pub rounds_received: u64,
}

impl MetricsSnapshot {
    /// Total traffic in both directions, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Total logical message count in both directions.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent + self.messages_received
    }

    /// Total wire rounds in both directions — the latency-paying figure.
    pub fn total_rounds(&self) -> u64 {
        self.rounds_sent + self.rounds_received
    }

    /// Difference between two snapshots of the same counters
    /// (`later - self`), for scoping traffic to a protocol phase.
    ///
    /// Subtraction saturates at zero per field: if the counters were reset
    /// (see [`ChannelMetrics::reset`]) between the two snapshots, the
    /// "later" values can be smaller than the earlier ones, and a phase
    /// delta of zero is the honest answer — not a debug-build panic or a
    /// wrapped astronomically large figure. Debug builds additionally
    /// assert the snapshots are ordered, since a reset mid-phase almost
    /// always indicates a measurement bug.
    pub fn delta(&self, later: &MetricsSnapshot) -> MetricsSnapshot {
        debug_assert!(
            later.bytes_sent >= self.bytes_sent
                && later.bytes_received >= self.bytes_received
                && later.messages_sent >= self.messages_sent
                && later.messages_received >= self.messages_received
                && later.rounds_sent >= self.rounds_sent
                && later.rounds_received >= self.rounds_received,
            "metrics went backwards between snapshots — was ChannelMetrics::reset \
             called mid-phase?"
        );
        MetricsSnapshot {
            bytes_sent: later.bytes_sent.saturating_sub(self.bytes_sent),
            bytes_received: later.bytes_received.saturating_sub(self.bytes_received),
            messages_sent: later.messages_sent.saturating_sub(self.messages_sent),
            messages_received: later
                .messages_received
                .saturating_sub(self.messages_received),
            rounds_sent: later.rounds_sent.saturating_sub(self.rounds_sent),
            rounds_received: later.rounds_received.saturating_sub(self.rounds_received),
        }
    }

    /// Componentwise sum with another snapshot: the aggregation the engine
    /// uses to roll one job's (or one fleet's) sessions into a single
    /// traffic figure.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            messages_sent: self.messages_sent + other.messages_sent,
            messages_received: self.messages_received + other.messages_received,
            rounds_sent: self.rounds_sent + other.rounds_sent,
            rounds_received: self.rounds_received + other.rounds_received,
        }
    }
}

impl std::ops::Add for MetricsSnapshot {
    type Output = MetricsSnapshot;

    fn add(self, other: MetricsSnapshot) -> MetricsSnapshot {
        self.merged(&other)
    }
}

impl std::ops::AddAssign for MetricsSnapshot {
    fn add_assign(&mut self, other: MetricsSnapshot) {
        *self = self.merged(&other);
    }
}

impl std::iter::Sum for MetricsSnapshot {
    fn sum<I: Iterator<Item = MetricsSnapshot>>(iter: I) -> MetricsSnapshot {
        iter.fold(MetricsSnapshot::default(), |acc, s| acc.merged(&s))
    }
}

impl<'a> std::iter::Sum<&'a MetricsSnapshot> for MetricsSnapshot {
    fn sum<I: Iterator<Item = &'a MetricsSnapshot>>(iter: I) -> MetricsSnapshot {
        iter.fold(MetricsSnapshot::default(), |acc, s| acc.merged(s))
    }
}

/// Models the wall-clock cost of a transcript on a given link.
///
/// Each wire **round** pays one latency hit (the protocols here are strictly
/// ping-pong, so frames never pipeline); payload pays bandwidth. Batching
/// many logical messages into one frame therefore cuts the latency term
/// without changing the bandwidth term.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl CostModel {
    /// A 1 Gbit/s LAN with 0.2 ms one-way latency.
    ///
    /// # Examples
    ///
    /// A vertical neighborhood query over 63 candidates costs 189 ping-pong
    /// rounds unbatched (3 per comparison) but only 3 when the whole
    /// candidate set rides one frame each way — same bytes, same logical
    /// messages. Even on a LAN the latency term dominates the unbatched run:
    ///
    /// ```
    /// use ppds_transport::{CostModel, MetricsSnapshot};
    ///
    /// let traffic = MetricsSnapshot {
    ///     bytes_sent: 2_000,
    ///     bytes_received: 2_000,
    ///     messages_sent: 126,
    ///     messages_received: 63,
    ///     ..Default::default()
    /// };
    /// let unbatched = MetricsSnapshot { rounds_sent: 126, rounds_received: 63, ..traffic };
    /// let batched = MetricsSnapshot { rounds_sent: 2, rounds_received: 1, ..traffic };
    /// let lan = CostModel::lan();
    /// assert!(lan.estimate(&unbatched) > lan.estimate(&batched) * 10);
    /// ```
    pub fn lan() -> CostModel {
        CostModel {
            latency: Duration::from_micros(200),
            bandwidth_bytes_per_sec: 125_000_000,
        }
    }

    /// A 100 Mbit/s WAN with 20 ms one-way latency (two hospitals on the
    /// public internet — the paper's motivating deployment).
    ///
    /// # Examples
    ///
    /// On a WAN the batched-vs-unbatched delta is the whole ballgame: the
    /// 189-round query above models at ~3.8 s of pure latency, the 3-round
    /// batched equivalent at ~60 ms:
    ///
    /// ```
    /// use ppds_transport::{CostModel, MetricsSnapshot};
    /// use std::time::Duration;
    ///
    /// let unbatched = MetricsSnapshot {
    ///     rounds_sent: 126,
    ///     rounds_received: 63,
    ///     ..Default::default()
    /// };
    /// let batched = MetricsSnapshot { rounds_sent: 2, rounds_received: 1, ..Default::default() };
    /// let wan = CostModel::wan();
    /// assert_eq!(wan.estimate(&unbatched), Duration::from_millis(20) * 189);
    /// assert_eq!(wan.estimate(&batched), Duration::from_millis(20) * 3);
    /// ```
    pub fn wan() -> CostModel {
        CostModel {
            latency: Duration::from_millis(20),
            bandwidth_bytes_per_sec: 12_500_000,
        }
    }

    /// Modeled transfer time for a transcript: one latency hit per wire
    /// round plus payload over bandwidth.
    pub fn estimate(&self, snapshot: &MetricsSnapshot) -> Duration {
        let latency_total = self.latency * snapshot.total_rounds() as u32;
        let transfer_secs = snapshot.total_bytes() as f64 / self.bandwidth_bytes_per_sec as f64;
        latency_total + Duration::from_secs_f64(transfer_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_with_frame_overhead() {
        let m = ChannelMetrics::new_shared();
        m.record_send(100);
        m.record_send(50);
        m.record_recv(10);
        let s = m.snapshot();
        assert_eq!(s.bytes_sent, 150 + 2 * crate::FRAME_OVERHEAD_BYTES);
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.rounds_sent, 2);
        assert_eq!(s.bytes_received, 10 + crate::FRAME_OVERHEAD_BYTES);
        assert_eq!(s.messages_received, 1);
        assert_eq!(s.rounds_received, 1);
        assert_eq!(s.total_bytes(), s.bytes_sent + s.bytes_received);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_rounds(), 3);
    }

    #[test]
    fn batch_frames_count_one_round_many_messages() {
        let m = ChannelMetrics::new_shared();
        m.record_send(1000);
        m.note_batch_send(64);
        m.record_recv(1000);
        m.note_batch_recv(64);
        let s = m.snapshot();
        assert_eq!(s.messages_sent, 64);
        assert_eq!(s.rounds_sent, 1);
        assert_eq!(s.messages_received, 64);
        assert_eq!(s.rounds_received, 1);
        // An empty batch still occupies one frame and one logical message.
        m.record_send(4);
        m.note_batch_send(0);
        assert_eq!(m.snapshot().messages_sent, 65);
        assert_eq!(m.snapshot().rounds_sent, 2);
    }

    #[test]
    fn reset_zeroes_counters() {
        let m = ChannelMetrics::new_shared();
        m.record_send(5);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn delta_scopes_a_phase() {
        let m = ChannelMetrics::new_shared();
        m.record_send(10);
        let before = m.snapshot();
        m.record_send(20);
        m.record_recv(30);
        let after = m.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.messages_sent, 1);
        assert_eq!(d.rounds_sent, 1);
        assert_eq!(d.bytes_sent, 20 + crate::FRAME_OVERHEAD_BYTES);
        assert_eq!(d.messages_received, 1);
        assert_eq!(d.rounds_received, 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "metrics went backwards"))]
    fn delta_across_a_reset_saturates_instead_of_wrapping() {
        let m = ChannelMetrics::new_shared();
        m.record_send(100);
        let before = m.snapshot();
        m.reset();
        m.record_send(5);
        let after = m.snapshot();
        // Debug builds flag the mid-phase reset loudly; release builds
        // saturate to zero rather than wrapping to ~u64::MAX.
        let d = before.delta(&after);
        assert_eq!(d.bytes_sent, 0);
        assert_eq!(d.messages_sent, 0);
        assert_eq!(d.rounds_sent, 0);
    }

    #[test]
    fn snapshots_aggregate_componentwise() {
        let a = MetricsSnapshot {
            bytes_sent: 10,
            bytes_received: 20,
            messages_sent: 1,
            messages_received: 2,
            rounds_sent: 1,
            rounds_received: 2,
        };
        let b = MetricsSnapshot {
            bytes_sent: 5,
            bytes_received: 7,
            messages_sent: 3,
            messages_received: 4,
            rounds_sent: 2,
            rounds_received: 3,
        };
        let sum = a + b;
        assert_eq!(sum.bytes_sent, 15);
        assert_eq!(sum.bytes_received, 27);
        assert_eq!(sum.messages_sent, 4);
        assert_eq!(sum.messages_received, 6);
        assert_eq!(sum.rounds_sent, 3);
        assert_eq!(sum.rounds_received, 5);

        let mut acc = MetricsSnapshot::default();
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
        assert_eq!([a, b].iter().sum::<MetricsSnapshot>(), sum);
        assert_eq!(vec![a, b].into_iter().sum::<MetricsSnapshot>(), sum);
    }

    #[test]
    fn cost_model_estimates() {
        let snapshot = MetricsSnapshot {
            bytes_sent: 1_000_000,
            bytes_received: 1_000_000,
            messages_sent: 5,
            messages_received: 5,
            rounds_sent: 5,
            rounds_received: 5,
        };
        let lan = CostModel::lan().estimate(&snapshot);
        let wan = CostModel::wan().estimate(&snapshot);
        assert!(wan > lan);
        // WAN: 10 rounds * 20ms = 200ms latency + 2MB / 12.5MB/s = 160ms
        let expect = Duration::from_millis(200) + Duration::from_millis(160);
        let diff = wan.abs_diff(expect);
        assert!(diff < Duration::from_millis(1), "wan = {wan:?}");
    }

    #[test]
    fn cost_model_charges_rounds_not_messages() {
        // Same bytes and logical messages, 10x fewer rounds: the latency
        // term must shrink accordingly.
        let unbatched = MetricsSnapshot {
            bytes_sent: 10_000,
            bytes_received: 10_000,
            messages_sent: 100,
            messages_received: 100,
            rounds_sent: 100,
            rounds_received: 100,
        };
        let batched = MetricsSnapshot {
            rounds_sent: 10,
            rounds_received: 10,
            ..unbatched
        };
        let wan = CostModel::wan();
        let slow = wan.estimate(&unbatched);
        let fast = wan.estimate(&batched);
        assert!(
            slow.as_secs_f64() / fast.as_secs_f64() > 8.0,
            "{slow:?} vs {fast:?}"
        );
    }
}
