//! Transport error type.

use std::fmt;

/// Errors raised while exchanging protocol messages.
#[derive(Debug)]
pub enum TransportError {
    /// The peer hung up (channel closed / connection reset).
    Disconnected,
    /// Underlying socket error.
    Io(std::io::Error),
    /// A received payload could not be decoded as the expected type.
    Decode {
        /// Type name the receiver expected.
        expected: &'static str,
        /// What went wrong while decoding.
        detail: String,
    },
    /// A frame announced a length above the hard cap (corrupt stream or
    /// protocol mismatch).
    FrameTooLarge {
        /// Length the frame header announced.
        announced: u64,
        /// The enforced cap.
        limit: u64,
    },
    /// A blocking read or connect exceeded its configured deadline (see
    /// [`crate::tcp::TcpChannel::set_read_timeout`]). Timeouts are
    /// connection-fatal: a deadline can fire mid-frame, leaving the stream
    /// desynchronized, so the only safe recovery is to drop the channel.
    Timeout,
}

impl TransportError {
    /// Convenience constructor for decode failures.
    pub fn decode(expected: &'static str, detail: impl Into<String>) -> Self {
        TransportError::Decode {
            expected,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Decode { expected, detail } => {
                write!(f, "failed to decode {expected}: {detail}")
            }
            TransportError::FrameTooLarge { announced, limit } => {
                write!(f, "frame of {announced} bytes exceeds limit {limit}")
            }
            TransportError::Timeout => write!(f, "peer did not answer within the read deadline"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}
