//! Distributions and range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A way of producing values of `T` from random bits.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The canonical uniform distribution: integers over their whole range,
/// floats in `[0, 1)`, fair-coin booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <StandardUniform as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`crate::Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, width)` without modulo bias (Lemire's method with
/// a rejection fallback on the biased strip).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return rng.next_u64() & (width - 1);
    }
    // The biased strip has size 2^64 mod width; reject samples landing in it.
    let zone = u64::MAX - (u64::MAX - width + 1) % width;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (width as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, width) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as $wide).wrapping_sub(start as $wide) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(uniform_below(rng, width + 1) as $wide) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = StandardUniform.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}
