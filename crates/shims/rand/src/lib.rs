//! Offline stand-in for the `rand` crate, exposing exactly the API subset
//! this workspace uses: the [`Rng`]/[`RngCore`] traits with `random` /
//! `random_range`, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads. It is **not** a
//! cryptographically secure generator; the workspace's security arguments
//! treat RNG quality as an orthogonal, swappable concern (the real `rand`
//! crate's `StdRng` drops back in without code changes once the build
//! environment has registry access).

pub mod distr;
pub mod rngs;
pub mod seq;

pub use distr::{Distribution, SampleRange, StandardUniform};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a canonical uniform distribution
    /// (integers over their full range, `f64`/`f32` in `[0, 1)`, `bool`
    /// fair-coin).
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;

    /// A generator seeded from system entropy. The shim derives the seed
    /// from the monotonic clock and a counter — adequate for tests and
    /// benches, not for key material.
    fn from_os_rng() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: i64 = r.random_range(-50..=50);
            assert!((-50..=50).contains(&x));
            let y: u64 = r.random_range(10..20);
            assert!((10..20).contains(&y));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_reachable() {
        // random_range over the full u64 domain must not overflow the width
        // computation.
        let mut r = StdRng::seed_from_u64(4);
        let _: u64 = r.random_range(0..=u64::MAX);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[r.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "{buckets:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(7);
        let _: u64 = r.random_range(5..5);
    }
}
