//! Sequence helpers.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn choose_respects_emptiness() {
        let mut r = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([7u8].choose(&mut r).is_some());
    }
}
