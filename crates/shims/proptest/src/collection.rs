//! Collection strategies.

use crate::strategy::{SizeRange, Strategy};
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec(element, size)` — vectors whose length is
/// drawn uniformly from `size` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn length_stays_in_range() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = vec(0u8..=255, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
