//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of `Self::Value` from random bits.
///
/// Unlike real proptest there is no shrinking tree; `generate` yields the
/// final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing uniform values of `T`'s full canonical domain.
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T` (full integer ranges,
/// fair-coin `bool`, `f64` in `[0, 1)`).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_via_random {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
    )*};
}

impl_any_via_random!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64);

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Blanket support for boxed strategies.
impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Shared helper for sampling a collection size.
#[derive(Debug, Clone)]
pub struct SizeRange {
    pub(crate) min: usize,
    pub(crate) max_inclusive: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max_inclusive)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::seed_from_u64(2);
        let (a, b): (i64, bool) = ((-5i64..=5), any::<bool>()).generate(&mut rng);
        assert!((-5..=5).contains(&a));
        let _ = b;
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::seed_from_u64(3);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
