//! Case scheduling: config, deterministic per-case RNG streams, and the
//! pass/reject bookkeeping behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Only the knobs this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: 1024 + cases * 16,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; try another case.
    Reject,
    /// An assertion failed; the message carries the formatted values.
    Fail(String),
}

/// The RNG handed to strategies for one case.
pub type TestRng = StdRng;

/// Drives one `proptest!`-declared test function.
pub struct TestRunner {
    seed: u64,
    passes: u32,
    rejects: u32,
    next_stream: u64,
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner whose RNG streams are derived from the test's name, so runs
    /// are reproducible without a persistence file.
    pub fn new(test_name: &str, config: &ProptestConfig) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            seed,
            passes: 0,
            rejects: 0,
            next_stream: 0,
            config: config.clone(),
        }
    }

    /// RNG for the next case, or `None` once enough cases passed.
    ///
    /// # Panics
    /// Panics if `prop_assume!` rejected more cases than the configured cap
    /// (the strategy then filters too aggressively to be meaningful).
    pub fn next_case(&mut self) -> Option<TestRng> {
        if self.passes >= self.config.cases {
            return None;
        }
        assert!(
            self.rejects <= self.config.max_global_rejects,
            "proptest shim: {} cases rejected by prop_assume! (cap {}) — strategy filters too much",
            self.rejects,
            self.config.max_global_rejects
        );
        let stream = self.next_stream;
        self.next_stream += 1;
        Some(TestRng::seed_from_u64(
            self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Records a successful case.
    pub fn record_pass(&mut self) {
        self.passes += 1;
    }

    /// Records a `prop_assume!` rejection.
    pub fn record_reject(&mut self) {
        self.rejects += 1;
    }

    /// 1-based index of the case most recently produced (for messages).
    pub fn case_index(&self) -> u64 {
        self.next_stream
    }
}
