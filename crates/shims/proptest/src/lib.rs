//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! range and `any::<T>()` strategies, tuple and [`collection::vec`]
//! combinators, the [`proptest!`] macro with `#![proptest_config(..)]`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports the inputs that failed, verbatim;
//! * deterministic seeding — every test function derives its RNG stream from
//!   a hash of the test name, so failures reproduce without a persistence
//!   file;
//! * rejection via `prop_assume!` simply skips the case (with a cap on the
//!   rejection rate, like the real crate).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Supported grammar (a strict subset of real proptest's):
///
/// ```text
/// proptest! {
///     #![proptest_config(EXPR)]            // optional
///     #[test]
///     fn name(pat in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(stringify!($name), &config);
            while let Some(mut case_rng) = runner.next_case() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut case_rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => runner.record_pass(),
                    Err($crate::test_runner::TestCaseError::Reject) => runner.record_reject(),
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of test `{}` failed: {}",
                            runner.case_index(), stringify!($name), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
