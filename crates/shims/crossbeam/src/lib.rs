//! Offline stand-in for the `crossbeam` crate: the [`channel`] module with
//! unbounded multi-producer multi-consumer channels.
//!
//! Unlike `std::sync::mpsc`, receivers are cloneable and shareable across
//! threads — the property the engine's worker pool relies on to pull jobs
//! from one queue. The implementation is a `Mutex<VecDeque>` + `Condvar`;
//! fine for the message rates the protocols generate, trivially replaceable
//! by real crossbeam once registry access exists.

pub mod channel;
