//! Unbounded MPMC channels with crossbeam's API shape.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    not_empty: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent value, like crossbeam's.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently holds no message but senders remain.
    Empty,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half. Cloneable; the channel disconnects for receivers when
/// the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Cloneable (multi-consumer); the channel disconnects
/// for senders when the last clone drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message; fails only if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.queue.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.items.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.queue.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.queue.lock().unwrap();
        match inner.items.pop_front() {
            Some(item) => Ok(item),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages at this instant.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().items.len()
    }

    /// `true` if no message is queued at this instant.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_receiver_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn multi_consumer_partitions_messages() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h1 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        let h2 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut all = h1.join().unwrap();
        all.extend(h2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
