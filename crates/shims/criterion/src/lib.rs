//! Offline stand-in for `criterion`: the same bench-authoring surface
//! (`criterion_group!`/`criterion_main!`, [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `Bencher::iter`) backed by a simple wall-clock harness.
//!
//! Timing method: after a warm-up, each sample runs the closure in a batch
//! sized so a batch takes ≳ `MIN_BATCH` wall time, and the per-iteration
//! mean of the fastest-half samples is reported (a median-of-means style
//! estimate that tolerates scheduler noise). No plots, no statistics files —
//! one line per benchmark on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const MIN_BATCH: Duration = Duration::from_millis(5);
const DEFAULT_SAMPLES: usize = 12;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional format.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for groups whose name already tells the story.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Hint for how much per-iteration input setup costs, mirroring
/// criterion's enum. The shim times setup out of band either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold in memory in large numbers.
    SmallInput,
    /// Inputs are expensive; batch conservatively.
    LargeInput,
    /// Regenerate the input for every single iteration.
    PerIteration,
}

/// Runs one benchmark's closure repeatedly and records timing.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, filled by `iter`.
    result_secs_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the per-iteration estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: grow the batch until it costs ≥ MIN_BATCH.
        let mut batch = 1u64;
        let batch = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_BATCH || batch >= 1 << 20 {
                break batch;
            }
            // Aim directly for MIN_BATCH with 2x headroom.
            let scale = (MIN_BATCH.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            batch = (batch.saturating_mul(scale as u64 * 2)).clamp(batch + 1, 1 << 20);
        };

        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let half = &times[..(times.len() / 2).max(1)];
        self.result_secs_per_iter = half.iter().sum::<f64>() / half.len() as f64;
    }

    /// Times `routine` over inputs produced by `setup`, excluding the setup
    /// cost from the measurement — the API for consumable inputs (e.g.
    /// one-shot Paillier randomizers).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut timed = Duration::ZERO;
            let mut iters = 0u64;
            // Accumulate timed iterations until the sample is long enough
            // for the clock to be meaningful.
            while timed < MIN_BATCH && iters < 1 << 16 {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
                iters += 1;
            }
            times.push(timed.as_secs_f64() / iters as f64);
        }
        times.sort_by(f64::total_cmp);
        let half = &times[..(times.len() / 2).max(1)];
        self.result_secs_per_iter = half.iter().sum::<f64>() / half.len() as f64;
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(None, id.into(), DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires ≥ 10; we accept anything ≥ 2 and halve it,
        // since our samples are whole batches rather than single calls.
        self.samples = n.max(4) / 2;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), id.into(), self.samples, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), id.into(), self.samples, |b| f(b, input));
        self
    }

    /// Finishes the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: BenchmarkId, samples: usize, mut f: F) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label,
    };
    let mut bencher = Bencher {
        samples,
        result_secs_per_iter: f64::NAN,
    };
    f(&mut bencher);
    if bencher.result_secs_per_iter.is_nan() {
        println!("{label:<56} (no measurement: Bencher::iter never called)");
    } else {
        println!(
            "{label:<56} {:>12}/iter",
            format_time(bencher.result_secs_per_iter)
        );
    }
}

/// Declares a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
