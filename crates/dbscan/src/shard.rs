//! Grid-sharded region queries: deterministic intra-job parallelism.
//!
//! [`ShardedGridIndex`] partitions the query space of a [`GridIndex`](crate::index::GridIndex)-style
//! uniform grid into `S` disjoint shards by a stable hash of the cell
//! coordinate. Every shard owns the points of its cells, so a region query
//! decomposes into `S` independent sub-queries that can run on different
//! workers; results are merged and sorted, which makes the answer —
//! including its order — identical to [`LinearIndex`](crate::index::LinearIndex)'s no matter how many
//! workers ran or how they interleaved. The two-party protocols rely on
//! deterministic neighbor order to stay in lockstep, so this determinism is
//! load-bearing, not cosmetic.
//!
//! Parallelism comes in two shapes:
//!
//! * [`ShardedGridIndex::par_batch_region_query`] — fans a *batch* of
//!   queries out over worker threads (each worker answers whole queries);
//!   this is what `dbscan_parallel` and the engine's intra-job parallelism
//!   use, since one DBSCAN run needs every point's neighborhood anyway;
//! * [`NeighborIndex::region_query`] — the sequential per-query path, shard
//!   by shard, for drop-in use anywhere an index is expected.

use crate::algo::{dbscan_precomputed, Clustering, DbscanParams};
use crate::index::NeighborIndex;
use crate::point::{dist_sq, isqrt, Point};
use std::collections::HashMap;

/// A uniform grid split into disjoint cell shards for parallel querying.
pub struct ShardedGridIndex<'a> {
    points: &'a [Point],
    eps_sq: u64,
    cell_size: i64,
    dim: usize,
    /// `shards[s]` maps cell coordinates hashing to shard `s` onto the
    /// (ascending) indices of the points in that cell.
    shards: Vec<HashMap<Vec<i64>, Vec<usize>>>,
}

/// Stable FNV-1a over the cell coordinates: shard assignment must not vary
/// across runs, platforms, or `HashMap` iteration order.
fn shard_of(cell: &[i64], num_shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in cell {
        for byte in c.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    (h % num_shards as u64) as usize
}

impl<'a> ShardedGridIndex<'a> {
    /// Builds a sharded grid over `points` with threshold `eps²`.
    ///
    /// Construction is one O(n) pass routing each point's cell to its shard
    /// (parallelism pays at *query* time, where the work actually is); the
    /// resulting structure is a pure function of `(points, eps_sq,
    /// num_shards)`.
    ///
    /// # Panics
    /// Panics if `points` is empty, `eps_sq` is zero, or `num_shards` is
    /// zero.
    pub fn new(points: &'a [Point], eps_sq: u64, num_shards: usize) -> Self {
        assert!(!points.is_empty(), "cannot grid-index zero points");
        assert!(eps_sq > 0, "ShardedGridIndex needs a positive radius");
        assert!(num_shards > 0, "need at least one shard");
        let dim = points[0].dim();
        let root = isqrt(eps_sq);
        let cell_size = (root + u64::from(root * root < eps_sq)) as i64;

        let mut shards: Vec<HashMap<Vec<i64>, Vec<usize>>> =
            (0..num_shards).map(|_| HashMap::new()).collect();
        for (i, p) in points.iter().enumerate() {
            let cell = Self::cell_of(p, cell_size);
            let shard = shard_of(&cell, num_shards);
            shards[shard].entry(cell).or_default().push(i);
        }

        ShardedGridIndex {
            points,
            eps_sq,
            cell_size,
            dim,
            shards,
        }
    }

    /// Number of shards the cell space is split into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn cell_of(p: &Point, cell_size: i64) -> Vec<i64> {
        p.coords()
            .iter()
            .map(|&c| c.div_euclid(cell_size))
            .collect()
    }

    /// Scans the `{-1, 0, 1}^dim` cell neighborhood of `q` within one
    /// shard, appending matching point indices to `hits`.
    fn query_shard(&self, shard: &HashMap<Vec<i64>, Vec<usize>>, q: &Point, hits: &mut Vec<usize>) {
        let base = Self::cell_of(q, self.cell_size);
        let mut offset = vec![-1i64; self.dim];
        loop {
            let cell: Vec<i64> = base.iter().zip(&offset).map(|(b, o)| b + o).collect();
            if let Some(indices) = shard.get(&cell) {
                for &i in indices {
                    if dist_sq(&self.points[i], q) <= self.eps_sq {
                        hits.push(i);
                    }
                }
            }
            // Odometer increment over {-1, 0, 1}^dim.
            let mut pos = 0;
            loop {
                if pos == self.dim {
                    return;
                }
                offset[pos] += 1;
                if offset[pos] <= 1 {
                    break;
                }
                offset[pos] = -1;
                pos += 1;
            }
        }
    }

    /// Answers every query in `queries`, fanning whole queries out across
    /// `workers` threads. The output is index-aligned with `queries` and
    /// identical to mapping [`NeighborIndex::region_query`] sequentially.
    pub fn par_batch_region_query(&self, queries: &[Point], workers: usize) -> Vec<Vec<usize>> {
        let workers = workers.max(1).min(queries.len().max(1));
        if workers == 1 || queries.len() < 2 {
            return queries.iter().map(|q| self.region_query(q)).collect();
        }
        let chunk = queries.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|chunk_queries| {
                    scope.spawn(move || {
                        chunk_queries
                            .iter()
                            .map(|q| self.region_query(q))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(queries.len());
            for handle in handles {
                out.extend(handle.join().expect("query worker panicked"));
            }
            out
        })
    }
}

impl NeighborIndex for ShardedGridIndex<'_> {
    fn region_query(&self, q: &Point) -> Vec<usize> {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        let mut hits = Vec::new();
        for shard in &self.shards {
            self.query_shard(shard, q, &mut hits);
        }
        hits.sort_unstable();
        hits
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

/// DBSCAN with grid-sharded parallel neighborhood computation.
///
/// All `n` neighborhoods are computed up front by
/// [`ShardedGridIndex::par_batch_region_query`] over `workers` threads,
/// then the sequential expansion of Algorithm 6 runs on the precomputed
/// answers. Labels are guaranteed identical to [`crate::algo::dbscan`] —
/// the expansion consumes the same neighborhoods in the same order.
pub fn dbscan_parallel(points: &[Point], params: DbscanParams, workers: usize) -> Clustering {
    if points.is_empty() {
        return Clustering {
            labels: Vec::new(),
            num_clusters: 0,
        };
    }
    if params.eps_sq == 0 {
        // Degenerate radius: fall back to the sequential reference.
        return crate::algo::dbscan(points, params);
    }
    let shards = workers.clamp(1, 16);
    let index = ShardedGridIndex::new(points, params.eps_sq, shards);
    let neighborhoods = index.par_batch_region_query(points, workers.max(1));
    dbscan_precomputed(points.len(), params, &neighborhoods)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dbscan;
    use crate::index::{GridIndex, LinearIndex};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.random_range(-60..=60)).collect()))
            .collect()
    }

    #[test]
    fn sharded_matches_linear_and_grid() {
        for dim in [1usize, 2, 3] {
            let points = random_points(150, dim, 7 + dim as u64);
            for eps_sq in [1u64, 16, 400] {
                let linear = LinearIndex::new(&points, eps_sq);
                let grid = GridIndex::new(&points, eps_sq);
                for num_shards in [1usize, 2, 5, 8] {
                    let sharded = ShardedGridIndex::new(&points, eps_sq, num_shards);
                    for q in points.iter().take(25) {
                        let expect = linear.region_query(q);
                        assert_eq!(
                            sharded.region_query(q),
                            expect,
                            "dim={dim} eps²={eps_sq} shards={num_shards}"
                        );
                        assert_eq!(grid.region_query(q), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn batch_query_matches_sequential_for_any_worker_count() {
        let points = random_points(200, 2, 11);
        let index = ShardedGridIndex::new(&points, 100, 4);
        let sequential: Vec<Vec<usize>> = points.iter().map(|q| index.region_query(q)).collect();
        for workers in [1usize, 2, 3, 8, 64] {
            assert_eq!(
                index.par_batch_region_query(&points, workers),
                sequential,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn dbscan_parallel_matches_sequential_labels() {
        for (n, eps_sq, min_pts) in [(40usize, 9u64, 3usize), (250, 64, 4), (400, 25, 5)] {
            let points = random_points(n, 2, n as u64);
            let params = DbscanParams { eps_sq, min_pts };
            let reference = dbscan(&points, params);
            for workers in [1usize, 2, 4, 7] {
                assert_eq!(
                    dbscan_parallel(&points, params, workers),
                    reference,
                    "n={n} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn shard_assignment_is_stable() {
        // The same cell must land on the same shard across calls: build the
        // index twice and compare per-shard cell keys.
        let points = random_points(80, 2, 3);
        let a = ShardedGridIndex::new(&points, 25, 4);
        let b = ShardedGridIndex::new(&points, 25, 4);
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            let mut ka: Vec<_> = sa.keys().collect();
            let mut kb: Vec<_> = sb.keys().collect();
            ka.sort();
            kb.sort();
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn shards_partition_the_points() {
        let points = random_points(120, 3, 9);
        let index = ShardedGridIndex::new(&points, 49, 6);
        let mut seen: Vec<usize> = index
            .shards
            .iter()
            .flat_map(|s| s.values().flatten().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..points.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let params = DbscanParams {
            eps_sq: 4,
            min_pts: 2,
        };
        assert_eq!(dbscan_parallel(&[], params, 4).labels.len(), 0);
        let single = vec![Point::new(vec![1, 2])];
        assert_eq!(dbscan_parallel(&single, params, 4), dbscan(&single, params));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let points = vec![Point::new(vec![0])];
        let _ = ShardedGridIndex::new(&points, 1, 0);
    }
}
