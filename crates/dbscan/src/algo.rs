//! The DBSCAN algorithm (Ester et al., KDD '96), structured after the
//! paper's Algorithms 5 & 6, plus the horizontal-reference variant matching
//! Algorithms 3 & 4.

use crate::index::{GridIndex, LinearIndex, NeighborIndex};
use crate::point::{dist_sq, Point};
use std::collections::VecDeque;

/// Final label of a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Not density-reachable from any core point (Definition 4).
    Noise,
    /// Member of the cluster with this id (ids are dense, starting at 0).
    Cluster(usize),
}

impl Label {
    /// The cluster id, or `None` for noise.
    pub fn cluster(self) -> Option<usize> {
        match self {
            Label::Noise => None,
            Label::Cluster(id) => Some(id),
        }
    }
}

/// Global density parameters (`Eps`, `MinPts` of the paper). The radius is
/// carried squared so all arithmetic stays in exact integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbscanParams {
    /// Squared neighborhood radius; a point `q` is a neighbor of `p` when
    /// `dist²(p, q) ≤ eps_sq`.
    pub eps_sq: u64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

/// A completed clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Per-point labels, parallel to the input slice.
    pub labels: Vec<Label>,
    /// Number of clusters discovered.
    pub num_clusters: usize,
}

impl Clustering {
    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| **l == Label::Noise).count()
    }

    /// Sizes of each cluster, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for label in &self.labels {
            if let Label::Cluster(id) = label {
                sizes[*id] += 1;
            }
        }
        sizes
    }
}

/// Internal per-point state during expansion (Algorithm 5's UNCLASSIFIED /
/// NOISE / ClusterId).
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Unclassified,
    Noise,
    Cluster(usize),
}

/// Runs DBSCAN over `points`, choosing a grid index when it pays off.
pub fn dbscan(points: &[Point], params: DbscanParams) -> Clustering {
    if points.is_empty() {
        return Clustering {
            labels: Vec::new(),
            num_clusters: 0,
        };
    }
    // The grid wins once candidate pruning beats its constant factor; for
    // the small sets SMC can afford, the scan is often faster.
    if points.len() >= 64 && params.eps_sq > 0 {
        let index = GridIndex::new(points, params.eps_sq);
        dbscan_with_index(points, params, &index)
    } else {
        let index = LinearIndex::new(points, params.eps_sq);
        dbscan_with_index(points, params, &index)
    }
}

/// Runs DBSCAN with a caller-provided region-query index.
///
/// Structure mirrors Algorithms 5 & 6 line by line: the privacy-preserving
/// vertical protocol must produce identical labels given identical point
/// order, which the `vertical_matches_plaintext_exactly` integration test
/// asserts.
pub fn dbscan_with_index(
    points: &[Point],
    params: DbscanParams,
    index: &impl NeighborIndex,
) -> Clustering {
    let mut states = vec![State::Unclassified; points.len()];
    let mut next_cluster = 0usize;
    for i in 0..points.len() {
        if states[i] != State::Unclassified {
            continue;
        }
        if expand_cluster(points, params, index, i, next_cluster, &mut states) {
            next_cluster += 1;
        }
    }
    finish(states, next_cluster)
}

/// Algorithm 6 (`ExpandCluster`). Returns whether a cluster was created.
fn expand_cluster(
    points: &[Point],
    params: DbscanParams,
    index: &impl NeighborIndex,
    start: usize,
    cluster_id: usize,
    states: &mut [State],
) -> bool {
    let seeds = index.region_query(&points[start]);
    if seeds.len() < params.min_pts {
        // "no core point" — mark only the query point.
        states[start] = State::Noise;
        return false;
    }
    // changeClusterIds(seeds, ClusterId); seeds.delete(Point)
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in &seeds {
        states[s] = State::Cluster(cluster_id);
        if s != start {
            queue.push_back(s);
        }
    }
    while let Some(current) = queue.pop_front() {
        let result = index.region_query(&points[current]);
        if result.len() >= params.min_pts {
            for &neighbor in &result {
                match states[neighbor] {
                    State::Unclassified => {
                        queue.push_back(neighbor);
                        states[neighbor] = State::Cluster(cluster_id);
                    }
                    State::Noise => {
                        // Border point: claimed but not expanded through.
                        states[neighbor] = State::Cluster(cluster_id);
                    }
                    State::Cluster(_) => {}
                }
            }
        }
    }
    true
}

/// Runs the Algorithm 5 & 6 expansion over *precomputed* neighborhoods:
/// `neighborhoods[i]` must hold the ascending indices of every point within
/// `Eps` of point `i` (including `i` itself), exactly as
/// [`NeighborIndex::region_query`] reports them.
///
/// Because expansion consumes the same neighborhood answers in the same
/// order, the labels are identical to [`dbscan_with_index`] over the index
/// that produced the neighborhoods — this is what lets
/// [`crate::shard::dbscan_parallel`] compute all neighborhoods on worker
/// threads first and keep the result bit-for-bit deterministic.
///
/// # Panics
/// Panics if `neighborhoods.len() != n` or any neighbor index is out of
/// range.
pub fn dbscan_precomputed(
    n: usize,
    params: DbscanParams,
    neighborhoods: &[Vec<usize>],
) -> Clustering {
    assert_eq!(neighborhoods.len(), n, "one neighborhood per point");
    let mut states = vec![State::Unclassified; n];
    let mut next_cluster = 0usize;
    for i in 0..n {
        if states[i] != State::Unclassified {
            continue;
        }
        let seeds = &neighborhoods[i];
        if seeds.len() < params.min_pts {
            states[i] = State::Noise;
            continue;
        }
        let cluster_id = next_cluster;
        next_cluster += 1;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            states[s] = State::Cluster(cluster_id);
            if s != i {
                queue.push_back(s);
            }
        }
        while let Some(current) = queue.pop_front() {
            let result = &neighborhoods[current];
            if result.len() >= params.min_pts {
                for &neighbor in result {
                    match states[neighbor] {
                        State::Unclassified => {
                            queue.push_back(neighbor);
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Noise => {
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Cluster(_) => {}
                    }
                }
            }
        }
    }
    finish(states, next_cluster)
}

/// The horizontal-partition reference semantics (Algorithms 3 & 4, one
/// party's view): density counts include the `external` points, but cluster
/// expansion traverses only `own` points — the querying party never learns
/// *which* external points matched, so it cannot chain through them.
///
/// This deliberately differs from [`dbscan`] on the union whenever two local
/// groups are bridged only by external points; experiment E4 quantifies the
/// gap.
pub fn dbscan_with_external_density(
    own: &[Point],
    external: &[Point],
    params: DbscanParams,
) -> Clustering {
    let index = LinearIndex::new(own, params.eps_sq);
    let external_count = |q: &Point| {
        external
            .iter()
            .filter(|p| dist_sq(p, q) <= params.eps_sq)
            .count()
    };

    let mut states = vec![State::Unclassified; own.len()];
    let mut next_cluster = 0usize;
    for i in 0..own.len() {
        if states[i] != State::Unclassified {
            continue;
        }
        // Algorithm 4: seedsA from own data, seedsB.size from the peer.
        let seeds = index.region_query(&own[i]);
        if seeds.len() + external_count(&own[i]) < params.min_pts {
            states[i] = State::Noise;
            continue;
        }
        let cluster_id = next_cluster;
        next_cluster += 1;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in &seeds {
            states[s] = State::Cluster(cluster_id);
            if s != i {
                queue.push_back(s);
            }
        }
        while let Some(current) = queue.pop_front() {
            let result = index.region_query(&own[current]);
            if result.len() + external_count(&own[current]) >= params.min_pts {
                for &neighbor in &result {
                    match states[neighbor] {
                        State::Unclassified => {
                            queue.push_back(neighbor);
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Noise => {
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Cluster(_) => {}
                    }
                }
            }
        }
    }
    finish(states, next_cluster)
}

fn finish(states: Vec<State>, num_clusters: usize) -> Clustering {
    let labels = states
        .into_iter()
        .map(|s| match s {
            State::Unclassified => unreachable!("every point is classified"),
            State::Noise => Label::Noise,
            State::Cluster(id) => Label::Cluster(id),
        })
        .collect();
    Clustering {
        labels,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[&[i64]]) -> Vec<Point> {
        coords.iter().map(|c| Point::from(*c)).collect()
    }

    fn params(eps_sq: u64, min_pts: usize) -> DbscanParams {
        DbscanParams { eps_sq, min_pts }
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], params(4, 2));
        assert_eq!(c.num_clusters, 0);
        assert!(c.labels.is_empty());
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn single_point_is_noise_unless_minpts_one() {
        let points = pts(&[&[0, 0]]);
        let c = dbscan(&points, params(4, 2));
        assert_eq!(c.labels, vec![Label::Noise]);
        let c = dbscan(&points, params(4, 1));
        assert_eq!(c.labels, vec![Label::Cluster(0)]);
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn two_separated_groups() {
        // Group A around origin, group B far away, one stray point.
        let points = pts(&[
            &[0, 0],
            &[1, 0],
            &[0, 1],
            &[100, 100],
            &[101, 100],
            &[100, 101],
            &[50, -50],
        ]);
        let c = dbscan(&points, params(2, 3));
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[1], c.labels[2]);
        assert_eq!(c.labels[3], c.labels[4]);
        assert_eq!(c.labels[4], c.labels[5]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_eq!(c.labels[6], Label::Noise);
        assert_eq!(c.cluster_sizes(), vec![3, 3]);
    }

    #[test]
    fn chain_is_density_reachable() {
        // A chain of points, each within eps of the next: one cluster via
        // transitive density-reachability (Definition 1).
        let points = pts(&[&[0], &[2], &[4], &[6], &[8]]);
        let c = dbscan(&points, params(4, 2));
        assert_eq!(c.num_clusters, 1);
        assert!(c.labels.iter().all(|l| *l == Label::Cluster(0)));
    }

    #[test]
    fn shared_border_point_follows_algorithm6_seed_relabeling() {
        // Two dense 4-point squares share a border point X = (3, 0): X has
        // only 3 neighbors (itself, (1,0), (5,0)) so it is never core.
        // Cluster 0's expansion claims X first, but Algorithm 6 step 6
        // (`changeClusterIds(seeds, ClusterId)`) relabels seeds
        // *unconditionally*, so when (5,0) starts cluster 1 with X in its
        // seed set, X moves to cluster 1. This is the faithful Ester et al.
        // behavior the paper copies; the private protocols must match it.
        let points = pts(&[
            &[0, 0],
            &[1, 0],
            &[0, 1],
            &[1, 1], // square A: all core (4 neighbors each)
            &[3, 0], // X: border of both
            &[5, 0],
            &[6, 0],
            &[5, 1],
            &[6, 1], // square B
        ]);
        let c = dbscan(&points, params(4, 4));
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.labels[4], Label::Cluster(1), "seed relabeling wins");
        assert_eq!(c.labels[0], Label::Cluster(0));
        assert_eq!(c.labels[5], Label::Cluster(1));
    }

    #[test]
    fn noise_upgraded_to_border() {
        // Point 0 is processed first, fails the core test, becomes NOISE;
        // later cluster expansion reclassifies it as a border point.
        let points = pts(&[
            &[-2], // border-only: neighbors = {0, 1} => 2 < 3, not core
            &[0],
            &[1],
            &[2],
        ]);
        let c = dbscan(&points, params(4, 3));
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.labels[0], Label::Cluster(0), "noise became border");
    }

    #[test]
    fn cluster_surrounded_by_ring() {
        // DBSCAN's signature: an inner blob fully enclosed by a ring forms
        // two clusters (k-means famously cannot do this).
        let mut coords: Vec<Vec<i64>> = vec![];
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                coords.push(vec![dx, dy]); // 3x3 inner blob
            }
        }
        let ring_r = 10.0;
        for step in 0..24 {
            let angle = step as f64 * std::f64::consts::TAU / 24.0;
            coords.push(vec![
                (ring_r * angle.cos()).round() as i64,
                (ring_r * angle.sin()).round() as i64,
            ]);
        }
        let points: Vec<Point> = coords.into_iter().map(Point::new).collect();
        let c = dbscan(&points, params(9, 3));
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.noise_count(), 0);
        // Inner blob all one cluster, ring all the other.
        assert!(c.labels[..9].iter().all(|l| *l == c.labels[0]));
        assert!(c.labels[9..].iter().all(|l| *l == c.labels[9]));
        assert_ne!(c.labels[0], c.labels[9]);
    }

    #[test]
    fn all_points_identical() {
        let points = pts(&[&[5, 5], &[5, 5], &[5, 5], &[5, 5]]);
        let c = dbscan(&points, params(0, 4));
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn grid_and_linear_paths_agree() {
        // 100 points forces the grid path; re-run with explicit linear.
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new(vec![(i % 10) * 3, (i / 10) * 3]))
            .collect();
        let p = params(9, 4);
        let via_grid = dbscan(&points, p);
        let linear = LinearIndex::new(&points, p.eps_sq);
        let via_linear = dbscan_with_index(&points, p, &linear);
        assert_eq!(via_grid, via_linear);
    }

    #[test]
    fn external_density_enables_core_status() {
        // Alone, each of Alice's points is noise (min_pts 2, no local
        // neighbor); Bob's nearby points make them core.
        let alice = pts(&[&[0], &[10]]);
        let bob = pts(&[&[1], &[11]]);
        let solo = dbscan(&alice, params(4, 2));
        assert_eq!(solo.noise_count(), 2);
        let with_bob = dbscan_with_external_density(&alice, &bob, params(4, 2));
        assert_eq!(with_bob.noise_count(), 0);
        assert_eq!(with_bob.num_clusters, 2, "still cannot chain through Bob");
    }

    #[test]
    fn external_bridge_does_not_merge_local_clusters() {
        // Centralized DBSCAN on the union would form ONE cluster via Bob's
        // bridge point; the horizontal semantics keep Alice's groups apart.
        let alice = pts(&[&[0], &[1], &[5], &[6]]);
        let bob = pts(&[&[3]]);
        let p = params(4, 2);
        let horizontal = dbscan_with_external_density(&alice, &bob, p);
        assert_eq!(horizontal.num_clusters, 2);

        let mut union = alice.clone();
        union.extend(bob);
        let centralized = dbscan(&union, p);
        assert_eq!(centralized.num_clusters, 1);
    }

    #[test]
    fn external_density_with_no_external_matches_plain() {
        let points = pts(&[&[0, 0], &[1, 0], &[0, 1], &[50, 50]]);
        let p = params(2, 3);
        let a = dbscan(&points, p);
        let b = dbscan_with_external_density(&points, &[], p);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_parallel_to_input() {
        let points = pts(&[&[0], &[100], &[1]]);
        let c = dbscan(&points, params(4, 2));
        assert_eq!(c.labels.len(), 3);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_eq!(c.labels[1], Label::Noise);
    }

    #[test]
    fn min_pts_one_has_no_noise() {
        let points = pts(&[&[0], &[50], &[100]]);
        let c = dbscan(&points, params(4, 1));
        assert_eq!(c.noise_count(), 0);
        assert_eq!(c.num_clusters, 3);
    }

    #[test]
    fn label_cluster_accessor() {
        assert_eq!(Label::Noise.cluster(), None);
        assert_eq!(Label::Cluster(3).cluster(), Some(3));
    }
}
