#![warn(missing_docs)]

//! Plaintext DBSCAN and everything needed to evaluate the private protocols
//! against it.
//!
//! This crate is the paper's *baseline substrate*:
//!
//! * [`algo::dbscan`] — the classic single-party algorithm of Ester,
//!   Kriegel, Sander & Xu (KDD '96), structured exactly like the paper's
//!   Algorithms 5 & 6 so the privacy-preserving vertical protocol can be
//!   validated label-for-label against it;
//! * [`algo::dbscan_with_external_density`] — the *horizontal reference
//!   semantics*: density counts include a second (remote) point set but
//!   cluster expansion only traverses the local one. This is precisely what
//!   the paper's Algorithms 3 & 4 compute per party, and it deliberately
//!   differs from centralized DBSCAN when clusters are bridged only by the
//!   other party's points (measured by experiment E4);
//! * [`index`] — linear-scan and uniform-grid region-query indexes;
//! * [`shard`] — a grid index partitioned into disjoint cell shards so one
//!   job's neighborhood checks fan out across worker threads with
//!   deterministic (sorted) answers, plus [`shard::dbscan_parallel`];
//! * [`datagen`] — synthetic workloads standing in for the private hospital
//!   databases the paper motivates (Gaussian blobs, two moons, a cluster
//!   enclosed by a ring, uniform noise), all quantized to a bounded integer
//!   lattice because the SMC comparison domain must be bounded;
//! * [`eval`] — partition-agreement metrics (exact match, Rand index,
//!   purity) used by the correctness experiments.
//!
//! Coordinates are `i64` lattice values throughout; [`point::Quantizer`]
//! maps real-valued data onto the lattice with an explicit scale.

pub mod algo;
pub mod datagen;
pub mod eval;
pub mod index;
pub mod kdist;
pub mod point;
pub mod pruning;
pub mod shard;

pub use algo::{dbscan, dbscan_with_external_density, Clustering, DbscanParams, Label};
pub use point::{dist_sq, Point, Quantizer};
pub use pruning::{
    band_width, bands_intersect, coarse_cell, CoarseGrid, Pruning, PRUNING_DISCIPLINE,
};
pub use shard::{dbscan_parallel, ShardedGridIndex};
