//! Synthetic workload generators.
//!
//! The paper motivates privacy-preserving clustering with hospital records
//! but names no dataset; these generators produce the cluster shapes its
//! introduction argues DBSCAN exists for — arbitrary shapes, nested
//! structures, noise — on the bounded integer lattice the SMC layer needs
//! (see DESIGN.md §3 for the substitution rationale).

use crate::point::{Point, Quantizer};
use rand::Rng;
use std::f64::consts::TAU;

/// A standard normal sample via Box–Muller (no external distribution crate
/// in the offline set).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// Isotropic Gaussian blobs around the given centers. Returns the points
/// and their ground-truth blob ids (for purity checks).
pub fn gaussian_blobs<R: Rng + ?Sized>(
    rng: &mut R,
    per_cluster: usize,
    centers: &[Vec<f64>],
    std_dev: f64,
    quantizer: Quantizer,
) -> (Vec<Point>, Vec<usize>) {
    assert!(!centers.is_empty(), "need at least one blob center");
    let dim = centers[0].len();
    assert!(
        centers.iter().all(|c| c.len() == dim),
        "all centers must share a dimension"
    );
    let mut points = Vec::with_capacity(per_cluster * centers.len());
    let mut truth = Vec::with_capacity(points.capacity());
    for (id, center) in centers.iter().enumerate() {
        for _ in 0..per_cluster {
            let raw: Vec<f64> = center
                .iter()
                .map(|&c| c + std_dev * gaussian(rng))
                .collect();
            points.push(quantizer.quantize(&raw));
            truth.push(id);
        }
    }
    (points, truth)
}

/// Convenience: `k` well-separated blobs in `dim` dimensions on a circle
/// (2-D) or hypercube corners (higher dims), spread to stay inside the
/// quantizer's bound.
pub fn standard_blobs<R: Rng + ?Sized>(
    rng: &mut R,
    per_cluster: usize,
    k: usize,
    dim: usize,
    quantizer: Quantizer,
) -> (Vec<Point>, Vec<usize>) {
    assert!(k >= 1 && dim >= 1);
    let reach = quantizer.coord_bound as f64 / quantizer.scale * 0.6;
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|i| {
            if dim == 1 || k == 1 {
                let t = if k == 1 {
                    0.0
                } else {
                    2.0 * i as f64 / (k - 1) as f64 - 1.0
                };
                let mut c = vec![0.0; dim];
                c[0] = reach * t;
                c
            } else {
                let angle = i as f64 * TAU / k as f64;
                let mut c = vec![0.0; dim];
                c[0] = reach * angle.cos();
                c[1] = reach * angle.sin();
                c
            }
        })
        .collect();
    let std_dev = reach / (k as f64 * 4.0);
    gaussian_blobs(rng, per_cluster, &centers, std_dev, quantizer)
}

/// The classic interleaving two-moons shape (2-D): two crescents that
/// partition-based clustering cannot separate.
pub fn two_moons<R: Rng + ?Sized>(
    rng: &mut R,
    per_moon: usize,
    radius: f64,
    noise_std: f64,
    quantizer: Quantizer,
) -> (Vec<Point>, Vec<usize>) {
    let mut points = Vec::with_capacity(2 * per_moon);
    let mut truth = Vec::with_capacity(2 * per_moon);
    for i in 0..per_moon {
        let t = i as f64 / per_moon.max(1) as f64 * std::f64::consts::PI;
        let x = radius * t.cos() + noise_std * gaussian(rng);
        let y = radius * t.sin() + noise_std * gaussian(rng);
        points.push(quantizer.quantize(&[x, y]));
        truth.push(0);
        // Second moon: shifted and flipped.
        let x2 = radius - radius * t.cos() + noise_std * gaussian(rng);
        let y2 = -radius * t.sin() + radius / 2.0 + noise_std * gaussian(rng);
        points.push(quantizer.quantize(&[x2, y2]));
        truth.push(1);
    }
    (points, truth)
}

/// A dense blob completely surrounded by a ring — the "cluster inside a
/// different cluster" case the paper's introduction highlights.
pub fn cluster_in_ring<R: Rng + ?Sized>(
    rng: &mut R,
    core_points: usize,
    ring_points: usize,
    core_std: f64,
    ring_radius: f64,
    ring_std: f64,
    quantizer: Quantizer,
) -> (Vec<Point>, Vec<usize>) {
    let mut points = Vec::with_capacity(core_points + ring_points);
    let mut truth = Vec::with_capacity(points.capacity());
    for _ in 0..core_points {
        let x = core_std * gaussian(rng);
        let y = core_std * gaussian(rng);
        points.push(quantizer.quantize(&[x, y]));
        truth.push(0);
    }
    for i in 0..ring_points {
        let angle = i as f64 / ring_points.max(1) as f64 * TAU;
        let r = ring_radius + ring_std * gaussian(rng);
        points.push(quantizer.quantize(&[r * angle.cos(), r * angle.sin()]));
        truth.push(1);
    }
    (points, truth)
}

/// Uniform noise over the full lattice box.
pub fn uniform_points<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    dim: usize,
    coord_bound: i64,
) -> Vec<Point> {
    assert!(dim >= 1 && coord_bound >= 1);
    (0..n)
        .map(|_| {
            Point::new(
                (0..dim)
                    .map(|_| rng.random_range(-coord_bound..=coord_bound))
                    .collect(),
            )
        })
        .collect()
}

/// Horizontal split by alternating index: deterministic, balanced, and —
/// because generators emit cluster points contiguously — gives both parties
/// points from every cluster.
pub fn split_alternating(points: &[Point]) -> (Vec<Point>, Vec<Point>) {
    let alice = points.iter().step_by(2).cloned().collect();
    let bob = points.iter().skip(1).step_by(2).cloned().collect();
    (alice, bob)
}

/// Horizontal split where each point goes to Alice with probability
/// `alice_fraction`.
pub fn split_random<R: Rng + ?Sized>(
    rng: &mut R,
    points: &[Point],
    alice_fraction: f64,
) -> (Vec<Point>, Vec<Point>) {
    assert!((0.0..=1.0).contains(&alice_fraction));
    let mut alice = Vec::new();
    let mut bob = Vec::new();
    for p in points {
        if rng.random::<f64>() < alice_fraction {
            alice.push(p.clone());
        } else {
            bob.push(p.clone());
        }
    }
    (alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{dbscan, DbscanParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn q() -> Quantizer {
        Quantizer::new(1.0, 1000)
    }

    #[test]
    fn blobs_have_expected_counts_and_labels() {
        let mut r = rng(1);
        let centers = vec![vec![-50.0, 0.0], vec![50.0, 0.0]];
        let (points, truth) = gaussian_blobs(&mut r, 30, &centers, 3.0, q());
        assert_eq!(points.len(), 60);
        assert_eq!(truth.len(), 60);
        assert!(truth[..30].iter().all(|&t| t == 0));
        assert!(truth[30..].iter().all(|&t| t == 1));
        // Blob separation: dbscan finds exactly two clusters.
        let c = dbscan(
            &points,
            DbscanParams {
                eps_sq: 100,
                min_pts: 4,
            },
        );
        assert_eq!(c.num_clusters, 2);
    }

    #[test]
    fn blob_points_stay_in_bounds() {
        let mut r = rng(2);
        let quant = Quantizer::new(1.0, 20);
        let (points, _) = gaussian_blobs(&mut r, 100, &[vec![100.0, 100.0]], 50.0, quant);
        for p in &points {
            assert!(p.max_abs_coord() <= 20);
        }
    }

    #[test]
    fn standard_blobs_separable_by_dbscan() {
        let mut r = rng(3);
        let quant = Quantizer::new(1.0, 100);
        for k in [2usize, 3, 4] {
            let (points, _) = standard_blobs(&mut r, 40, k, 2, quant);
            let c = dbscan(
                &points,
                DbscanParams {
                    eps_sq: 64,
                    min_pts: 4,
                },
            );
            assert_eq!(c.num_clusters, k, "k = {k}");
        }
    }

    #[test]
    fn two_moons_found_as_two_clusters() {
        let mut r = rng(4);
        let quant = Quantizer::new(1.0, 200);
        let (points, _) = two_moons(&mut r, 80, 60.0, 1.5, quant);
        let c = dbscan(
            &points,
            DbscanParams {
                eps_sq: 64,
                min_pts: 3,
            },
        );
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn ring_encloses_core_two_clusters() {
        let mut r = rng(5);
        let quant = Quantizer::new(1.0, 200);
        let (points, truth) = cluster_in_ring(&mut r, 40, 60, 3.0, 50.0, 1.0, quant);
        // Ring spacing ≈ 2π·50/60 ≈ 5.2, so eps = 12 gives each ring point
        // ≥ 4 neighbors (two per side) while staying far below the ≈ 38 gap
        // between blob fringe and ring.
        let c = dbscan(
            &points,
            DbscanParams {
                eps_sq: 144,
                min_pts: 4,
            },
        );
        assert_eq!(c.num_clusters, 2);
        // Verify the clusters match the generator's ground truth.
        let first_core = c.labels[0];
        for (label, &t) in c.labels.iter().zip(&truth) {
            if t == 0 {
                assert_eq!(*label, first_core);
            } else {
                assert_ne!(*label, first_core);
            }
        }
    }

    #[test]
    fn uniform_points_respect_bounds() {
        let mut r = rng(6);
        let points = uniform_points(&mut r, 200, 3, 7);
        assert_eq!(points.len(), 200);
        for p in &points {
            assert_eq!(p.dim(), 3);
            assert!(p.max_abs_coord() <= 7);
        }
    }

    #[test]
    fn alternating_split_is_balanced_and_complete() {
        let points = uniform_points(&mut rng(7), 11, 2, 5);
        let (alice, bob) = split_alternating(&points);
        assert_eq!(alice.len(), 6);
        assert_eq!(bob.len(), 5);
        assert_eq!(alice[0], points[0]);
        assert_eq!(bob[0], points[1]);
    }

    #[test]
    fn random_split_respects_extremes() {
        let points = uniform_points(&mut rng(8), 50, 2, 5);
        let (alice, bob) = split_random(&mut rng(9), &points, 1.0);
        assert_eq!(alice.len(), 50);
        assert!(bob.is_empty());
        let (alice, bob) = split_random(&mut rng(10), &points, 0.0);
        assert!(alice.is_empty());
        assert_eq!(bob.len(), 50);
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let quant = q();
        let (a, _) = standard_blobs(&mut rng(42), 10, 2, 2, quant);
        let (b, _) = standard_blobs(&mut rng(42), 10, 2, 2, quant);
        assert_eq!(a, b);
    }
}
