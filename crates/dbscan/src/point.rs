//! Points on a bounded integer lattice.
//!
//! The SMC layer needs a bounded integer domain: Yao's protocol works on
//! `[1, n0]` and the squared-distance algebra must not overflow the signed
//! Paillier encoding. Working on an `i64` lattice makes every bound explicit
//! and keeps distance arithmetic exact (no float comparisons to disagree
//! across parties).

use std::fmt;

/// A point with `i64` coordinates.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Point {
    coords: Vec<i64>,
}

impl Point {
    /// Builds a point from coordinates.
    ///
    /// # Panics
    /// Panics on zero-dimensional points.
    pub fn new(coords: Vec<i64>) -> Self {
        assert!(!coords.is_empty(), "points need at least one dimension");
        Point { coords }
    }

    /// The coordinates.
    pub fn coords(&self) -> &[i64] {
        &self.coords
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Largest coordinate magnitude.
    pub fn max_abs_coord(&self) -> i64 {
        self.coords
            .iter()
            .map(|c| c.abs())
            .max()
            .expect("non-empty")
    }

    /// Sum of squared coordinates (`Σ c_k²`), the `ΣA²` term of the paper's
    /// distance decompositions.
    pub fn norm_sq(&self) -> u64 {
        self.coords
            .iter()
            .map(|&c| (c as i128) * (c as i128))
            .sum::<i128>()
            .try_into()
            .expect("norm² fits u64 for lattice-bounded coordinates")
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:?}", self.coords)
    }
}

impl From<Vec<i64>> for Point {
    fn from(coords: Vec<i64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[i64]> for Point {
    fn from(coords: &[i64]) -> Self {
        Point::new(coords.to_vec())
    }
}

/// Exact squared Euclidean distance.
///
/// # Panics
/// Panics if the points have different dimensionality, or if the squared
/// distance overflows `u64` (impossible for coordinates below `2^30`).
pub fn dist_sq(a: &Point, b: &Point) -> u64 {
    assert_eq!(
        a.dim(),
        b.dim(),
        "dimension mismatch: {} vs {}",
        a.dim(),
        b.dim()
    );
    let sum: i128 = a
        .coords()
        .iter()
        .zip(b.coords())
        .map(|(&x, &y)| {
            let d = (x - y) as i128;
            d * d
        })
        .sum();
    sum.try_into().expect("squared distance fits u64")
}

/// Largest squared distance possible between two points whose coordinates
/// all lie in `[-coord_bound, coord_bound]` with `dim` dimensions.
pub fn max_dist_sq(dim: usize, coord_bound: i64) -> u64 {
    let span = 2 * coord_bound as i128;
    (dim as i128 * span * span)
        .try_into()
        .expect("max squared distance fits u64")
}

/// Exact floor integer square root (`isqrt(n)² ≤ n < (isqrt(n)+1)²`).
///
/// The grid index derives its cell size from `Eps = isqrt(eps_sq)`; using
/// exact integer arithmetic keeps region queries correct even for `eps_sq`
/// beyond `f64`'s 53-bit exact range.
pub fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    // Newton's method seeded from the float estimate: one or two
    // corrections suffice for all u64 inputs.
    let mut x = (n as f64).sqrt() as u64;
    // Guard against float overshoot near u64::MAX.
    x = x.min(u64::MAX >> 16 | 0xFFFF_FFFF);
    loop {
        let better = (x + n / x.max(1)) / 2;
        if better >= x {
            break;
        }
        x = better;
    }
    // Final correction in both directions.
    while x.checked_mul(x).is_none_or(|sq| sq > n) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= n) {
        x += 1;
    }
    x
}

/// Maps real-valued data onto the integer lattice with a fixed scale.
///
/// `quantize(x) = round(x * scale)`, clamped to `[-coord_bound,
/// coord_bound]`. The scale choice trades resolution against the size of the
/// SMC comparison domain (`n0` grows with `coord_bound²`); the experiments
/// document this trade-off.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    /// Multiplier applied before rounding.
    pub scale: f64,
    /// Clamp bound for the resulting lattice coordinates.
    pub coord_bound: i64,
}

impl Quantizer {
    /// A quantizer with the given scale and clamp bound.
    ///
    /// # Panics
    /// Panics on non-positive scale or bound.
    pub fn new(scale: f64, coord_bound: i64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(coord_bound > 0, "coordinate bound must be positive");
        Quantizer { scale, coord_bound }
    }

    /// Quantizes one coordinate.
    pub fn quantize_coord(&self, value: f64) -> i64 {
        let scaled = (value * self.scale).round();
        let clamped = scaled.clamp(-(self.coord_bound as f64), self.coord_bound as f64);
        clamped as i64
    }

    /// Quantizes a full point.
    pub fn quantize(&self, values: &[f64]) -> Point {
        Point::new(values.iter().map(|&v| self.quantize_coord(v)).collect())
    }

    /// Quantizes a real-valued radius into a lattice squared radius
    /// (`eps² = round(eps · scale)²`).
    pub fn quantize_eps_sq(&self, eps: f64) -> u64 {
        let lattice_eps = (eps * self.scale).round().max(0.0) as u64;
        lattice_eps * lattice_eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[i64]) -> Point {
        Point::from(coords)
    }

    #[test]
    fn dist_sq_basics() {
        assert_eq!(dist_sq(&p(&[0, 0]), &p(&[3, 4])), 25);
        assert_eq!(dist_sq(&p(&[1, 1]), &p(&[1, 1])), 0);
        assert_eq!(dist_sq(&p(&[-3]), &p(&[4])), 49);
        assert_eq!(dist_sq(&p(&[1, 2, 3]), &p(&[3, 2, 1])), 8);
    }

    #[test]
    fn dist_sq_symmetric() {
        let a = p(&[5, -7, 11]);
        let b = p(&[-2, 0, 4]);
        assert_eq!(dist_sq(&a, &b), dist_sq(&b, &a));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = dist_sq(&p(&[1]), &p(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_point_rejected() {
        let _ = Point::new(vec![]);
    }

    #[test]
    fn norm_sq_and_max_abs() {
        let x = p(&[3, -4, 0]);
        assert_eq!(x.norm_sq(), 25);
        assert_eq!(x.max_abs_coord(), 4);
    }

    #[test]
    fn max_dist_sq_is_attained_at_corners() {
        assert_eq!(max_dist_sq(2, 10), dist_sq(&p(&[-10, -10]), &p(&[10, 10])));
        assert_eq!(max_dist_sq(1, 5), 100);
        assert_eq!(max_dist_sq(3, 1), 12);
    }

    #[test]
    fn extreme_coordinates_do_not_overflow() {
        let bound = 1 << 30;
        let a = p(&[-bound, -bound]);
        let b = p(&[bound, bound]);
        assert_eq!(dist_sq(&a, &b), 2 * (2u64 * (1 << 30)) * (2u64 * (1 << 30)));
    }

    #[test]
    fn isqrt_exact_on_edge_cases() {
        for n in 0u64..2000 {
            let r = isqrt(n);
            assert!(r * r <= n, "n = {n}");
            assert!(
                (r + 1).checked_mul(r + 1).is_none_or(|sq| sq > n),
                "n = {n}"
            );
        }
        for n in [
            u64::MAX,
            u64::MAX - 1,
            (1 << 62) - 1,
            1 << 62,
            (1 << 53) + 1, // beyond f64 exactness
            999_999_999_999_999_999,
        ] {
            let r = isqrt(n);
            assert!(r.checked_mul(r).is_some_and(|sq| sq <= n), "n = {n}");
            assert!(
                (r + 1).checked_mul(r + 1).is_none_or(|sq| sq > n),
                "n = {n}"
            );
        }
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn quantizer_rounds_and_clamps() {
        let q = Quantizer::new(10.0, 100);
        assert_eq!(q.quantize_coord(1.26), 13);
        assert_eq!(q.quantize_coord(-1.24), -12);
        assert_eq!(q.quantize_coord(1e9), 100);
        assert_eq!(q.quantize_coord(-1e9), -100);
        let pt = q.quantize(&[0.1, -0.52]);
        assert_eq!(pt.coords(), &[1, -5]);
    }

    #[test]
    fn quantizer_eps() {
        let q = Quantizer::new(10.0, 100);
        assert_eq!(q.quantize_eps_sq(0.5), 25);
        assert_eq!(q.quantize_eps_sq(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn bad_quantizer_scale_panics() {
        let _ = Quantizer::new(0.0, 10);
    }
}
