//! Region-query indexes: `N_eps(q) = { p : dist(p, q) ≤ eps }`.
//!
//! Queries return indexes of all points within `eps` *including the query
//! point itself* when it belongs to the indexed set — the convention of
//! Ester et al. that the paper's MinPts thresholds assume.

use crate::point::{dist_sq, isqrt, Point};
use std::collections::HashMap;

/// Anything that can answer Eps-neighborhood queries over a fixed point set.
pub trait NeighborIndex {
    /// Indexes of all points with `dist²(p, q) ≤ eps²`, in ascending index
    /// order (deterministic order keeps two-party runs in lockstep).
    fn region_query(&self, q: &Point) -> Vec<usize>;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// `true` if the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// O(n) scan. Reference implementation and the right choice for the small
/// point sets SMC protocols can afford.
pub struct LinearIndex<'a> {
    points: &'a [Point],
    eps_sq: u64,
}

impl<'a> LinearIndex<'a> {
    /// Builds a linear index over `points` with threshold `eps²`.
    pub fn new(points: &'a [Point], eps_sq: u64) -> Self {
        LinearIndex { points, eps_sq }
    }
}

impl NeighborIndex for LinearIndex<'_> {
    fn region_query(&self, q: &Point) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| dist_sq(p, q) <= self.eps_sq)
            .map(|(i, _)| i)
            .collect()
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

/// Uniform grid with cell side `ceil(eps)`: a query inspects the 3^d
/// neighboring cells. The classic accelerator for low-dimensional DBSCAN
/// (the paper's §4.3.2 notes its complexity assumes *no* spatial index; the
/// `region_query_index` bench quantifies what an index buys).
pub struct GridIndex<'a> {
    points: &'a [Point],
    eps_sq: u64,
    cell_size: i64,
    dim: usize,
    cells: HashMap<Vec<i64>, Vec<usize>>,
}

impl<'a> GridIndex<'a> {
    /// Builds a grid over `points` with threshold `eps²`.
    ///
    /// # Panics
    /// Panics if `points` is empty or `eps_sq` is zero (a zero radius makes
    /// every point its own neighborhood; use `LinearIndex` for that
    /// degenerate case).
    pub fn new(points: &'a [Point], eps_sq: u64) -> Self {
        assert!(!points.is_empty(), "cannot grid-index zero points");
        assert!(eps_sq > 0, "GridIndex needs a positive radius");
        let dim = points[0].dim();
        // ceil(sqrt(eps_sq)) in exact integer arithmetic.
        let root = isqrt(eps_sq);
        let cell_size = (root + u64::from(root * root < eps_sq)) as i64;
        let mut cells: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells
                .entry(Self::cell_of(p, cell_size))
                .or_default()
                .push(i);
        }
        GridIndex {
            points,
            eps_sq,
            cell_size,
            dim,
            cells,
        }
    }

    fn cell_of(p: &Point, cell_size: i64) -> Vec<i64> {
        p.coords()
            .iter()
            .map(|&c| c.div_euclid(cell_size))
            .collect()
    }

    /// Visits every cell offset in `{-1, 0, 1}^dim` around `base`.
    fn for_each_neighbor_cell(&self, base: &[i64], visit: &mut impl FnMut(&[i64])) {
        let mut offset = vec![-1i64; self.dim];
        loop {
            let cell: Vec<i64> = base.iter().zip(&offset).map(|(b, o)| b + o).collect();
            visit(&cell);
            // Odometer increment over {-1, 0, 1}^dim.
            let mut pos = 0;
            loop {
                if pos == self.dim {
                    return;
                }
                offset[pos] += 1;
                if offset[pos] <= 1 {
                    break;
                }
                offset[pos] = -1;
                pos += 1;
            }
        }
    }
}

impl NeighborIndex for GridIndex<'_> {
    fn region_query(&self, q: &Point) -> Vec<usize> {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        let base = Self::cell_of(q, self.cell_size);
        let mut hits = Vec::new();
        self.for_each_neighbor_cell(&base, &mut |cell| {
            if let Some(indices) = self.cells.get(cell) {
                for &i in indices {
                    if dist_sq(&self.points[i], q) <= self.eps_sq {
                        hits.push(i);
                    }
                }
            }
        });
        hits.sort_unstable();
        hits
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pts(coords: &[&[i64]]) -> Vec<Point> {
        coords.iter().map(|c| Point::from(*c)).collect()
    }

    #[test]
    fn linear_index_includes_self_and_boundary() {
        let points = pts(&[&[0, 0], &[3, 4], &[10, 10]]);
        let idx = LinearIndex::new(&points, 25);
        // Boundary: dist² == eps² counts (≤, per the paper's `≤ Eps`).
        assert_eq!(idx.region_query(&points[0]), vec![0, 1]);
        assert_eq!(idx.region_query(&points[2]), vec![2]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn query_point_need_not_be_indexed() {
        let points = pts(&[&[0, 0], &[2, 0]]);
        let idx = LinearIndex::new(&points, 4);
        let external = Point::from([1i64, 0].as_slice());
        assert_eq!(idx.region_query(&external), vec![0, 1]);
    }

    #[test]
    fn grid_matches_linear_on_random_data() {
        let mut rng = StdRng::seed_from_u64(7);
        for dim in [1usize, 2, 3, 4] {
            let points: Vec<Point> = (0..200)
                .map(|_| Point::new((0..dim).map(|_| rng.random_range(-50..=50)).collect()))
                .collect();
            for eps_sq in [1u64, 9, 100, 2500] {
                let linear = LinearIndex::new(&points, eps_sq);
                let grid = GridIndex::new(&points, eps_sq);
                for q in points.iter().take(40) {
                    assert_eq!(
                        grid.region_query(q),
                        linear.region_query(q),
                        "dim={dim} eps²={eps_sq}"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_handles_negative_coordinates() {
        let points = pts(&[&[-7, -7], &[-6, -7], &[7, 7]]);
        let grid = GridIndex::new(&points, 4);
        assert_eq!(grid.region_query(&points[0]), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "positive radius")]
    fn zero_radius_grid_panics() {
        let points = pts(&[&[0]]);
        let _ = GridIndex::new(&points, 0);
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_grid_panics() {
        let points: Vec<Point> = vec![];
        let _ = GridIndex::new(&points, 1);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let points = pts(&[&[1, 1], &[1, 1], &[1, 1]]);
        let grid = GridIndex::new(&points, 1);
        assert_eq!(grid.region_query(&points[0]), vec![0, 1, 2]);
    }
}
