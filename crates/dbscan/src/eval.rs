//! Clustering-agreement metrics for the correctness experiments (E4).

use crate::algo::{Clustering, Label};
use std::collections::HashMap;

/// `true` iff two clusterings are the same partition: identical noise sets
/// and a bijection between cluster ids.
pub fn same_partition(a: &Clustering, b: &Clustering) -> bool {
    if a.labels.len() != b.labels.len() {
        return false;
    }
    let mut a_to_b: HashMap<usize, usize> = HashMap::new();
    let mut b_to_a: HashMap<usize, usize> = HashMap::new();
    for (la, lb) in a.labels.iter().zip(&b.labels) {
        match (la, lb) {
            (Label::Noise, Label::Noise) => {}
            (Label::Cluster(x), Label::Cluster(y)) => {
                if *a_to_b.entry(*x).or_insert(*y) != *y {
                    return false;
                }
                if *b_to_a.entry(*y).or_insert(*x) != *x {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

/// Rand index in `[0, 1]`: fraction of point pairs on which the two
/// clusterings agree (same-cluster vs different-cluster). Noise points are
/// treated as singleton clusters, so two identical clusterings always score
/// exactly 1.
pub fn rand_index(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(a.labels.len(), b.labels.len(), "clusterings must align");
    let n = a.labels.len();
    if n < 2 {
        return 1.0;
    }
    let key = |labels: &[Label], i: usize| match labels[i] {
        // Singleton id disjoint from real cluster ids.
        Label::Noise => (1usize, i),
        Label::Cluster(c) => (0usize, c),
    };
    let mut agreements = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            let same_a = key(&a.labels, i) == key(&a.labels, j);
            let same_b = key(&b.labels, i) == key(&b.labels, j);
            agreements += (same_a == same_b) as u64;
            total += 1;
        }
    }
    agreements as f64 / total as f64
}

/// Adjusted Rand index: the Rand index corrected for chance agreement,
/// so random labelings score ≈ 0 and identical partitions score 1. Noise
/// points are treated as singleton clusters, consistent with
/// [`rand_index`].
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(a.labels.len(), b.labels.len(), "clusterings must align");
    let n = a.labels.len();
    if n < 2 {
        return 1.0;
    }
    // Effective cluster ids with noise as singletons.
    let ids = |c: &Clustering| -> Vec<usize> {
        let base = c.num_clusters;
        let mut next_singleton = base;
        c.labels
            .iter()
            .map(|l| match l {
                Label::Cluster(id) => *id,
                Label::Noise => {
                    let id = next_singleton;
                    next_singleton += 1;
                    id
                }
            })
            .collect()
    };
    let a_ids = ids(a);
    let b_ids = ids(b);

    // Contingency table.
    let mut table: HashMap<(usize, usize), u64> = HashMap::new();
    let mut a_sums: HashMap<usize, u64> = HashMap::new();
    let mut b_sums: HashMap<usize, u64> = HashMap::new();
    for (&x, &y) in a_ids.iter().zip(&b_ids) {
        *table.entry((x, y)).or_insert(0) += 1;
        *a_sums.entry(x).or_insert(0) += 1;
        *b_sums.entry(y).or_insert(0) += 1;
    }
    let choose2 = |v: u64| -> f64 { (v * v.saturating_sub(1)) as f64 / 2.0 };
    let sum_table: f64 = table.values().map(|&v| choose2(v)).sum();
    let sum_a: f64 = a_sums.values().map(|&v| choose2(v)).sum();
    let sum_b: f64 = b_sums.values().map(|&v| choose2(v)).sum();
    let total_pairs = choose2(n as u64);
    let expected = sum_a * sum_b / total_pairs;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < f64::EPSILON {
        // Degenerate (e.g. everything singleton in both): define as 1 when
        // the partitions agree pairwise, else 0.
        return if sum_table == max_index { 1.0 } else { 0.0 };
    }
    (sum_table - expected) / (max_index - expected)
}

/// Purity of a predicted clustering against ground-truth classes: each
/// cluster votes for its majority class; noise points count as errors.
/// Returns a value in `[0, 1]`.
pub fn purity(predicted: &Clustering, truth: &[usize]) -> f64 {
    assert_eq!(predicted.labels.len(), truth.len(), "lengths must align");
    if truth.is_empty() {
        return 1.0;
    }
    let mut votes: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (label, &class) in predicted.labels.iter().zip(truth) {
        if let Label::Cluster(c) = label {
            *votes.entry(*c).or_default().entry(class).or_insert(0) += 1;
        }
    }
    let correct: usize = votes
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustering(labels: Vec<Label>) -> Clustering {
        let num_clusters = labels
            .iter()
            .filter_map(|l| l.cluster())
            .max()
            .map_or(0, |m| m + 1);
        Clustering {
            labels,
            num_clusters,
        }
    }

    use Label::{Cluster as C, Noise as N};

    #[test]
    fn identical_clusterings_match() {
        let a = clustering(vec![C(0), C(0), C(1), N]);
        assert!(same_partition(&a, &a));
        assert_eq!(rand_index(&a, &a), 1.0);
    }

    #[test]
    fn relabeled_clusters_still_same_partition() {
        let a = clustering(vec![C(0), C(0), C(1), N]);
        let b = clustering(vec![C(1), C(1), C(0), N]);
        assert!(same_partition(&a, &b));
        assert_eq!(rand_index(&a, &b), 1.0);
    }

    #[test]
    fn merged_clusters_are_not_same_partition() {
        let a = clustering(vec![C(0), C(0), C(1), C(1)]);
        let b = clustering(vec![C(0), C(0), C(0), C(0)]);
        assert!(!same_partition(&a, &b));
        assert!(!same_partition(&b, &a));
        // 6 pairs; a and b agree on (0,1) and (2,3): 4 disagreements.
        let ri = rand_index(&a, &b);
        assert!((ri - 2.0 / 6.0).abs() < 1e-12, "ri = {ri}");
    }

    #[test]
    fn noise_mismatch_detected() {
        let a = clustering(vec![C(0), N]);
        let b = clustering(vec![C(0), C(0)]);
        assert!(!same_partition(&a, &b));
        assert_eq!(rand_index(&a, &b), 0.0);
    }

    #[test]
    fn two_noise_points_are_distinct_singletons() {
        // Both clusterings call points 0 and 1 noise: they agree that the
        // pair is split, so the Rand index is 1.
        let a = clustering(vec![N, N]);
        let b = clustering(vec![N, N]);
        assert!(same_partition(&a, &b));
        assert_eq!(rand_index(&a, &b), 1.0);
    }

    #[test]
    fn length_mismatch_is_not_same_partition() {
        let a = clustering(vec![C(0)]);
        let b = clustering(vec![C(0), C(0)]);
        assert!(!same_partition(&a, &b));
    }

    #[test]
    fn singleton_inputs() {
        let a = clustering(vec![C(0)]);
        assert_eq!(rand_index(&a, &a), 1.0);
        let empty = clustering(vec![]);
        assert_eq!(rand_index(&empty, &empty), 1.0);
        assert!(same_partition(&empty, &empty));
    }

    #[test]
    fn purity_perfect_and_imperfect() {
        let truth = vec![0, 0, 1, 1];
        let perfect = clustering(vec![C(5), C(5), C(9), C(9)]);
        assert_eq!(purity(&perfect, &truth), 1.0);
        let one_wrong = clustering(vec![C(0), C(0), C(0), C(1)]);
        assert_eq!(purity(&one_wrong, &truth), 0.75);
        let all_noise = clustering(vec![N, N, N, N]);
        assert_eq!(purity(&all_noise, &truth), 0.0);
    }

    #[test]
    fn purity_counts_noise_as_error() {
        let truth = vec![0, 0, 0, 0];
        let half_noise = clustering(vec![C(0), C(0), N, N]);
        assert_eq!(purity(&half_noise, &truth), 0.5);
    }

    #[test]
    fn ari_identical_partitions_score_one() {
        let a = clustering(vec![C(0), C(0), C(1), C(1), N]);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        let relabeled = clustering(vec![C(1), C(1), C(0), C(0), N]);
        assert!((adjusted_rand_index(&a, &relabeled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_penalizes_merging_more_than_rand_index() {
        let a = clustering(vec![C(0), C(0), C(0), C(1), C(1), C(1)]);
        let merged = clustering(vec![C(0); 6]);
        let ri = rand_index(&a, &merged);
        let ari = adjusted_rand_index(&a, &merged);
        assert!(ari < ri, "ari {ari} vs ri {ri}");
        assert!(ari <= 0.0 + 1e-12, "merging everything has no skill: {ari}");
    }

    #[test]
    fn ari_textbook_value() {
        // Classic example: partitions {1,1,2,2,3,3} vs {1,1,1,2,2,2}... use
        // a hand-computed case instead: a = [0,0,1,1], b = [0,1,0,1].
        // Contingency: all cells 1 => sum_table = 0; sum_a = sum_b = 2;
        // expected = 4/6; max = 2; ARI = (0 - 2/3)/(2 - 2/3) = -0.5.
        let a = clustering(vec![C(0), C(0), C(1), C(1)]);
        let b = clustering(vec![C(0), C(1), C(0), C(1)]);
        let ari = adjusted_rand_index(&a, &b);
        assert!((ari - (-0.5)).abs() < 1e-12, "ari = {ari}");
    }

    #[test]
    fn ari_all_singletons_degenerate_case() {
        let a = clustering(vec![N, N, N]);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }
}
