//! The sorted k-distance heuristic for choosing `Eps` (Ester et al. '96,
//! §4.2): plot each point's distance to its k-th nearest neighbor in
//! descending order; the first "valley" separates noise from cluster points
//! and its height is a good `Eps`.
//!
//! The privacy paper inherits `Eps`/`MinPts` as given global parameters, so
//! in a deployment each party would run this heuristic on its *own* data
//! (or the parties would agree out of band). Providing it here completes
//! the substrate a practitioner needs to actually parameterize a run.

use crate::point::{dist_sq, Point};

/// Squared distance from each point to its k-th nearest *other* neighbor,
/// sorted in descending order — the classic k-dist graph (as squared
/// values, consistent with the lattice arithmetic everywhere else).
///
/// # Panics
/// Panics if `k == 0` or `k >= points.len()`.
pub fn k_distance_profile(points: &[Point], k: usize) -> Vec<u64> {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k < points.len(),
        "k = {k} needs at least {} points, have {}",
        k + 1,
        points.len()
    );
    let mut profile: Vec<u64> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut dists: Vec<u64> = points
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| dist_sq(p, q))
                .collect();
            dists.sort_unstable();
            dists[k - 1]
        })
        .collect();
    profile.sort_unstable_by(|a, b| b.cmp(a));
    profile
}

/// Fraction of points assumed to sit inside clusters (i.e. not in the
/// noisy head of the k-dist graph) by [`suggest_eps_sq`].
pub const DEFAULT_CORE_FRACTION: f64 = 0.90;

/// Suggests `eps_sq` from the k-dist graph with the
/// [`DEFAULT_CORE_FRACTION`] rule.
pub fn suggest_eps_sq(points: &[Point], k: usize) -> u64 {
    suggest_eps_sq_with_fraction(points, k, DEFAULT_CORE_FRACTION)
}

/// Suggests `eps_sq` such that `core_fraction` of all points have their
/// k-th nearest neighbor within Eps — Ester et al.'s interactive "cut the
/// sorted k-dist graph below the noise head", automated with an explicit
/// head-size assumption.
///
/// The suggestion is a starting point, not an oracle — exactly how the
/// original paper positions the heuristic.
///
/// # Panics
/// Panics if `core_fraction` is outside `(0, 1]`.
pub fn suggest_eps_sq_with_fraction(points: &[Point], k: usize, core_fraction: f64) -> u64 {
    assert!(
        core_fraction > 0.0 && core_fraction <= 1.0,
        "core_fraction must be in (0, 1], got {core_fraction}"
    );
    let profile = k_distance_profile(points, k);
    // profile is sorted descending: index i means (i) points have a larger
    // k-dist. Cutting at the head of size (1 - fraction)·n keeps
    // `fraction` of points at or below the suggested radius.
    let head = ((1.0 - core_fraction) * profile.len() as f64).floor() as usize;
    profile[head.min(profile.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{dbscan, DbscanParams};
    use crate::datagen::standard_blobs;
    use crate::point::Quantizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pts(coords: &[&[i64]]) -> Vec<Point> {
        coords.iter().map(|c| Point::from(*c)).collect()
    }

    #[test]
    fn profile_is_sorted_descending_and_correct() {
        // Chain 0-1-3-7: 1-NN squared distances are 1,1,4,16.
        let points = pts(&[&[0], &[1], &[3], &[7]]);
        let profile = k_distance_profile(&points, 1);
        assert_eq!(profile, vec![16, 4, 1, 1]);
    }

    #[test]
    fn second_nearest_profile() {
        let points = pts(&[&[0], &[1], &[3], &[7]]);
        // 2-NN squared: from 0 -> {1,9,49} -> 9; from 1 -> {1,4,36} -> 4;
        // from 3 -> {4,9,16} -> 9; from 7 -> {16,36,49} -> 36.
        let profile = k_distance_profile(&points, 2);
        assert_eq!(profile, vec![36, 9, 9, 4]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k_zero_rejected() {
        let _ = k_distance_profile(&pts(&[&[0], &[1]]), 0);
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn k_too_large_rejected() {
        let _ = k_distance_profile(&pts(&[&[0], &[1]]), 2);
    }

    #[test]
    fn suggestion_recovers_blob_clusters() {
        let mut rng = StdRng::seed_from_u64(12);
        let quantizer = Quantizer::new(1.0, 100);
        let (points, _) = standard_blobs(&mut rng, 40, 3, 2, quantizer);
        let min_pts = 4;
        let eps_sq = suggest_eps_sq(&points, min_pts - 1);
        assert!(eps_sq > 0);
        let clustering = dbscan(&points, DbscanParams { eps_sq, min_pts });
        // The heuristic must land in a regime that separates the 3 blobs
        // without shattering them.
        assert_eq!(
            clustering.num_clusters, 3,
            "eps_sq = {eps_sq} gave {} clusters",
            clustering.num_clusters
        );
        let noise_frac = clustering.noise_count() as f64 / points.len() as f64;
        assert!(noise_frac < 0.2, "noise fraction {noise_frac}");
    }

    #[test]
    fn flat_profile_returns_the_common_distance() {
        // Evenly spaced grid: every 1-NN distance identical.
        let points: Vec<Point> = (0..10).map(|i| Point::new(vec![i * 2])).collect();
        let eps_sq = suggest_eps_sq(&points, 1);
        assert_eq!(eps_sq, 4);
    }

    #[test]
    fn fraction_one_keeps_every_point_core() {
        let points = pts(&[&[0], &[1], &[3], &[7]]);
        // fraction 1.0 => head 0 => the largest k-dist: everything within.
        assert_eq!(suggest_eps_sq_with_fraction(&points, 1, 1.0), 16);
    }

    #[test]
    #[should_panic(expected = "core_fraction")]
    fn zero_fraction_rejected() {
        let _ = suggest_eps_sq_with_fraction(&pts(&[&[0], &[1]]), 1, 0.0);
    }
}
