//! Candidate pruning: coarse public bands that bound which record pairs
//! can possibly be Eps-neighbors, so the secure protocols only compare
//! candidates instead of all `n(n−1)/2` pairs.
//!
//! The math is a coarsened version of the [`crate::index::GridIndex`]
//! cell argument. Fix a *band width* `w = coarseness · ceil(sqrt(eps²))`
//! (so `w ≥ eps` for every `coarseness ≥ 1`) and quantize each coordinate
//! to `floor(c / w)`. Two records whose bands differ by at least 2 in any
//! dimension have a per-coordinate gap of at least `w + 1 > eps` there, so
//! their squared distance strictly exceeds `eps²`: pruning them away is
//! *exact* — it can never drop a true neighbor. Conversely every true
//! neighbor pair satisfies `|c₁ − c₂| ≤ eps ≤ w` per coordinate and hence
//! lands in adjacent-or-equal bands, so the 3^d neighboring-band union is
//! a sound candidate set for any `coarseness ≥ 1`.
//!
//! Larger coarseness discloses less (fewer, fatter bands) at the price of
//! larger candidate sets; `coarseness = 1` gives the tightest exact
//! pruning. What a run discloses is recorded by the protocol layer as
//! typed `LeakageLog` events — this module is plaintext geometry only.

use crate::point::{isqrt, Point};
use std::collections::HashMap;

/// Version stamp of the pruning discipline: the band-width formula, cell
/// quantization, and candidate-set semantics above. Recorded in the bench
/// trajectory so a reader knows which builds the E13 scaling rows are
/// comparable with.
pub const PRUNING_DISCIPLINE: &str = "grid-bands-v1";

/// Candidate-generation policy, agreed by both parties in the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pruning {
    /// The paper's all-pairs evaluation: every record pair is compared
    /// securely. No extra disclosure, `O(n²)` secure comparisons.
    Exhaustive,
    /// Grid-derived candidate sets: only records whose coarse bands
    /// (width `coarseness · ceil(eps)`) are adjacent-or-equal get
    /// compared. Exact for every `coarseness ≥ 1` — labels match the
    /// exhaustive run — but the disclosed bands/candidate cardinalities
    /// are new, explicitly ledgered leakage.
    Grid {
        /// Band width multiplier (≥ 1). 1 = tightest pruning, larger
        /// values coarsen the disclosed bands.
        coarseness: u32,
    },
}

impl Pruning {
    /// Wire encoding for the handshake: 0 = exhaustive, `c` = grid with
    /// coarseness `c`.
    pub fn tag(self) -> u64 {
        match self {
            Pruning::Exhaustive => 0,
            Pruning::Grid { coarseness } => u64::from(coarseness),
        }
    }

    /// Inverse of [`Pruning::tag`]. Returns `None` for tags that do not
    /// fit a `u32` coarseness.
    pub fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(Pruning::Exhaustive),
            c => u32::try_from(c)
                .ok()
                .map(|coarseness| Pruning::Grid { coarseness }),
        }
    }

    /// Human-readable policy name for configs, stamps, and errors.
    pub fn name(self) -> String {
        match self {
            Pruning::Exhaustive => "exhaustive".to_string(),
            Pruning::Grid { coarseness } => format!("grid/{coarseness}"),
        }
    }

    /// `true` when this policy prunes (is not the exhaustive fallback).
    pub fn is_grid(self) -> bool {
        matches!(self, Pruning::Grid { .. })
    }
}

/// The public band width `coarseness · ceil(sqrt(eps²))` — the coarse
/// quantization step every disclosed band is aligned to.
///
/// # Panics
/// Panics if `coarseness` is zero or `eps_sq` is zero (a zero-width band
/// quantizes nothing; configuration validation rejects both upstream).
pub fn band_width(eps_sq: u64, coarseness: u32) -> i64 {
    assert!(coarseness >= 1, "band coarseness must be at least 1");
    assert!(eps_sq > 0, "band quantization needs a positive radius");
    let root = isqrt(eps_sq);
    let ceil_eps = (root + u64::from(root * root < eps_sq)) as i64;
    ceil_eps * i64::from(coarseness)
}

/// Quantizes a coordinate vector to its coarse band cell (per-coordinate
/// floored division by `width`).
pub fn coarse_cell(coords: &[i64], width: i64) -> Vec<i64> {
    coords.iter().map(|&c| c.div_euclid(width)).collect()
}

/// `true` if two band cells are adjacent-or-equal in every dimension —
/// the sound candidate criterion (see the module docs for the proof).
pub fn bands_intersect(a: &[i64], b: &[i64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| (x - y).abs() <= 1)
}

/// Hash-grid over coarse band cells: near-constant-time candidate lookup
/// (union of the 3^d adjacent cells), the piece that makes candidate
/// generation near-linear instead of an `O(n)` scan per query.
pub struct CoarseGrid {
    dim: usize,
    width: i64,
    cells: HashMap<Vec<i64>, Vec<usize>>,
    len: usize,
}

impl CoarseGrid {
    /// Indexes `points` by their coarse band cell of width `width`.
    pub fn from_points(points: &[Point], width: i64) -> Self {
        Self::from_cells(
            points
                .iter()
                .map(|p| coarse_cell(p.coords(), width))
                .collect(),
            width,
        )
    }

    /// Indexes pre-quantized band cells directly — the constructor the
    /// vertical/arbitrary modes use after merging both parties' disclosed
    /// band tables. All cells must share one dimension.
    pub fn from_cells(cells: Vec<Vec<i64>>, width: i64) -> Self {
        let dim = cells.first().map_or(1, Vec::len);
        let len = cells.len();
        let mut map: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
        for (i, cell) in cells.into_iter().enumerate() {
            debug_assert_eq!(cell.len(), dim, "band cells must share a dimension");
            map.entry(cell).or_default().push(i);
        }
        CoarseGrid {
            dim,
            width,
            cells: map,
            len,
        }
    }

    /// The band width the grid was built with.
    pub fn width(&self) -> i64 {
        self.width
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the grid indexes no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct occupied band cells.
    pub fn distinct_cells(&self) -> usize {
        self.cells.len()
    }

    /// All indexed records whose band is adjacent-or-equal to `cell`, in
    /// ascending index order (the deterministic order both parties need
    /// to stay in lockstep).
    pub fn candidates(&self, cell: &[i64]) -> Vec<usize> {
        assert_eq!(cell.len(), self.dim, "query band dimension mismatch");
        let mut hits = Vec::new();
        let mut offset = vec![-1i64; self.dim];
        loop {
            let probe: Vec<i64> = cell.iter().zip(&offset).map(|(b, o)| b + o).collect();
            if let Some(indices) = self.cells.get(&probe) {
                hits.extend_from_slice(indices);
            }
            // Odometer increment over {-1, 0, 1}^dim.
            let mut pos = 0;
            loop {
                if pos == self.dim {
                    hits.sort_unstable();
                    return hits;
                }
                offset[pos] += 1;
                if offset[pos] <= 1 {
                    break;
                }
                offset[pos] = -1;
                pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::dist_sq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tag_roundtrip() {
        for p in [
            Pruning::Exhaustive,
            Pruning::Grid { coarseness: 1 },
            Pruning::Grid { coarseness: 7 },
        ] {
            assert_eq!(Pruning::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Pruning::from_tag(u64::MAX), None);
        assert!(!Pruning::Exhaustive.is_grid());
        assert!(Pruning::Grid { coarseness: 2 }.is_grid());
        assert_eq!(Pruning::Grid { coarseness: 3 }.name(), "grid/3");
    }

    #[test]
    fn band_width_is_coarsened_ceil_eps() {
        assert_eq!(band_width(25, 1), 5);
        assert_eq!(band_width(26, 1), 6); // ceil(sqrt(26)) = 6
        assert_eq!(band_width(25, 3), 15);
    }

    #[test]
    fn band_intersection_is_sound_and_prunes() {
        // Within-eps pairs always land in adjacent-or-equal bands; pairs
        // pruned away are provably farther than eps.
        let mut rng = StdRng::seed_from_u64(11);
        for eps_sq in [4u64, 25, 81] {
            for coarseness in [1u32, 2, 4] {
                let w = band_width(eps_sq, coarseness);
                let points: Vec<Point> = (0..150)
                    .map(|_| {
                        Point::new(vec![rng.random_range(-60..=60), rng.random_range(-60..=60)])
                    })
                    .collect();
                for a in &points {
                    for b in &points {
                        let ca = coarse_cell(a.coords(), w);
                        let cb = coarse_cell(b.coords(), w);
                        if dist_sq(a, b) <= eps_sq {
                            assert!(
                                bands_intersect(&ca, &cb),
                                "neighbor pair pruned: {a:?} {b:?} eps²={eps_sq} w={w}"
                            );
                        }
                        if !bands_intersect(&ca, &cb) {
                            assert!(
                                dist_sq(a, b) > eps_sq,
                                "pruned pair within eps: {a:?} {b:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn coarse_grid_candidates_match_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let points: Vec<Point> = (0..200)
            .map(|_| Point::new(vec![rng.random_range(-50..=50), rng.random_range(-50..=50)]))
            .collect();
        let w = band_width(49, 1);
        let grid = CoarseGrid::from_points(&points, w);
        assert_eq!(grid.len(), 200);
        assert!(!grid.is_empty());
        assert!(grid.distinct_cells() >= 1);
        assert_eq!(grid.width(), w);
        for q in points.iter().take(30) {
            let qc = coarse_cell(q.coords(), w);
            let want: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| bands_intersect(&qc, &coarse_cell(p.coords(), w)))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(grid.candidates(&qc), want);
        }
    }

    #[test]
    fn from_cells_matches_from_points() {
        let points = vec![
            Point::from([-7i64, 3].as_slice()),
            Point::from([0i64, 0].as_slice()),
            Point::from([12i64, -5].as_slice()),
        ];
        let w = band_width(9, 2);
        let cells: Vec<Vec<i64>> = points.iter().map(|p| coarse_cell(p.coords(), w)).collect();
        let a = CoarseGrid::from_points(&points, w);
        let b = CoarseGrid::from_cells(cells.clone(), w);
        for c in &cells {
            assert_eq!(a.candidates(c), b.candidates(c));
        }
    }

    #[test]
    #[should_panic(expected = "coarseness")]
    fn zero_coarseness_panics() {
        let _ = band_width(25, 0);
    }

    #[test]
    #[should_panic(expected = "positive radius")]
    fn zero_radius_panics() {
        let _ = band_width(0, 1);
    }
}
