//! Property-based tests for the SMC primitives: the faithful Yao protocol
//! and both comparison backends must implement exact integer comparison for
//! arbitrary in-domain inputs, and the multiplication protocols must
//! satisfy their masking identities.

use ppds_bigint::{BigInt, BigUint};
use ppds_paillier::Keypair;
use ppds_smc::compare::{compare_alice, compare_bob, CmpOp, Comparator, ComparisonDomain};
use ppds_smc::millionaires::{yao_alice, yao_bob, YaoConfig};
use ppds_smc::multiplication::{
    dot_keyholder, dot_peer, mul_batch_keyholder, mul_batch_peer, zero_sum_masks,
};
use ppds_smc::ProtocolContext;
use ppds_transport::duplex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(128, &mut StdRng::seed_from_u64(7)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn yao_decides_lt_exactly(
        n0 in 2u64..40,
        i_frac in 0.0f64..1.0,
        j_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let i = 1 + (i_frac * (n0 - 1) as f64) as u64;
        let j = 1 + (j_frac * (n0 - 1) as f64) as u64;
        let config = YaoConfig { n0 };
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            yao_alice(&mut achan, keypair(), i, &config, &ProtocolContext::new(seed)).unwrap()
        });
        let bob_view = yao_bob(
            &mut bchan,
            &keypair().public,
            j,
            &config,
            &ProtocolContext::new(seed.wrapping_add(1)),
        )
        .unwrap();
        let alice_view = alice.join().unwrap();
        prop_assert_eq!(alice_view, i < j);
        prop_assert_eq!(bob_view, i < j);
    }

    #[test]
    fn comparators_agree_on_signed_domains(
        lo in -60i64..0,
        span in 1i64..60,
        a_off in 0i64..60,
        b_off in 0i64..60,
        leq in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let hi = lo + span;
        let domain = ComparisonDomain::new(lo, hi);
        let a = lo + a_off % (span + 1);
        let b = lo + b_off % (span + 1);
        let op = if leq { CmpOp::Leq } else { CmpOp::Lt };
        let expect = if leq { a <= b } else { a < b };
        for comparator in [Comparator::Yao, Comparator::Ideal] {
            let (mut achan, mut bchan) = duplex();
            let alice = std::thread::spawn(move || {
                let actx = ProtocolContext::new(seed);
                compare_alice(comparator, &mut achan, keypair(), a, op, &domain, false, &actx)
                    .unwrap()
            });
            let bctx = ProtocolContext::new(seed.wrapping_add(1));
            let bob_view = compare_bob(
                comparator,
                &mut bchan,
                &keypair().public,
                b,
                op,
                &domain,
                false,
                &bctx,
            )
            .unwrap();
            let alice_view = alice.join().unwrap();
            prop_assert_eq!(alice_view, expect, "{:?} {} vs {}", comparator, a, b);
            prop_assert_eq!(bob_view, expect);
        }
    }

    #[test]
    fn batched_multiplication_masks_cancel(
        xs in proptest::collection::vec(-100i64..100, 1..6),
        ys_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut r = StdRng::seed_from_u64(ys_seed);
        use rand::Rng as _;
        let ys: Vec<i64> = xs.iter().map(|_| r.random_range(-100..100)).collect();
        let xs_big: Vec<BigInt> = xs.iter().map(|&v| BigInt::from_i64(v)).collect();
        let ys_big: Vec<BigInt> = ys.iter().map(|&v| BigInt::from_i64(v)).collect();

        let mut mask_rng = StdRng::seed_from_u64(seed);
        let masks = zero_sum_masks(&mut mask_rng, xs.len(), &BigUint::from_u64(1 << 20));

        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs_big.clone();
        let keyholder = std::thread::spawn(move || {
            let kctx = ProtocolContext::new(seed.wrapping_add(1));
            mul_batch_keyholder(&mut kchan, keypair(), &xs2, None, &kctx).unwrap()
        });
        let pctx = ProtocolContext::new(seed.wrapping_add(2));
        mul_batch_peer(&mut pchan, &keypair().public, &ys_big, &masks, None, &pctx).unwrap();
        let ws = keyholder.join().unwrap();

        // Σ w_i = Σ x_i·y_i exactly (zero-sum masks cancel).
        let sum = ws.iter().fold(BigInt::zero(), |acc, w| &acc + w);
        let expect: i64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        prop_assert_eq!(sum, BigInt::from_i64(expect));
    }

    #[test]
    fn dot_product_identity_holds(
        xs in proptest::collection::vec(-50i64..50, 1..5),
        ys_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut r = StdRng::seed_from_u64(ys_seed);
        use rand::Rng as _;
        let ys: Vec<i64> = xs.iter().map(|_| r.random_range(-50..50)).collect();
        let xs_big: Vec<BigInt> = xs.iter().map(|&v| BigInt::from_i64(v)).collect();
        let ys_big: Vec<BigInt> = ys.iter().map(|&v| BigInt::from_i64(v)).collect();

        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs_big.clone();
        let keyholder = std::thread::spawn(move || {
            dot_keyholder(&mut kchan, keypair(), &xs2, &ProtocolContext::new(seed)).unwrap()
        });
        let v = dot_peer(
            &mut pchan,
            &keypair().public,
            &ys_big,
            &BigUint::from_u64(1 << 24),
            &ProtocolContext::new(seed.wrapping_add(1)),
        )
        .unwrap();
        let u = keyholder.join().unwrap();
        let expect: i64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        prop_assert_eq!(&u - &v, BigInt::from_i64(expect));
    }
}
