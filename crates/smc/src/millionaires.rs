//! Yao's Millionaires' Problem Protocol (Algorithm 1, §3.8).
//!
//! Alice holds `i`, Bob holds `j`, both in `[1, n0]`; both parties learn
//! whether `i < j` and nothing else. The 1982 protocol needs a public-key
//! scheme the key holder can invert on arbitrary group elements; following
//! the paper we instantiate `Ea/Da` with Alice's Paillier key:
//!
//! 1. Bob picks a random `x`, privately computes `k = Ea(x)` (a point of
//!    `Z_{n²}`), and sends Alice the integer `k - j + 1`.
//! 2. Alice decrypts the `n0` consecutive integers `k - j + u`, `u = 1..n0`,
//!    obtaining `y_u` (note `y_j = x`).
//! 3. Alice draws random primes `p` of `N/2` bits until all `z_u = y_u mod p`
//!    pairwise differ by at least 2 (mod p, circularly).
//! 4. Alice sends `p` and the sequence `z_1, …, z_i, z_{i+1}+1, …, z_{n0}+1`.
//! 5. Bob inspects the `j`-th value: equal to `x mod p` means `i ≥ j`,
//!    otherwise `i < j`. Bob tells Alice the conclusion.
//!
//! Communication is `O(c2·n0)` bits (`c2 = N/2`), and Alice performs `n0`
//! Paillier decryptions — the cost the paper's complexity analyses charge
//! per comparison, reproduced by experiment E7.

use crate::context::ProtocolContext;
use crate::error::SmcError;
use ppds_bigint::{prime, random, BigUint};
use ppds_paillier::{Ciphertext, Keypair, PublicKey};
use ppds_transport::Channel;

/// Parameters agreed by both parties before running the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YaoConfig {
    /// Domain bound: inputs live in `[1, n0]`.
    pub n0: u64,
}

/// Hard cap on the faithful protocol's domain. One comparison costs `n0`
/// decryptions, so beyond this the caller should switch to
/// [`crate::compare::Comparator::Ideal`].
pub const MAX_YAO_DOMAIN: u64 = 1 << 22;

/// Attempts at finding a prime with the required spacing before giving up.
/// With an `N/2`-bit prime and `n0 ≤ 2^22` values the first prime works
/// except with probability ~`n0²·2^(1-N/2)`.
const MAX_PRIME_ATTEMPTS: usize = 64;

fn check_input(value: u64, config: &YaoConfig) -> Result<(), SmcError> {
    if value < 1 || value > config.n0 {
        return Err(SmcError::DomainViolation {
            value: value as i64,
            lo: 1,
            hi: config.n0 as i64,
        });
    }
    if config.n0 > MAX_YAO_DOMAIN {
        return Err(SmcError::protocol(format!(
            "Yao domain n0 = {} exceeds MAX_YAO_DOMAIN = {MAX_YAO_DOMAIN}; use the Ideal comparator",
            config.n0
        )));
    }
    Ok(())
}

/// Alice's side: inputs `i`, learns whether `i < j`. `ctx` is the
/// record scope of this comparison (the prime search draws from its leaf
/// stream).
pub fn yao_alice<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    i: u64,
    config: &YaoConfig,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    check_input(i, config)?;
    let mut rng = ctx.rng();
    let n0 = config.n0;

    // Step 2-3: receive k - j + 1, decrypt the n0 consecutive candidates.
    let base: BigUint = chan.recv()?;
    let mut ys = Vec::with_capacity(n0 as usize);
    for u in 0..n0 {
        let candidate = &base + u;
        ys.push(decrypt_or_filler(keypair, candidate, u));
    }

    // Step 4: find a prime p of N/2 bits giving pairwise spacing ≥ 2.
    let half_bits = (keypair.public.bits() / 2).max(16);
    let mut p = None;
    for _ in 0..MAX_PRIME_ATTEMPTS {
        let candidate = prime::gen_prime(&mut rng, half_bits);
        let zs: Vec<BigUint> = ys.iter().map(|y| y % &candidate).collect();
        if all_spaced_by_two(&zs, &candidate) {
            p = Some((candidate, zs));
            break;
        }
    }
    let (p, zs) =
        p.ok_or_else(|| SmcError::protocol("could not find a prime with pairwise spacing >= 2"))?;

    // Step 5: send p and z_1..z_i, z_{i+1}+1, ..., z_{n0}+1 (mod p).
    let mut sequence = Vec::with_capacity(n0 as usize);
    for (idx, z) in zs.into_iter().enumerate() {
        let u = idx as u64 + 1;
        if u <= i {
            sequence.push(z);
        } else {
            sequence.push((&z + 1u64).div_rem(&p).1);
        }
    }
    chan.send(&(p, sequence))?;

    // Step 7: Bob tells Alice the conclusion.
    Ok(chan.recv()?)
}

/// Bob's side: inputs `j`, learns whether `i < j`. `ctx` is the record
/// scope of this comparison.
pub fn yao_bob<C: Channel>(
    chan: &mut C,
    alice_pk: &PublicKey,
    j: u64,
    config: &YaoConfig,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    check_input(j, config)?;
    let mut rng = ctx.rng();
    let n0 = config.n0;

    // Step 1: pick x, compute k = Ea(x); retry until every probe index
    // k - j + u stays inside (0, n²) so Alice can treat them uniformly.
    let n0_big = BigUint::from_u64(n0);
    let (x, k) = loop {
        let x = random::gen_biguint_below(&mut rng, alice_pk.n());
        let k = alice_pk.encrypt(&x, &mut rng)?;
        let k_val = k.as_biguint();
        let upper = alice_pk.n_squared().checked_sub(&n0_big);
        if k_val > &n0_big && upper.is_some_and(|up| k_val < &up) {
            break (x, k);
        }
    };

    // Step 2: send k - j + 1.
    let base = k
        .as_biguint()
        .checked_sub(&BigUint::from_u64(j - 1))
        .expect("k > n0 >= j - 1");
    chan.send(&base)?;

    // Step 6: inspect the j-th value.
    let (p, sequence): (BigUint, Vec<BigUint>) = chan.recv()?;
    if sequence.len() != n0 as usize {
        return Err(SmcError::protocol(format!(
            "expected {n0} values from Alice, got {}",
            sequence.len()
        )));
    }
    if p.is_zero() || p.is_one() {
        return Err(SmcError::protocol("Alice sent a degenerate modulus"));
    }
    let x_mod_p = &x % &p;
    let i_lt_j = sequence[(j - 1) as usize] != x_mod_p;

    // Step 7: tell Alice the conclusion.
    chan.send(&i_lt_j)?;
    Ok(i_lt_j)
}

/// Decrypts an arbitrary integer as a Paillier "ciphertext", substituting a
/// deterministic filler for the (cryptographically negligible) candidates
/// that are not valid group elements. The filler only needs to be distinct
/// per index — the spacing retry loop handles accidental collisions mod p.
fn decrypt_or_filler(keypair: &Keypair, candidate: BigUint, u: u64) -> BigUint {
    let ct = Ciphertext::from_biguint(candidate);
    match keypair.private.decrypt_crt(&ct) {
        Ok(value) => value,
        Err(_) => BigUint::from_u64(u.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
    }
}

/// Checks that all values differ pairwise by at least 2 modulo `p`,
/// including the circular gap between the largest and smallest.
fn all_spaced_by_two(zs: &[BigUint], p: &BigUint) -> bool {
    if zs.len() <= 1 {
        return true;
    }
    let two = BigUint::from_u64(2);
    let mut sorted = zs.to_vec();
    sorted.sort();
    for w in sorted.windows(2) {
        if (&w[1] - &w[0]) < two {
            return false;
        }
    }
    // Circular wrap: distance from max back around to min.
    let first = &sorted[0];
    let last = &sorted[sorted.len() - 1];
    (&(p - last) + first) >= two
}

/// Modeled wire sizes of one YMPP execution, in payload bytes per message
/// (message 1: Bob→Alice probe base; message 2: Alice→Bob prime + sequence;
/// message 3: Bob→Alice conclusion). Used by the Ideal comparator to charge
/// equivalent traffic, and validated against real transcripts by the
/// `ideal_matches_real_yao_traffic` integration test.
pub fn modeled_message_sizes(key_bits: usize, n0: u64) -> (u64, u64, u64) {
    let nn_bytes = (2 * key_bits).div_ceil(8) as u64; // elements of Z_{n²}
    let half_bytes = (key_bits / 2).div_ceil(8) as u64; // elements mod p
    let msg1 = 4 + nn_bytes; // length-prefixed BigUint
                             // (p, Vec<z>) = p (4 + half) + vec count (4) + n0 * (4 + half)
    let msg2 = (4 + half_bytes) + 4 + n0 * (4 + half_bytes);
    let msg3 = 1;
    (msg1, msg2, msg3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{alice_keypair, ctx};
    use ppds_transport::duplex;

    /// Runs one YMPP execution on two threads; returns (alice_view, bob_view).
    fn run(i: u64, j: u64, n0: u64) -> (bool, bool) {
        let config = YaoConfig { n0 };
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            yao_alice(
                &mut achan,
                alice_keypair(),
                i,
                &config,
                &ctx(1000 + i * 31 + j),
            )
            .unwrap()
        });
        let bob_view = yao_bob(
            &mut bchan,
            &alice_keypair().public,
            j,
            &config,
            &ctx(2000 + i * 17 + j),
        )
        .unwrap();
        let alice_view = alice.join().unwrap();
        (alice_view, bob_view)
    }

    #[test]
    fn exhaustive_small_domain() {
        let n0 = 5;
        for i in 1..=n0 {
            for j in 1..=n0 {
                let (a, b) = run(i, j, n0);
                assert_eq!(a, i < j, "alice view for i={i}, j={j}");
                assert_eq!(b, i < j, "bob view for i={i}, j={j}");
            }
        }
    }

    #[test]
    fn boundary_values() {
        let n0 = 64;
        assert_eq!(run(1, 64, n0), (true, true));
        assert_eq!(run(64, 1, n0), (false, false));
        assert_eq!(run(1, 1, n0), (false, false));
        assert_eq!(run(64, 64, n0), (false, false));
        assert_eq!(run(32, 33, n0), (true, true));
        assert_eq!(run(33, 32, n0), (false, false));
    }

    #[test]
    fn out_of_domain_inputs_rejected() {
        let config = YaoConfig { n0: 10 };
        let (mut achan, _b) = duplex();
        assert!(matches!(
            yao_alice(&mut achan, alice_keypair(), 0, &config, &ctx(1)),
            Err(SmcError::DomainViolation { .. })
        ));
        assert!(matches!(
            yao_alice(&mut achan, alice_keypair(), 11, &config, &ctx(1)),
            Err(SmcError::DomainViolation { .. })
        ));
        let (_a, mut bchan) = duplex();
        assert!(matches!(
            yao_bob(&mut bchan, &alice_keypair().public, 0, &config, &ctx(1)),
            Err(SmcError::DomainViolation { .. })
        ));
    }

    #[test]
    fn oversized_domain_rejected() {
        let config = YaoConfig {
            n0: MAX_YAO_DOMAIN + 1,
        };
        let (mut achan, _b) = duplex();
        assert!(matches!(
            yao_alice(&mut achan, alice_keypair(), 1, &config, &ctx(2)),
            Err(SmcError::Protocol(_))
        ));
    }

    #[test]
    fn spacing_check_catches_violations() {
        let p = BigUint::from_u64(101);
        let ok = vec![
            BigUint::from_u64(5),
            BigUint::from_u64(10),
            BigUint::from_u64(50),
        ];
        assert!(all_spaced_by_two(&ok, &p));
        let adjacent = vec![BigUint::from_u64(5), BigUint::from_u64(6)];
        assert!(!all_spaced_by_two(&adjacent, &p));
        let duplicate = vec![BigUint::from_u64(5), BigUint::from_u64(5)];
        assert!(!all_spaced_by_two(&duplicate, &p));
        // Circular violation: 0 and p-1 are adjacent mod p.
        let wrap = vec![BigUint::from_u64(0), BigUint::from_u64(100)];
        assert!(!all_spaced_by_two(&wrap, &p));
        // Circular OK: 1 and p-1 differ by 2 around the wrap.
        let wrap_ok = vec![BigUint::from_u64(1), BigUint::from_u64(100)];
        assert!(all_spaced_by_two(&wrap_ok, &p));
        // Single value is trivially spaced.
        assert!(all_spaced_by_two(&[BigUint::from_u64(3)], &p));
    }

    #[test]
    fn measured_traffic_close_to_model() {
        let n0 = 32;
        let config = YaoConfig { n0 };
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            yao_alice(&mut achan, alice_keypair(), 10, &config, &ctx(77)).unwrap();
            achan.metrics()
        });
        yao_bob(&mut bchan, &alice_keypair().public, 20, &config, &ctx(78)).unwrap();
        let a_metrics = alice.join().unwrap();
        let (m1, m2, m3) = modeled_message_sizes(alice_keypair().public.bits(), n0);
        let frame = ppds_transport::FRAME_OVERHEAD_BYTES;
        let modeled_recv = m1 + m3 + 2 * frame;
        let modeled_sent = m2 + frame;
        // BigUint wire lengths are minimal-byte, so actual sizes fluctuate a
        // byte or two below the model per value.
        let recv_err = a_metrics.bytes_received.abs_diff(modeled_recv);
        let sent_err = a_metrics.bytes_sent.abs_diff(modeled_sent);
        assert!(
            recv_err <= 8,
            "recv {} vs model {modeled_recv}",
            a_metrics.bytes_received
        );
        assert!(
            sent_err as f64 <= 0.02 * modeled_sent as f64 + 8.0,
            "sent {} vs model {modeled_sent}",
            a_metrics.bytes_sent
        );
    }

    #[test]
    fn modeled_sizes_scale_linearly_in_n0() {
        let (_, m2_small, _) = modeled_message_sizes(256, 10);
        let (_, m2_big, _) = modeled_message_sizes(256, 20);
        let per_item = (m2_big - m2_small) / 10;
        assert_eq!(per_item, 4 + 16); // 128-bit residue + length prefix
    }
}
