//! Leakage accounting: every value a protocol *deliberately* reveals to a
//! party is recorded as an event.
//!
//! The paper's privacy theorems are statements about exactly this set:
//!
//! * Theorem 9 (basic horizontal): reveals "the number of points from the
//!   other party in the neighborhood of this point",
//! * Theorem 10 (vertical): reveals "the number of points in the
//!   neighborhood of this point",
//! * Theorem 11 (enhanced): reveals only "whether the number of the other
//!   party's points in the neighborhood is greater than MinPts minus own
//!   points in the neighborhood" — a single bit per core-point test — plus
//!   the pairwise distance-comparison outcomes consumed by the k-th
//!   selection.
//!
//! Tests in `ppdbscan` assert that executions produce exactly the event
//! profile the corresponding theorem permits and nothing else.

use std::fmt;

/// The two protocol parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// The first party (holds the Yao decryption key in Algorithm 1).
    Alice,
    /// The second party.
    Bob,
}

impl Party {
    /// The other party.
    pub fn peer(self) -> Party {
        match self {
            Party::Alice => Party::Bob,
            Party::Bob => Party::Alice,
        }
    }
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Party::Alice => write!(f, "Alice"),
            Party::Bob => write!(f, "Bob"),
        }
    }
}

/// One deliberate disclosure to the party owning the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeakageEvent {
    /// Learned how many of the peer's (permuted, unlinkable) points lie in
    /// some query point's Eps-neighborhood. The Theorem 9/10 leakage.
    NeighborCount {
        /// Which of the learner's queries this count belongs to.
        query: String,
        /// Number of peer points within Eps of the query point.
        count: u64,
    },
    /// Learned only whether a point is a core point (the k-th nearest
    /// shared distance is ≤ Eps). The Theorem 11 leakage.
    CorePointBit {
        /// Which query the bit decides.
        query: String,
        /// The decided core-point status.
        is_core: bool,
    },
    /// Learned the outcome of one secure comparison (YMPP output). Both
    /// parties see this bit by construction of Algorithm 1.
    ComparisonOutcome {
        /// What was being compared.
        context: String,
        /// The disclosed ordering bit.
        less_than: bool,
    },
    /// Learned that one of its own points lies in the neighborhood of some
    /// unidentified query point of the peer (what Bob learns per Algorithm 1
    /// step 6 before telling Alice the conclusion).
    OwnPointMatched {
        /// The learner's own point that matched (its own index space).
        point: String,
    },
    /// Learned the selection rank `k = MinPts - |peer's own neighbors|` the
    /// peer requested during an enhanced core-point test — the responder
    /// necessarily sees how many selection rounds it participates in.
    ThresholdRank {
        /// Which peer query requested the selection.
        query: String,
        /// The requested rank.
        k: u64,
    },
    /// Learned the coarse grid cell of one of the peer's query points —
    /// the disclosure candidate pruning trades for sub-quadratic work. The
    /// cell coordinates are quantized to the pruning band width, so the
    /// peer's point is localized only up to a `band_width`-sized box.
    PruningCellDisclosed {
        /// Which peer query the cell belongs to (responder-side label).
        query: String,
        /// The disclosed coarse cell coordinates.
        cell: Vec<i64>,
    },
    /// Learned the cardinality of the candidate set the peer derived for
    /// one of the learner's queries — an upper bound on the neighbor count
    /// the protocol would have disclosed anyway (Theorems 9/10), but
    /// disclosed *before* the secure comparisons run.
    PruningCandidateCount {
        /// Which of the learner's queries the count belongs to.
        query: String,
        /// Number of peer records surviving the band intersection.
        count: u64,
    },
    /// Learned the peer's full table of coarse band coordinates (one coarse
    /// cell per peer record over the dimensions the peer owns) — the
    /// up-front disclosure the vertical/arbitrary pruning modes make so
    /// both sides can intersect bands without touching exact coordinates.
    PruningBandsDisclosed {
        /// Number of records whose bands were received.
        records: u64,
        /// The public quantization width the bands are coarsened to.
        band_width: i64,
        /// Number of distinct bands observed in the received table.
        distinct: u64,
    },
    /// Learned a neighbor bit **linkable to an identified peer query** —
    /// the Kumar et al. \[14\]-style disclosure this paper exists to remove.
    /// Only the deliberately insecure baseline protocol
    /// (`ppdbscan::kumar`) ever emits this; it is what powers the Figure 1
    /// intersection attack.
    LinkedNeighborBit {
        /// Stable identifier of the peer's query point.
        query_id: u64,
        /// Index of the learner's own point the bit refers to.
        point: u64,
        /// Whether the peer's query point is within Eps of `point`.
        within: bool,
    },
}

impl LeakageEvent {
    /// Coarse kind string, for counting by category.
    pub fn kind(&self) -> &'static str {
        match self {
            LeakageEvent::NeighborCount { .. } => "neighbor_count",
            LeakageEvent::CorePointBit { .. } => "core_point_bit",
            LeakageEvent::ComparisonOutcome { .. } => "comparison_outcome",
            LeakageEvent::OwnPointMatched { .. } => "own_point_matched",
            LeakageEvent::ThresholdRank { .. } => "threshold_rank",
            LeakageEvent::PruningCellDisclosed { .. } => "pruning_cell",
            LeakageEvent::PruningCandidateCount { .. } => "pruning_candidates",
            LeakageEvent::PruningBandsDisclosed { .. } => "pruning_bands",
            LeakageEvent::LinkedNeighborBit { .. } => "linked_neighbor_bit",
        }
    }
}

/// Ordered record of everything one party learned beyond its own input and
/// prescribed output.
///
/// `PartialEq` compares full event sequences in order — the relation the
/// batching-parity tests use to assert that round batching widens leakage
/// by nothing (identical events, identical order, identical payloads).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LeakageLog {
    events: Vec<LeakageEvent>,
}

impl LeakageLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: LeakageEvent) {
        self.events.push(event);
    }

    /// All events in disclosure order.
    pub fn events(&self) -> &[LeakageEvent] {
        &self.events
    }

    /// Number of events of the given [`LeakageEvent::kind`].
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was disclosed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges another log (e.g. from a sub-protocol) into this one.
    pub fn absorb(&mut self, other: LeakageLog) {
        self.events.extend(other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_peer_is_involutive() {
        assert_eq!(Party::Alice.peer(), Party::Bob);
        assert_eq!(Party::Bob.peer(), Party::Alice);
        assert_eq!(Party::Alice.peer().peer(), Party::Alice);
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = LeakageLog::new();
        assert!(log.is_empty());
        log.record(LeakageEvent::NeighborCount {
            query: "a0".into(),
            count: 3,
        });
        log.record(LeakageEvent::ComparisonOutcome {
            context: "d(a0,b1) vs Eps".into(),
            less_than: true,
        });
        log.record(LeakageEvent::NeighborCount {
            query: "a1".into(),
            count: 0,
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_kind("neighbor_count"), 2);
        assert_eq!(log.count_kind("comparison_outcome"), 1);
        assert_eq!(log.count_kind("core_point_bit"), 0);
    }

    #[test]
    fn absorb_concatenates_in_order() {
        let mut a = LeakageLog::new();
        a.record(LeakageEvent::OwnPointMatched { point: "b7".into() });
        let mut b = LeakageLog::new();
        b.record(LeakageEvent::CorePointBit {
            query: "a0".into(),
            is_core: false,
        });
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[0].kind(), "own_point_matched");
        assert_eq!(a.events()[1].kind(), "core_point_bit");
    }
}
