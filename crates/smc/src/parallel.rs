//! Deterministic per-record parallelism for batched protocol stages.
//!
//! Keyed randomness ([`crate::context::ProtocolContext`]) makes every
//! record's draws independent of evaluation order, so the expensive
//! per-record ciphertext work of a batch — DGK bit encryption, masked
//! comparison vectors, Paillier encryption/decryption groups — can run on
//! a worker pool without changing a single output byte. [`par_map`] is
//! that pool: a crossbeam-channel work queue feeding scoped worker
//! threads, with results stitched back **by index**, so the output (and
//! any error surfaced) is byte-identical to the sequential loop. The
//! `parallel_batches_are_byte_identical` tests in `bitwise`/
//! `multiplication` pin that equivalence at the wire level.
//!
//! Threading policy: items fan out only when the host has more than one
//! CPU and the batch is big enough to amortize thread startup; tests can
//! force a worker count with [`force_workers`] to exercise both shapes on
//! any machine.

use crossbeam::channel;
use ppds_observe::{trace, MetricsSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Worker-count override: 0 = auto (available parallelism), n ≥ 1 = exactly
/// n workers. Test hook; production callers leave it at auto.
static FORCED_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`force_workers`] users: the override is process-global, so
/// two concurrently running tests forcing different counts would silently
/// clobber each other's sequential-vs-parallel contrast.
static FORCE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

/// Batches smaller than this always run inline — thread startup would
/// dominate the ciphertext work they carry.
const MIN_ITEMS_PER_WORKER: usize = 4;

/// Exclusive hold on the worker-count override: every subsequent
/// [`par_map`] in the process uses exactly `n` workers (`1` = sequential)
/// until the guard drops, which restores the auto policy. Concurrent
/// callers block until the current guard is released, so parallel test
/// threads cannot clobber each other's override mid-comparison.
pub struct ForcedWorkers {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ForcedWorkers {
    fn drop(&mut self) {
        FORCED_WORKERS.store(0, Ordering::SeqCst);
    }
}

/// Forces every [`par_map`] to use exactly `n` workers for the lifetime of
/// the returned guard. Test/bench hook for pinning that parallel and
/// sequential evaluation are byte-identical on any machine.
pub fn force_workers(n: usize) -> ForcedWorkers {
    let guard = FORCE_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    FORCED_WORKERS.store(n.max(1), Ordering::SeqCst);
    ForcedWorkers { _guard: guard }
}

fn worker_count(items: usize) -> usize {
    let forced = FORCED_WORKERS.load(Ordering::SeqCst);
    if forced != 0 {
        return forced.min(items.max(1));
    }
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    cpus.min(items / MIN_ITEMS_PER_WORKER).max(1)
}

/// Applies `f` to every item of `items`, in parallel when worthwhile, and
/// returns the outputs in item order. `f` must derive any randomness it
/// needs from per-record keys (a `ProtocolContext`), never from shared
/// mutable state — that is what makes the output independent of
/// scheduling.
///
/// Error semantics match the sequential loop: the error for the **lowest**
/// failing index is returned, and once a failure is known, queued items
/// *above* it are skipped (every index below a failure is still evaluated,
/// so which error surfaces does not depend on scheduling — a malformed
/// batch cannot force the pool to burn ciphertext work on all the items
/// behind the failure).
pub fn par_map<T, O, E, F>(items: &[T], f: F) -> Result<Vec<O>, E>
where
    T: Sync,
    O: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<O, E> + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Crossbeam-channel work queue: one MPMC index feed, results collected
    // under a mutex into their slots. Slot order — not completion order —
    // defines the output, so scheduling cannot influence a single byte.
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for i in 0..items.len() {
        job_tx.send(i).expect("queue open while filling");
    }
    drop(job_tx);

    // Lowest failing index seen so far; items above it are cancelled.
    let min_err = AtomicUsize::new(usize::MAX);
    let slots: Mutex<Vec<Option<Result<O, E>>>> =
        Mutex::new((0..items.len()).map(|_| None).collect());
    // Worker threads inherit the caller's trace sink (the TLS install is
    // per-thread), so span events emitted inside `f` land in the same
    // recorder as the protocol phase that spawned the batch.
    let sink = trace::current();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let (slots, min_err) = (&slots, &min_err);
            let f = &f;
            let sink = sink.clone();
            scope.spawn(move || {
                let _guard = sink.map(trace::install);
                let worker_span = trace::span("par_worker", MetricsSnapshot::default);
                while let Ok(i) = job_rx.recv() {
                    // Indices beyond a known failure can never influence
                    // the result (the lowest error wins); indices below it
                    // always run, so the surfaced error is deterministic.
                    if i > min_err.load(Ordering::SeqCst) {
                        continue;
                    }
                    let out = f(i, &items[i]);
                    if out.is_err() {
                        min_err.fetch_min(i, Ordering::SeqCst);
                    }
                    slots.lock().unwrap()[i] = Some(out);
                }
                // CPU-only span: attributes worker wall time, zero traffic.
                worker_span.end(MetricsSnapshot::default);
            });
        }
    });

    let first_err = min_err.into_inner();
    let mut slots = slots.into_inner().unwrap();
    if first_err != usize::MAX {
        match slots[first_err].take() {
            Some(Err(e)) => return Err(e),
            _ => unreachable!("min_err points at a recorded failure"),
        }
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.expect("every index was processed") {
            Ok(v) => out.push(v),
            Err(_) => unreachable!("failures route through min_err"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProtocolContext;
    use rand::RngCore;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn outputs_are_in_item_order_for_any_worker_count() {
        let items: Vec<u64> = (0..64).collect();
        let ctx = ProtocolContext::new(9).narrow("par");
        let run = |workers| {
            let _guard = force_workers(workers);
            par_map(&items, |i, &x| {
                Ok::<u64, ()>(ctx.rng_for(i as u64).next_u64() ^ x)
            })
            .unwrap()
        };
        let seq = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(run(workers), seq, "{workers} workers");
        }
    }

    #[test]
    fn first_error_by_index_wins_and_cancels_later_items() {
        let items: Vec<usize> = (0..64).collect();
        let evaluated = AtomicUsize::new(0);
        let _guard = force_workers(4);
        let err = par_map(&items, |i, _| {
            evaluated.fetch_add(1, Ordering::SeqCst);
            if i >= 10 {
                // Failing items record min_err immediately (no sleep), so
                // the skip threshold is set long before slow successful
                // items could let the queue drain — every worker that
                // evaluates a failure publishes it before its next recv.
                Err(i)
            } else {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, 10, "lowest failing index, like the sequential loop");
        // Cancellation: once a failure is known, the tail of the queue is
        // skipped (bounded in-flight overshoot is fine; a full drain is not).
        assert!(
            evaluated.load(Ordering::SeqCst) < items.len(),
            "queue should not be fully drained after a failure"
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_map::<u8, u8, (), _>(&[], |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }
}
