//! Additive secret sharing over `Z_2^64` — the field-element MPC backend.
//!
//! Every hot number the Paillier backend ships is a 512–2048-bit
//! ciphertext; this module replaces them with 8-byte ring elements. It
//! implements the three SMC workhorses over additive shares in the ring
//! `Z_2^64` (wrapping `u64` arithmetic):
//!
//! * [`sharing_fold_keyholder_one`] / batch — Beaver-triple inner-product
//!   folds (the `mul_batches` substitute): the keyholder holds `x`, the
//!   peer holds `y`, the keyholder learns `⟨x, y⟩` at the cost of **one
//!   element exchange per group** instead of one ciphertext per element,
//! * [`sharing_dot_querier`] / [`sharing_dot_responder`] — the one-round
//!   matrix-triple dot product (cf. the CHIKP/SecureML exemplars in
//!   SNIPPETS.md): one masked query vector `D = x − α` amortizes over
//!   every responder row, so a whole neighborhood's squared distances
//!   cost one exchange,
//! * [`sharing_compare_alice`] / bob and the share-compare variants —
//!   comparison by masked opening of the share difference, with the real
//!   shared-bit-decomposition cost modeled in the [`SharingLedger`].
//!
//! # Field choice
//!
//! The ring `Z_2^64` rather than a prime field: the Beaver and dot-product
//! identities use only ring operations (no inversions), wrapping `u64`
//! arithmetic is free on hardware, and the signed embedding
//! `i64 → u64` ([`Fe::embed`] / [`Fe::lift`]) is exact for all inputs —
//! sums and differences telescope mod `2^64`, so share arithmetic never
//! overflows even where the plaintext `i64` computation would. All
//! protocol values in this workspace are bounded well inside `±2^62`
//! (coordinates, squared distances, and masks are validated or clamped),
//! so the centered lift of any opened value is exact.
//!
//! # Correlated randomness: the emulated dealer
//!
//! Beaver triples and opening masks come from a [`DealerTape`]: at session
//! establishment both parties exchange one `u64` contribution and XOR them
//! into a shared tape seed. Every correlation is then *derived*, not
//! shipped — `ctx.rekey(tape_seed)` re-bases the caller's keyed-randomness
//! path ([`crate::context::ProtocolContext`], PR 4) onto the shared seed,
//! so both parties at the same protocol position derive identical
//! correlations in any execution order, and batched/unbatched framings
//! consume identical tape values per record.
//!
//! This is the *fake-offline* benchmarking idiom (MP-SPDZ's insecure
//! preprocessing): the online transcript — every byte, message, and round
//! this backend puts on the wire — is exactly what a real
//! trusted-dealer-model execution ships, while the offline phase that
//! would normally deliver the correlations (via OT or HE) is emulated
//! from the shared seed and therefore **not private**. The substitution
//! is the same measurement discipline as
//! [`crate::compare::Comparator::Ideal`] (DESIGN.md §3): costs are
//! faithful and ledgered, the privacy argument defers to the standard
//! protocol whose correlations the [`SharingLedger`] counts. Likewise
//! `share_less_than` opens the masked share difference instead of running
//! shared-bit decomposition; the ledger records the bit triples and bytes
//! the real comparison would consume (see [`SharingLedger::record_compare`]).

use crate::compare::{CmpOp, ComparisonDomain};
use crate::context::ProtocolContext;
use crate::error::SmcError;
use ppds_observe::trace;
use ppds_transport::{Channel, Reader, TransportError, WireDecode, WireEncode};
use rand::{Rng, RngCore};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Version tag of the sharing-backend discipline, stamped into benchmark
/// artifacts so a recorded run names the share representation it used.
pub const SHARING_DISCIPLINE: &str = "additive-z64-v1";

/// Largest mask magnitude the sharing backend will draw, regardless of the
/// configured Paillier mask bound: keeps every driver-side `i64` sum
/// (`eps² + share`, share differences) comfortably inside `±2^62`.
pub const MAX_SHARING_MASK: u64 = 1 << 60;

// ---------------------------------------------------------------------------
// Field elements
// ---------------------------------------------------------------------------

/// One element of `Z_2^64`. All arithmetic wraps mod `2^64`; the signed
/// embedding is the bijection `i64 ↔ u64` by bit reinterpretation, so
/// [`Fe::lift`]`(`[`Fe::embed`]`(v)) == v` for every `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fe(pub u64);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe(0);

    /// Embeds a signed value into the ring (two's-complement
    /// reinterpretation).
    #[inline]
    pub fn embed(v: i64) -> Fe {
        Fe(v as u64)
    }

    /// Centered lift back to a signed value: exact whenever the true value
    /// lies in `[-2^63, 2^63)`, which every protocol value here does.
    #[inline]
    pub fn lift(self) -> i64 {
        self.0 as i64
    }

    /// A uniform ring element.
    #[inline]
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Fe {
        Fe(rng.next_u64())
    }
}

impl Add for Fe {
    type Output = Fe;
    #[inline]
    fn add(self, rhs: Fe) -> Fe {
        Fe(self.0.wrapping_add(rhs.0))
    }
}

impl AddAssign for Fe {
    #[inline]
    fn add_assign(&mut self, rhs: Fe) {
        self.0 = self.0.wrapping_add(rhs.0);
    }
}

impl Sub for Fe {
    type Output = Fe;
    #[inline]
    fn sub(self, rhs: Fe) -> Fe {
        Fe(self.0.wrapping_sub(rhs.0))
    }
}

impl Mul for Fe {
    type Output = Fe;
    #[inline]
    fn mul(self, rhs: Fe) -> Fe {
        Fe(self.0.wrapping_mul(rhs.0))
    }
}

impl Neg for Fe {
    type Output = Fe;
    #[inline]
    fn neg(self) -> Fe {
        Fe(self.0.wrapping_neg())
    }
}

impl Sum for Fe {
    fn sum<I: Iterator<Item = Fe>>(iter: I) -> Fe {
        iter.fold(Fe::ZERO, |acc, v| acc + v)
    }
}

impl WireEncode for Fe {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for Fe {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        Ok(Fe(u64::decode(reader)?))
    }
}

/// Ring inner product.
#[inline]
pub fn fe_dot(a: &[Fe], b: &[Fe]) -> Fe {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn draw_fes<R: RngCore>(rng: &mut R, n: usize) -> Vec<Fe> {
    (0..n).map(|_| Fe::random(rng)).collect()
}

/// Uniform signed mask in `[-bound, bound]` from a keyed stream — the
/// sharing analogue of `multiplication::sample_mask` for `i64`-sized
/// bounds. Callers clamp `bound` to [`MAX_SHARING_MASK`] first.
pub fn sample_mask_i64<R: Rng>(mut rng: R, bound: u64) -> i64 {
    if bound == 0 {
        return 0;
    }
    let b = bound.min(MAX_SHARING_MASK) as i64;
    rng.random_range(-b..=b)
}

// ---------------------------------------------------------------------------
// The emulated dealer
// ---------------------------------------------------------------------------

/// The shared correlated-randomness tape: a seed both parties combine at
/// session establishment, from which every Beaver triple and opening mask
/// is derived (see the module docs' fake-offline discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DealerTape {
    seed: u64,
}

impl DealerTape {
    /// One party's seed contribution, drawn from its session randomness.
    /// Both parties exchange these during the handshake and combine them
    /// with [`DealerTape::from_contributions`].
    pub fn contribution(ctx: &ProtocolContext) -> u64 {
        ctx.narrow("dealer").rng().next_u64()
    }

    /// Combines the two contributions; XOR, so the result is independent
    /// of which side contributed which value.
    pub fn from_contributions(mine: u64, theirs: u64) -> DealerTape {
        DealerTape {
            seed: mine ^ theirs,
        }
    }

    /// A tape with an explicit seed (tests and benchmarks).
    pub fn from_seed(seed: u64) -> DealerTape {
        DealerTape { seed }
    }

    /// Re-bases a protocol scope onto the shared tape seed: both parties
    /// at the same `narrow`/`at` position derive identical streams.
    fn scope(&self, ctx: &ProtocolContext) -> ProtocolContext {
        ctx.rekey(self.seed).narrow("tape")
    }
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

/// Per-party account of the sharing backend's trust substitutions, the
/// companion of `YaoLedger`: what the emulated dealer handed out, what was
/// opened on the wire, and the modeled cost of the real bit-decomposition
/// comparisons the masked openings stand in for. Under the Paillier
/// backend every field stays zero, which is itself part of the audit — a
/// run's ledger says exactly which trust model produced it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SharingLedger {
    /// Secure comparisons evaluated by masked opening.
    pub compares: u64,
    /// Scalar Beaver correlations consumed (one per vector element per
    /// row for matrix triples).
    pub triples: u64,
    /// Modeled bit triples the real shared-bit-decomposition comparisons
    /// would consume (`2ℓ − 2` per compare over an `ℓ`-bit domain).
    pub bit_triples: u64,
    /// Ring elements physically opened on the wire (both directions).
    pub opened_elements: u64,
    /// Modeled bytes a real offline phase would ship to deliver the
    /// consumed correlations (8 bytes per dealer-issued element, 16 per
    /// bit triple), plus the modeled online bytes of real comparisons.
    pub modeled_offline_bytes: u64,
}

impl SharingLedger {
    /// Accounts one masked-opening comparison over `domain`: the opening
    /// itself (one element each way, plus its zero-share) and the modeled
    /// real cost — `2ℓ − 2` bit triples and one masked open per bit for a
    /// comparison over an `ℓ`-bit domain (the standard post-Catrina–de
    /// Hoogh LT budget).
    pub fn record_compare(&mut self, domain: &ComparisonDomain) {
        let ell = u64::from(64 - domain.n0().leading_zeros());
        let bits = 2 * ell.max(1) - 2;
        self.compares += 1;
        self.bit_triples += bits;
        self.opened_elements += 2;
        // Dealer: one zero-share (2 elements) + the modeled bit triples.
        self.modeled_offline_bytes += 16 + 16 * bits;
    }

    /// Accounts one matrix-triple dot product: query length `m`, `rows`
    /// responder rows. Dealer issues `α` (m), the `B_j` rows (`rows·m`),
    /// and both halves of each `c_j` (`2·rows`); the online phase opens
    /// `D` (m) plus one `(E_j, s_j)` pair per row.
    pub fn record_dot(&mut self, m: usize, rows: usize) {
        let (m, rows) = (m as u64, rows as u64);
        self.triples += m * rows;
        self.opened_elements += m + rows * (m + 1);
        self.modeled_offline_bytes += 8 * (m + rows * m + 2 * rows);
    }

    /// Accounts one Beaver inner-product fold of vector length `m`
    /// (dealer: `α`, `β`, both `c` halves; online: `D`, `E`, `s`).
    pub fn record_fold(&mut self, m: usize) {
        let m = m as u64;
        self.triples += m;
        self.opened_elements += 2 * m + 1;
        self.modeled_offline_bytes += 8 * (2 * m + 2);
    }

    /// Folds another ledger into this one (session aggregation).
    pub fn absorb(&mut self, other: SharingLedger) {
        self.compares += other.compares;
        self.triples += other.triples;
        self.bit_triples += other.bit_triples;
        self.opened_elements += other.opened_elements;
        self.modeled_offline_bytes += other.modeled_offline_bytes;
    }
}

// ---------------------------------------------------------------------------
// Masked opening
// ---------------------------------------------------------------------------

fn open_mask(tape: &DealerTape, ctx: &ProtocolContext) -> Fe {
    Fe::random(&mut tape.scope(ctx).narrow("open").rng())
}

/// Opens `value_a + value_b` where Alice holds `value` and Bob holds the
/// other addend: each side ships its share under a tape-derived zero-share
/// (`+ρ` here, `−ρ` on Bob's side). Alice sends first.
fn masked_open_alice<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    value: Fe,
    ctx: &ProtocolContext,
) -> Result<Fe, SmcError> {
    let rho = open_mask(tape, ctx);
    chan.send(&(value + rho))?;
    let theirs: Fe = chan.recv()?;
    Ok(value + rho + theirs)
}

/// Bob's half of [`masked_open_alice`]: receives first, sends second.
fn masked_open_bob<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    value: Fe,
    ctx: &ProtocolContext,
) -> Result<Fe, SmcError> {
    let rho = open_mask(tape, ctx);
    let theirs: Fe = chan.recv()?;
    chan.send(&(value - rho))?;
    Ok(value - rho + theirs)
}

fn masked_open_batch_alice<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    values: &[Fe],
    ctx: &ProtocolContext,
) -> Result<Vec<Fe>, SmcError> {
    let scope = tape.scope(ctx).narrow("open");
    let mine: Vec<Fe> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| v + Fe::random(&mut scope.rng_for(i as u64)))
        .collect();
    chan.send_batch(&mine)?;
    let theirs: Vec<Fe> = chan.recv_batch()?;
    if theirs.len() != values.len() {
        return Err(SmcError::protocol(format!(
            "masked open: expected {} shares, got {}",
            values.len(),
            theirs.len()
        )));
    }
    Ok(mine.iter().zip(&theirs).map(|(&a, &b)| a + b).collect())
}

fn masked_open_batch_bob<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    values: &[Fe],
    ctx: &ProtocolContext,
) -> Result<Vec<Fe>, SmcError> {
    let scope = tape.scope(ctx).narrow("open");
    let mine: Vec<Fe> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| v - Fe::random(&mut scope.rng_for(i as u64)))
        .collect();
    let theirs: Vec<Fe> = chan.recv_batch()?;
    if theirs.len() != values.len() {
        return Err(SmcError::protocol(format!(
            "masked open: expected {} shares, got {}",
            values.len(),
            theirs.len()
        )));
    }
    chan.send_batch(&mine)?;
    Ok(mine.iter().zip(&theirs).map(|(&a, &b)| a + b).collect())
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

fn verdict(v: Fe, op: CmpOp) -> bool {
    match op {
        CmpOp::Lt => v.lift() < 0,
        CmpOp::Leq => v.lift() <= 0,
    }
}

/// Alice's side of one sharing-backend comparison; returns
/// `alice_value OP bob_value`. Works over the full 64-bit ring — `domain`
/// only sizes the modeled bit-decomposition cost in the ledger, unlike the
/// Paillier path which must encode into `[1, n0]`.
pub fn sharing_compare_alice<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    value: i64,
    op: CmpOp,
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    acct.record_compare(domain);
    let v = masked_open_alice(tape, chan, Fe::embed(value), ctx)?;
    Ok(verdict(v, op))
}

/// Bob's side of [`sharing_compare_alice`].
pub fn sharing_compare_bob<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    value: i64,
    op: CmpOp,
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    acct.record_compare(domain);
    let v = masked_open_bob(tape, chan, -Fe::embed(value), ctx)?;
    Ok(verdict(v, op))
}

/// Round-batched Alice comparisons (one frame each way for the whole set).
/// Item `i` consumes the tape at `ctx`-index `i`.
pub fn sharing_compare_batch_alice<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    values: &[i64],
    op: CmpOp,
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("cmp_batch", || chan.metrics());
    for _ in values {
        acct.record_compare(domain);
    }
    let fes: Vec<Fe> = values.iter().map(|&v| Fe::embed(v)).collect();
    let opened = masked_open_batch_alice(tape, chan, &fes, ctx)?;
    span.end(|| chan.metrics());
    Ok(opened.into_iter().map(|v| verdict(v, op)).collect())
}

/// Bob's half of [`sharing_compare_batch_alice`].
pub fn sharing_compare_batch_bob<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    values: &[i64],
    op: CmpOp,
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("cmp_batch", || chan.metrics());
    for _ in values {
        acct.record_compare(domain);
    }
    let fes: Vec<Fe> = values.iter().map(|&v| -Fe::embed(v)).collect();
    let opened = masked_open_batch_bob(tape, chan, &fes, ctx)?;
    span.end(|| chan.metrics());
    Ok(opened.into_iter().map(|v| verdict(v, op)).collect())
}

/// Share comparison, sharing backend: Alice holds `(u_a, u_b)`, Bob holds
/// `(v_a, v_b)`, shares of `dist_a = u_a − v_a` and `dist_b = u_b − v_b`;
/// both learn `dist_a < dist_b`. The share differences are taken
/// *in-field*, so they never overflow regardless of mask width.
pub fn sharing_share_less_than_alice<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    u_a: i64,
    u_b: i64,
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    acct.record_compare(domain);
    let value = Fe::embed(u_a) - Fe::embed(u_b);
    let v = masked_open_alice(tape, chan, value, ctx)?;
    Ok(verdict(v, CmpOp::Lt))
}

/// Bob's half of [`sharing_share_less_than_alice`].
pub fn sharing_share_less_than_bob<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    v_a: i64,
    v_b: i64,
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    acct.record_compare(domain);
    let value = Fe::embed(v_b) - Fe::embed(v_a);
    let v = masked_open_bob(tape, chan, value, ctx)?;
    Ok(verdict(v, CmpOp::Lt))
}

/// Round-batched share comparisons (Alice side).
pub fn sharing_share_less_than_batch_alice<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    pairs: &[(i64, i64)],
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("cmp_batch", || chan.metrics());
    for _ in pairs {
        acct.record_compare(domain);
    }
    let fes: Vec<Fe> = pairs
        .iter()
        .map(|&(a, b)| Fe::embed(a) - Fe::embed(b))
        .collect();
    let opened = masked_open_batch_alice(tape, chan, &fes, ctx)?;
    span.end(|| chan.metrics());
    Ok(opened.into_iter().map(|v| verdict(v, CmpOp::Lt)).collect())
}

/// Bob's half of [`sharing_share_less_than_batch_alice`].
pub fn sharing_share_less_than_batch_bob<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    pairs: &[(i64, i64)],
    domain: &ComparisonDomain,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("cmp_batch", || chan.metrics());
    for _ in pairs {
        acct.record_compare(domain);
    }
    let fes: Vec<Fe> = pairs
        .iter()
        .map(|&(a, b)| Fe::embed(b) - Fe::embed(a))
        .collect();
    let opened = masked_open_batch_bob(tape, chan, &fes, ctx)?;
    span.end(|| chan.metrics());
    Ok(opened.into_iter().map(|v| verdict(v, CmpOp::Lt)).collect())
}

// ---------------------------------------------------------------------------
// Beaver inner-product folds (the mul_batches substitute)
// ---------------------------------------------------------------------------

struct FoldTriple {
    alpha: Vec<Fe>,
    beta: Vec<Fe>,
    c1: Fe,
    c2: Fe,
}

fn fold_triple(tape: &DealerTape, ctx: &ProtocolContext, m: usize) -> FoldTriple {
    let t = tape.scope(ctx).narrow("fold");
    let alpha = draw_fes(&mut t.narrow("a").rng(), m);
    let beta = draw_fes(&mut t.narrow("b").rng(), m);
    let c1 = Fe::random(&mut t.narrow("c").rng());
    let c2 = fe_dot(&alpha, &beta) - c1;
    FoldTriple {
        alpha,
        beta,
        c1,
        c2,
    }
}

/// Keyholder side of one Beaver inner-product fold: holds `xs`, learns
/// `⟨xs, ys⟩` exactly (the Paillier path's per-element masks are zero-sum,
/// so its folded result is the same exact inner product — this leaks
/// nothing the paper's Multiplication Protocol composition doesn't).
pub fn sharing_fold_keyholder_one<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    xs: &[Fe],
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<Fe, SmcError> {
    let span = trace::span("mul_batch", || chan.metrics());
    let trip = fold_triple(tape, ctx, xs.len());
    let d: Vec<Fe> = xs.iter().zip(&trip.alpha).map(|(&x, &a)| x - a).collect();
    chan.send(&d)?;
    let (e, s): (Vec<Fe>, Fe) = chan.recv()?;
    if e.len() != xs.len() {
        return Err(SmcError::protocol(format!(
            "fold: expected {} reply elements, got {}",
            xs.len(),
            e.len()
        )));
    }
    acct.record_fold(xs.len());
    span.end(|| chan.metrics());
    Ok(fe_dot(xs, &e) + trip.c1 + s)
}

/// Peer side of [`sharing_fold_keyholder_one`]: holds `ys`, contributes no
/// net mask (the fold's masks cancel by construction on both backends).
pub fn sharing_fold_peer_one<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    ys: &[Fe],
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<(), SmcError> {
    let span = trace::span("mul_batch", || chan.metrics());
    let trip = fold_triple(tape, ctx, ys.len());
    let d: Vec<Fe> = chan.recv()?;
    if d.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "fold: expected {} query elements, got {}",
            ys.len(),
            d.len()
        )));
    }
    let e: Vec<Fe> = ys.iter().zip(&trip.beta).map(|(&y, &b)| y - b).collect();
    let s = fe_dot(&d, &trip.beta) + trip.c2;
    chan.send(&(e, s))?;
    acct.record_fold(ys.len());
    span.end(|| chan.metrics());
    Ok(())
}

/// Round-batched keyholder folds: all groups' `D` vectors ship as one
/// frame, all replies return as one. Group `g` consumes the tape at
/// `scopes(g)` — the same scope the unbatched caller would pass — so both
/// framings consume identical correlations.
pub fn sharing_fold_keyholder_batch<C: Channel, S: Fn(usize) -> ProtocolContext>(
    tape: &DealerTape,
    chan: &mut C,
    groups: &[Vec<Fe>],
    scopes: S,
    acct: &mut SharingLedger,
) -> Result<Vec<Fe>, SmcError> {
    if groups.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("mul_batch", || chan.metrics());
    let trips: Vec<FoldTriple> = groups
        .iter()
        .enumerate()
        .map(|(g, xs)| fold_triple(tape, &scopes(g), xs.len()))
        .collect();
    let ds: Vec<Vec<Fe>> = groups
        .iter()
        .zip(&trips)
        .map(|(xs, t)| xs.iter().zip(&t.alpha).map(|(&x, &a)| x - a).collect())
        .collect();
    chan.send_batch(&ds)?;
    let replies: Vec<(Vec<Fe>, Fe)> = chan.recv_batch()?;
    if replies.len() != groups.len() {
        return Err(SmcError::protocol(format!(
            "fold batch: expected {} replies, got {}",
            groups.len(),
            replies.len()
        )));
    }
    let mut out = Vec::with_capacity(groups.len());
    for ((xs, trip), (e, s)) in groups.iter().zip(&trips).zip(&replies) {
        if e.len() != xs.len() {
            return Err(SmcError::protocol(format!(
                "fold batch: expected {} reply elements, got {}",
                xs.len(),
                e.len()
            )));
        }
        acct.record_fold(xs.len());
        out.push(fe_dot(xs, e) + trip.c1 + *s);
    }
    span.end(|| chan.metrics());
    Ok(out)
}

/// Peer half of [`sharing_fold_keyholder_batch`].
pub fn sharing_fold_peer_batch<C: Channel, S: Fn(usize) -> ProtocolContext>(
    tape: &DealerTape,
    chan: &mut C,
    groups: &[Vec<Fe>],
    scopes: S,
    acct: &mut SharingLedger,
) -> Result<(), SmcError> {
    if groups.is_empty() {
        return Ok(());
    }
    let span = trace::span("mul_batch", || chan.metrics());
    let trips: Vec<FoldTriple> = groups
        .iter()
        .enumerate()
        .map(|(g, ys)| fold_triple(tape, &scopes(g), ys.len()))
        .collect();
    let ds: Vec<Vec<Fe>> = chan.recv_batch()?;
    if ds.len() != groups.len() {
        return Err(SmcError::protocol(format!(
            "fold batch: expected {} queries, got {}",
            groups.len(),
            ds.len()
        )));
    }
    let mut replies = Vec::with_capacity(groups.len());
    for ((ys, trip), d) in groups.iter().zip(&trips).zip(&ds) {
        if d.len() != ys.len() {
            return Err(SmcError::protocol(format!(
                "fold batch: expected {} query elements, got {}",
                ys.len(),
                d.len()
            )));
        }
        let e: Vec<Fe> = ys.iter().zip(&trip.beta).map(|(&y, &b)| y - b).collect();
        let s = fe_dot(d, &trip.beta) + trip.c2;
        acct.record_fold(ys.len());
        replies.push((e, s));
    }
    chan.send_batch(&replies)?;
    span.end(|| chan.metrics());
    Ok(())
}

// ---------------------------------------------------------------------------
// One-round matrix-triple dot product (the dot_many substitute)
// ---------------------------------------------------------------------------

fn dot_alpha(tape: &DealerTape, ctx: &ProtocolContext, m: usize) -> Vec<Fe> {
    draw_fes(&mut tape.scope(ctx).narrow("dot").narrow("a").rng(), m)
}

fn dot_row(tape: &DealerTape, ctx: &ProtocolContext, j: u64, m: usize) -> Vec<Fe> {
    draw_fes(&mut tape.scope(ctx).narrow("dot").narrow("b").rng_for(j), m)
}

fn dot_c1(tape: &DealerTape, ctx: &ProtocolContext, j: u64) -> Fe {
    Fe::random(&mut tape.scope(ctx).narrow("dot").narrow("c").rng_for(j))
}

/// Querier side of the one-round matrix-triple dot product: holds the
/// query vector `xs`, learns `u_j = ⟨xs, y_j⟩ + v_j` for every responder
/// row `y_j` (mask `v_j` is the responder's share). One masked query
/// `D = x − α` amortizes over all rows — two messages total, every element
/// 8 bytes.
pub fn sharing_dot_querier<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    xs: &[Fe],
    expected_rows: usize,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<Vec<Fe>, SmcError> {
    let span = trace::span("dot_many", || chan.metrics());
    let m = xs.len();
    let alpha = dot_alpha(tape, ctx, m);
    let d: Vec<Fe> = xs.iter().zip(&alpha).map(|(&x, &a)| x - a).collect();
    chan.send(&d)?;
    let replies: Vec<(Vec<Fe>, Fe)> = chan.recv()?;
    if replies.len() != expected_rows {
        return Err(SmcError::protocol(format!(
            "dot: expected {expected_rows} rows, got {}",
            replies.len()
        )));
    }
    let mut out = Vec::with_capacity(replies.len());
    for (j, (e, s)) in replies.iter().enumerate() {
        if e.len() != m {
            return Err(SmcError::protocol(format!(
                "dot: row {j} has {} elements, expected {m}",
                e.len()
            )));
        }
        out.push(fe_dot(xs, e) + dot_c1(tape, ctx, j as u64) + *s);
    }
    acct.record_dot(m, replies.len());
    span.end(|| chan.metrics());
    Ok(out)
}

/// Responder side of [`sharing_dot_querier`]: holds the rows `y_j` and the
/// masks `v_j` (its output shares; the caller draws them from its private
/// session randomness).
pub fn sharing_dot_responder<C: Channel>(
    tape: &DealerTape,
    chan: &mut C,
    rows: &[Vec<Fe>],
    masks: &[Fe],
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<(), SmcError> {
    if rows.len() != masks.len() {
        return Err(SmcError::protocol("dot: rows/masks length mismatch"));
    }
    let span = trace::span("dot_many", || chan.metrics());
    let d: Vec<Fe> = chan.recv()?;
    let m = d.len();
    let alpha = dot_alpha(tape, ctx, m);
    let mut replies = Vec::with_capacity(rows.len());
    for (j, (row, &mask)) in rows.iter().zip(masks).enumerate() {
        if row.len() != m {
            return Err(SmcError::protocol(format!(
                "dot: row {j} has {} elements, query has {m}",
                row.len()
            )));
        }
        let b = dot_row(tape, ctx, j as u64, m);
        let e: Vec<Fe> = row.iter().zip(&b).map(|(&y, &bb)| y - bb).collect();
        let c2 = fe_dot(&alpha, &b) - dot_c1(tape, ctx, j as u64);
        let s = fe_dot(&d, &b) + c2 + mask;
        replies.push((e, s));
    }
    chan.send(&replies)?;
    acct.record_dot(m, rows.len());
    span.end(|| chan.metrics());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::ctx;
    use ppds_transport::duplex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embed_lift_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(Fe::embed(v).lift(), v);
        }
    }

    #[test]
    fn field_arithmetic_telescopes() {
        // In-field differences of embedded values are exact even when the
        // i64 difference would overflow.
        let a = Fe::embed(i64::MAX - 3);
        let b = Fe::embed(-10);
        assert_eq!((a - b) - a + b, Fe::ZERO);
        let mut acc = Fe::ZERO;
        acc += Fe::embed(-7);
        assert_eq!((-acc).lift(), 7);
    }

    #[test]
    fn fe_wire_roundtrip() {
        for v in [Fe(0), Fe(u64::MAX), Fe::embed(-5)] {
            let bytes = v.encode_to_vec();
            assert_eq!(bytes.len(), 8);
            assert_eq!(Fe::decode_exact(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn tape_contributions_commute() {
        let a = DealerTape::from_contributions(3, 9);
        let b = DealerTape::from_contributions(9, 3);
        assert_eq!(a, b);
        // Both parties derive identical correlations at equal positions.
        let ctx_a = ctx(111).narrow("mul").at(4);
        let ctx_b = ctx(222).narrow("mul").at(4);
        assert_eq!(dot_alpha(&a, &ctx_a, 5), dot_alpha(&b, &ctx_b, 5));
        assert_eq!(open_mask(&a, &ctx_a), open_mask(&b, &ctx_b));
    }

    #[test]
    fn sample_mask_respects_bound_and_clamp() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = sample_mask_i64(&mut r, 17);
            assert!((-17..=17).contains(&v));
        }
        assert_eq!(sample_mask_i64(&mut r, 0), 0);
        let wide = sample_mask_i64(&mut r, u64::MAX);
        assert!(wide.unsigned_abs() <= MAX_SHARING_MASK);
    }

    fn compare_both(a: i64, b: i64, op: CmpOp) -> (bool, bool) {
        let tape = DealerTape::from_seed(42);
        let domain = ComparisonDomain::symmetric(1 << 20);
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            let mut acct = SharingLedger::default();
            sharing_compare_alice(&tape, &mut achan, a, op, &domain, &ctx(1).at(0), &mut acct)
                .unwrap()
        });
        let mut acct = SharingLedger::default();
        let bv = sharing_compare_bob(&tape, &mut bchan, b, op, &domain, &ctx(2).at(0), &mut acct)
            .unwrap();
        assert_eq!(acct.compares, 1);
        assert!(acct.bit_triples > 0);
        (alice.join().unwrap(), bv)
    }

    #[test]
    fn compare_matches_plaintext() {
        for (a, b) in [(3i64, 4i64), (4, 3), (5, 5), (-9, 2), (2, -9), (-4, -4)] {
            let (av, bv) = compare_both(a, b, CmpOp::Lt);
            assert_eq!(av, a < b, "{a} < {b}");
            assert_eq!(bv, a < b);
            let (av, bv) = compare_both(a, b, CmpOp::Leq);
            assert_eq!(av, a <= b, "{a} <= {b}");
            assert_eq!(bv, a <= b);
        }
    }

    #[test]
    fn batch_compare_matches_singles() {
        let tape = DealerTape::from_seed(7);
        let domain = ComparisonDomain::symmetric(1000);
        let avals = vec![1i64, -5, 7, 0, 3];
        let bvals = vec![2i64, -5, -7, 1, 3];
        let (mut achan, mut bchan) = duplex();
        let av2 = avals.clone();
        let alice = std::thread::spawn(move || {
            let mut acct = SharingLedger::default();
            sharing_compare_batch_alice(
                &tape,
                &mut achan,
                &av2,
                CmpOp::Leq,
                &domain,
                &ctx(1),
                &mut acct,
            )
            .unwrap()
        });
        let mut acct = SharingLedger::default();
        let bv = sharing_compare_batch_bob(
            &tape,
            &mut bchan,
            &bvals,
            CmpOp::Leq,
            &domain,
            &ctx(2),
            &mut acct,
        )
        .unwrap();
        let expect: Vec<bool> = avals.iter().zip(&bvals).map(|(&a, &b)| a <= b).collect();
        assert_eq!(alice.join().unwrap(), expect);
        assert_eq!(bv, expect);
        assert_eq!(acct.compares, 5);
    }

    #[test]
    fn share_less_than_matches_plaintext() {
        // dist_a = u_a − v_a, dist_b = u_b − v_b; shares picked so the
        // i64 share differences would be large but in-field stays exact.
        let cases = [
            ((10i64, 3i64), (4i64, 1i64)),          // dist 6 vs 2 → false
            ((1, 9), (5, 2)),                       // -4 vs 7 → true
            ((i64::MAX - 2, 5), (i64::MAX - 4, 1)), // 2 vs 4 (mod shares) → true
        ];
        for ((u_a, v_a), (u_b, v_b)) in cases {
            let tape = DealerTape::from_seed(99);
            let domain = ComparisonDomain::symmetric(1 << 30);
            let (mut achan, mut bchan) = duplex();
            let alice = std::thread::spawn(move || {
                let mut acct = SharingLedger::default();
                sharing_share_less_than_alice(
                    &tape,
                    &mut achan,
                    u_a,
                    u_b,
                    &domain,
                    &ctx(3).at(0),
                    &mut acct,
                )
                .unwrap()
            });
            let mut acct = SharingLedger::default();
            let bv = sharing_share_less_than_bob(
                &tape,
                &mut bchan,
                v_a,
                v_b,
                &domain,
                &ctx(4).at(0),
                &mut acct,
            )
            .unwrap();
            let dist_a = Fe::embed(u_a) - Fe::embed(v_a);
            let dist_b = Fe::embed(u_b) - Fe::embed(v_b);
            let expect = (dist_a - dist_b).lift() < 0;
            assert_eq!(alice.join().unwrap(), expect);
            assert_eq!(bv, expect);
        }
    }

    #[test]
    fn fold_computes_exact_inner_product() {
        let xs: Vec<i64> = vec![3, -1, 0, 12, 7];
        let ys: Vec<i64> = vec![5, 5, -9, 2, -3];
        let expect: i64 = xs.iter().zip(&ys).map(|(&x, &y)| x * y).sum();
        let tape = DealerTape::from_seed(11);
        let (mut kchan, mut pchan) = duplex();
        let xfes: Vec<Fe> = xs.iter().map(|&v| Fe::embed(v)).collect();
        let key = std::thread::spawn(move || {
            let mut acct = SharingLedger::default();
            let u = sharing_fold_keyholder_one(&tape, &mut kchan, &xfes, &ctx(5).at(2), &mut acct)
                .unwrap();
            (u, acct)
        });
        let yfes: Vec<Fe> = ys.iter().map(|&v| Fe::embed(v)).collect();
        let mut acct = SharingLedger::default();
        sharing_fold_peer_one(&tape, &mut pchan, &yfes, &ctx(6).at(2), &mut acct).unwrap();
        let (u, kacct) = key.join().unwrap();
        assert_eq!(u.lift(), expect);
        assert_eq!(kacct.triples, 5);
        assert_eq!(acct.opened_elements, 11);
    }

    #[test]
    fn fold_batch_matches_singles_and_tape_scopes_agree() {
        let groups_x = vec![vec![1i64, 2], vec![-3, 4, 5], vec![7]];
        let groups_y = vec![vec![9i64, -2], vec![1, 1, 1], vec![-6]];
        let tape = DealerTape::from_seed(21);
        let base = ctx(8).narrow("mul");
        let gx: Vec<Vec<Fe>> = groups_x
            .iter()
            .map(|g| g.iter().map(|&v| Fe::embed(v)).collect())
            .collect();
        let gy: Vec<Vec<Fe>> = groups_y
            .iter()
            .map(|g| g.iter().map(|&v| Fe::embed(v)).collect())
            .collect();
        let (mut kchan, mut pchan) = duplex();
        let gx2 = gx.clone();
        let key = std::thread::spawn(move || {
            let mut acct = SharingLedger::default();
            sharing_fold_keyholder_batch(
                &tape,
                &mut kchan,
                &gx2,
                |g| ctx(8).narrow("mul").at(g as u64),
                &mut acct,
            )
            .unwrap()
        });
        let mut acct = SharingLedger::default();
        sharing_fold_peer_batch(&tape, &mut pchan, &gy, |g| base.at(g as u64), &mut acct).unwrap();
        let us = key.join().unwrap();
        for ((u, xs), ys) in us.iter().zip(&groups_x).zip(&groups_y) {
            let expect: i64 = xs.iter().zip(ys).map(|(&x, &y)| x * y).sum();
            assert_eq!(u.lift(), expect);
        }
    }

    #[test]
    fn dot_shares_reconstruct_inner_products() {
        let xs = [4i64, -2, 1, 0];
        let rows = vec![vec![1i64, 2, 3, 4], vec![-5, 0, 0, 9], vec![7, 7, 7, 7]];
        let masks = vec![100i64, -40, 3];
        let tape = DealerTape::from_seed(31);
        let xfes: Vec<Fe> = xs.iter().map(|&v| Fe::embed(v)).collect();
        let (mut qchan, mut rchan) = duplex();
        let n = rows.len();
        let querier = std::thread::spawn(move || {
            let mut acct = SharingLedger::default();
            let us = sharing_dot_querier(
                &tape,
                &mut qchan,
                &xfes,
                n,
                &ctx(9).narrow("dot"),
                &mut acct,
            )
            .unwrap();
            (us, acct)
        });
        let rowfes: Vec<Vec<Fe>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| Fe::embed(v)).collect())
            .collect();
        let maskfes: Vec<Fe> = masks.iter().map(|&v| Fe::embed(v)).collect();
        let mut acct = SharingLedger::default();
        sharing_dot_responder(
            &tape,
            &mut rchan,
            &rowfes,
            &maskfes,
            &ctx(10).narrow("dot"),
            &mut acct,
        )
        .unwrap();
        let (us, qacct) = querier.join().unwrap();
        for ((u, row), &mask) in us.iter().zip(&rows).zip(&masks) {
            let ip: i64 = xs.iter().zip(row).map(|(&x, &y)| x * y).sum();
            // u − v = ⟨x, y⟩: the two sides hold additive shares.
            assert_eq!((*u - Fe::embed(mask)).lift(), ip);
        }
        assert_eq!(qacct.triples, (xs.len() * rows.len()) as u64);
        assert!(qacct.modeled_offline_bytes > 0);
    }

    #[test]
    fn ledger_absorb_sums_fields() {
        let mut a = SharingLedger::default();
        a.record_compare(&ComparisonDomain::symmetric(100));
        let mut b = SharingLedger::default();
        b.record_dot(3, 4);
        b.record_fold(5);
        let mut total = a;
        total.absorb(b);
        assert_eq!(total.compares, 1);
        assert_eq!(total.triples, 12 + 5);
        assert_eq!(total.opened_elements, a.opened_elements + b.opened_elements);
        assert_eq!(
            total.modeled_offline_bytes,
            a.modeled_offline_bytes + b.modeled_offline_bytes
        );
    }
}
